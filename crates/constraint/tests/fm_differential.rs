//! Differential tests of the Fourier–Motzkin layer against the grid.
//!
//! On randomly generated *linear* queries (the fragment FM claims to
//! decide):
//!
//! * an FM `Proved` verdict is never contradicted by a grid counterexample
//!   — the bounded sweep of the tree evaluator agrees at every point;
//! * an FM-witnessed refutation's counterexample genuinely falsifies the
//!   implication under the tree evaluator (the same property the grid's
//!   counterexamples have);
//! * the full solver pipeline reaches the same accept/reject verdict with
//!   the FM layer on and off — FM changes *provenance* and cost, never the
//!   boolean outcome the type checker sees.

use proptest::prelude::*;

use rel_constraint::fm::{self, FmLimits, FmVerdict};
use rel_constraint::{Constr, SolveConfig, Solver, Validity};
use rel_index::{Extended, Idx, IdxEnv, IdxVar, Sort};

fn universals() -> Vec<(IdxVar, Sort)> {
    vec![
        (IdxVar::new("n"), Sort::Nat),
        (IdxVar::new("a"), Sort::Nat),
        (IdxVar::new("b"), Sort::Nat),
    ]
}

/// Random *linear* index terms: variables, small constants, sums,
/// differences and constant multiples — exactly the fragment the FM layer
/// decides completely.
fn arb_linear_idx() -> BoxedStrategy<Idx> {
    let leaf = prop_oneof![
        (0u64..8).prop_map(Idx::nat),
        Just(Idx::var("n")),
        Just(Idx::var("a")),
        Just(Idx::var("b")),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x + y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x - y),
            (inner.clone(), (1u64..4)).prop_map(|(x, k)| x * Idx::nat(k)),
        ]
    })
    .boxed()
}

/// Random quantifier-free constraints over linear atoms.
fn arb_linear_constr() -> BoxedStrategy<Constr> {
    let atom = prop_oneof![
        Just(Constr::Top),
        Just(Constr::Bot),
        (arb_linear_idx(), arb_linear_idx()).prop_map(|(x, y)| Constr::eq(x, y)),
        (arb_linear_idx(), arb_linear_idx()).prop_map(|(x, y)| Constr::leq(x, y)),
        (arb_linear_idx(), arb_linear_idx()).prop_map(|(x, y)| Constr::lt(x, y)),
    ];
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Constr::And(vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Constr::Or(vec![x, y])),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Constr::Implies(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| Constr::Not(Box::new(x))),
        ]
    })
    .boxed()
}

/// Exhaustive check of `hyp ⟹ goal` over the small grid `0..=max` per
/// variable, with the tree evaluator — the ground truth FM must agree with.
fn grid_counterexample(hyp: &Constr, goal: &Constr, max: u64) -> Option<IdxEnv> {
    let u = universals();
    let formula = hyp.clone().implies(goal.clone());
    let mut coords = vec![0u64; u.len()];
    loop {
        let env = IdxEnv::from_pairs(
            u.iter()
                .zip(&coords)
                .map(|((v, _), c)| (v.clone(), Extended::from(*c))),
        );
        if !formula.eval_bounded(&env, 6) {
            return Some(env);
        }
        let mut i = 0;
        loop {
            if i == coords.len() {
                return None;
            }
            coords[i] += 1;
            if coords[i] <= max {
                break;
            }
            coords[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    // FM soundness: `Proved` can never be contradicted by any grid point.
    #[test]
    fn fm_proofs_are_never_contradicted_by_the_grid(
        hyp in arb_linear_constr(),
        goal in arb_linear_constr(),
    ) {
        let facts: Vec<&Constr> = vec![&hyp];
        let out = fm::prove(
            &universals(),
            &facts,
            &goal,
            &FmLimits::default(),
            &mut fm::FmMemo::default(),
        );
        if out.verdict == FmVerdict::Proved {
            if let Some(env) = grid_counterexample(&hyp, &goal, 6) {
                prop_assert!(
                    false,
                    "FM proved an entailment the grid refutes at {env:?}: \
                     hyp = {hyp}, goal = {goal}"
                );
            }
        }
    }

    // FM witnesses are genuine counterexamples under the tree evaluator.
    #[test]
    fn fm_witnesses_falsify_the_implication(
        hyp in arb_linear_constr(),
        goal in arb_linear_constr(),
    ) {
        let facts: Vec<&Constr> = vec![&hyp];
        let out = fm::prove(
            &universals(),
            &facts,
            &goal,
            &FmLimits::default(),
            &mut fm::FmMemo::default(),
        );
        if out.verdict == FmVerdict::CandidateRefuted {
            if let Some(witness) = out.witness {
                let mut env = IdxEnv::new();
                for (v, _) in universals() {
                    env.bind(v, Extended::ZERO);
                }
                let mut nat_ok = true;
                for (v, q) in witness {
                    nat_ok &= q.is_integer() && !q.is_negative();
                    env.bind(v, Extended::Finite(q));
                }
                // All three universals are ℕ-sorted, so concretization must
                // have produced natural values…
                prop_assert!(nat_ok, "non-natural witness for ℕ variables");
                // …and when the *hypothesis side* holds at the witness, the
                // goal must fail there (this is what the solver re-verifies
                // before trusting the point; a witness that misses the full
                // hypothesis is discarded there, not a soundness issue).
                if hyp.eval_bounded(&env, 6) {
                    prop_assert!(
                        !goal.eval_bounded(&env, 6),
                        "FM witness does not falsify the goal: hyp = {hyp}, \
                         goal = {goal}, env = {env:?}"
                    );
                }
            }
        }
    }

    // Pipeline equivalence: the FM layer changes provenance, never the
    // boolean verdict — and both refutation styles produce genuine
    // counterexamples.
    #[test]
    fn solver_verdicts_agree_with_fm_on_and_off(
        hyp in arb_linear_constr(),
        goal in arb_linear_constr(),
    ) {
        let small = SolveConfig {
            nat_grid_max: 6,
            max_grid_points: 343,
            random_points: 8,
            inner_quantifier_bound: 3,
            ..SolveConfig::default()
        };
        let no_fm = SolveConfig { use_fm: false, ..small.clone() };
        let u = universals();
        let mut with_fm = Solver::with_config(small);
        let mut without_fm = Solver::with_config(no_fm);
        let v_fm = with_fm.entails(&u, &hyp, &goal);
        let v_grid = without_fm.entails(&u, &hyp, &goal);
        // One direction is a theorem: whatever the grid refutes, the FM
        // pipeline refutes too (an FM proof of a grid-refutable entailment
        // would be unsound, and FM non-proofs fall through to the same
        // grid).  The converse is deliberately *not* asserted: the bounded
        // decisive sweep can wrongly accept an entailment whose smallest
        // counterexample lies beyond the grid, and there FM's verified
        // witness is the more truthful verdict.
        if !v_grid.is_valid() {
            prop_assert!(
                !v_fm.is_valid(),
                "grid refutes but FM accepts: hyp = {}, goal = {} ({:?} vs {:?})",
                hyp, goal, v_fm, v_grid
            );
        }
        // Whatever counterexample either path reports must falsify the
        // implication under the tree evaluator.
        for v in [&v_fm, &v_grid] {
            if let Validity::Invalid(Some(env)) = v {
                let formula = hyp.clone().implies(goal.clone());
                prop_assert!(
                    !formula.eval_bounded(env, 3),
                    "reported counterexample does not falsify: hyp = {}, \
                     goal = {}, env = {:?}", hyp, goal, env
                );
            }
        }
    }
}
