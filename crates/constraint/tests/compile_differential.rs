//! Differential tests: the bytecode evaluator of `rel_constraint::compile`
//! against the tree evaluator `Constr::eval_bounded`, and the compiled
//! solver path against the tree solver path.
//!
//! These are the tests that license excluding `use_compiled_eval` from the
//! solver-config fingerprint: the two evaluators must agree *bit for bit* —
//! same booleans per point, same verdicts, same counterexample environments,
//! same `points_evaluated` counts.

use proptest::prelude::*;

use rel_constraint::{compile_query, Constr, SolveConfig, Solver, Val};
use rel_index::{Extended, Idx, IdxEnv, IdxVar, Sort};

fn universals() -> Vec<(IdxVar, Sort)> {
    vec![
        (IdxVar::new("n"), Sort::Nat),
        (IdxVar::new("a"), Sort::Nat),
        (IdxVar::new("b"), Sort::Nat),
    ]
}

/// Random index terms over `n`, `a`, `b` with every operator the grammar
/// has, including division (exact-rational fallback) and summation.
fn arb_idx() -> BoxedStrategy<Idx> {
    let leaf = prop_oneof![
        (0u64..6).prop_map(Idx::nat),
        Just(Idx::infty()),
        Just(Idx::var("n")),
        Just(Idx::var("a")),
        Just(Idx::var("b")),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x + y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x - y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x * y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x / y),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Idx::min(x, y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Idx::max(x, y)),
            inner.clone().prop_map(Idx::ceil),
            inner.clone().prop_map(Idx::floor),
            inner.clone().prop_map(Idx::log2),
            // Keep exponents small so pow2 stays meaningful on the grid.
            inner
                .clone()
                .prop_map(|x| Idx::pow2(Idx::min(x, Idx::nat(6)))),
            (inner.clone(), inner.clone()).prop_map(|(hi, body)| Idx::sum(
                "s",
                Idx::zero(),
                Idx::min(hi, Idx::nat(8)),
                body
            )),
        ]
    })
    .boxed()
}

/// Random constraints: atoms over [`arb_idx`], all connectives, and bounded
/// quantifiers (including an existential, exercising the `min(bound, 8)`
/// cap).
fn arb_constr() -> BoxedStrategy<Constr> {
    let atom = prop_oneof![
        Just(Constr::Top),
        Just(Constr::Bot),
        (arb_idx(), arb_idx()).prop_map(|(x, y)| Constr::eq(x, y)),
        (arb_idx(), arb_idx()).prop_map(|(x, y)| Constr::leq(x, y)),
        (arb_idx(), arb_idx()).prop_map(|(x, y)| Constr::lt(x, y)),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Constr::And(vec![x, y])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Constr::Or(vec![x, y])),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Constr::Implies(Box::new(x), Box::new(y))),
            inner.clone().prop_map(|x| Constr::Not(Box::new(x))),
            inner.clone().prop_map(|x| Constr::Forall(
                rel_constraint::Quantified::new("q", Sort::Nat),
                Box::new(x)
            )),
            inner.clone().prop_map(|x| Constr::Exists(
                rel_constraint::Quantified::new("w", Sort::Nat),
                Box::new(x)
            )),
        ]
    })
    .boxed()
}

proptest! {
    // Point-for-point agreement of the two evaluators on random formulas
    // and random ground environments.
    #[test]
    fn bytecode_and_tree_evaluators_agree(
        hyp in arb_constr(),
        goal in arb_constr(),
        n in 0i64..12,
        a in 0i64..12,
        b in 0i64..12,
        bound in 0u64..6,
    ) {
        let u = universals();
        let program = compile_query(&u, &hyp, &goal);
        let mut frame = program.new_frame();
        let compiled = program.eval_point(
            &mut frame,
            &[Val::int(n), Val::int(a), Val::int(b)],
            bound,
        );
        let env = IdxEnv::from_pairs([
            ("n", Extended::from(n)),
            ("a", Extended::from(a)),
            ("b", Extended::from(b)),
        ]);
        let tree = hyp.clone().implies(goal.clone()).eval_bounded(&env, bound);
        prop_assert_eq!(compiled, tree, "hyp = {}, goal = {}", hyp, goal);
    }

    // Verdict-level agreement of the two solver paths, including the
    // counterexample environment and the `points_evaluated` count.  The
    // grid is shrunk so 256 random solver runs stay fast.
    #[test]
    fn solver_verdicts_agree_between_compiled_and_tree(
        hyp in arb_constr(),
        goal in arb_constr(),
    ) {
        let small = SolveConfig {
            nat_grid_max: 4,
            max_grid_points: 125,
            random_points: 8,
            inner_quantifier_bound: 3,
            ..SolveConfig::default()
        };
        let tree = SolveConfig {
            use_compiled_eval: false,
            ..small.clone()
        };
        let u = universals();
        let mut s_compiled = Solver::with_config(small);
        let mut s_tree = Solver::with_config(tree);
        let v_compiled = s_compiled.entails(&u, &hyp, &goal);
        let v_tree = s_tree.entails(&u, &hyp, &goal);
        prop_assert_eq!(
            v_compiled,
            v_tree,
            "solver paths diverge: hyp = {}, goal = {}",
            hyp,
            goal
        );
        prop_assert_eq!(
            s_compiled.stats().points_evaluated,
            s_tree.stats().points_evaluated,
            "point counts diverge: hyp = {}, goal = {}",
            hyp,
            goal
        );
    }
}
