//! Validity checking for existential-free constraints.
//!
//! The checker decides (best-effort) entailments of the form
//! `∀ ∆, ψₐ.  Φₐ ⟹ Φ`, the judgement the paper delegates to Why3 + Alt-Ergo.
//! It is layered:
//!
//! 1. **Symbolic layer** — linear arithmetic over exact rationals: hypothesis
//!    equalities are used as rewrites, the lemma table of [`crate::lemmas`]
//!    saturates facts about non-linear atoms, and a greedy positive-combination
//!    search discharges the goal when it is a consequence of the linear facts.
//! 2. **Numeric layer** — a bounded-exhaustive + randomized evaluation of the
//!    implication over a grid of values of the universally quantified index
//!    variables.  This layer both *refutes* invalid constraints (producing a
//!    counterexample) and, when configured as decisive (the default, matching
//!    DESIGN.md §4), *accepts* constraints that hold on the whole grid.
//!
//! The statistics collected ([`SolveStats`]) feed the Table-1 style timing
//! breakdown reported by the engine.
//!
//! Since the Fourier–Motzkin layer ([`crate::fm`]) landed between the greedy
//! search and the grid, verdicts carry **provenance**: [`Validity::Valid`]
//! records whether the obligation was *proved* (symbolic or FM — sound over
//! the unbounded domain) or merely *grid-checked* (accepted because no
//! counterexample appeared on the bounded sweep).  The distinction is
//! threaded through `DefReport`, the service protocol, the CLI and the
//! persisted snapshots.

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rel_index::{Atom, Extended, Idx, IdxEnv, IdxVar, LinExpr, Rational, Sort};

use crate::cache::{Fnv1a, QueryKey, QueryRef, ValidityCache};
use crate::compile::{compile_query, CompiledQuery, Val};
use crate::constr::Constr;
use crate::cpool;
use crate::exelim;
use crate::fm::{self, FmLimits, FmMemo, FmVerdict};
use crate::lemmas;

/// Configuration of the solver.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Largest natural tried per universally quantified variable on the grid.
    pub nat_grid_max: u64,
    /// Cap on the total number of grid points per query.
    pub max_grid_points: usize,
    /// Number of additional randomized sample points.
    pub random_points: usize,
    /// Domain bound used for quantifiers that remain *inside* the formula
    /// (e.g. axioms supplied as closed ∀-facts).
    pub inner_quantifier_bound: u64,
    /// Whether passing the numeric layer counts as validity.  When `false`,
    /// constraints the symbolic layer cannot prove come back as
    /// [`Validity::Unknown`].
    pub numeric_is_decisive: bool,
    /// Seed for the randomized sample points (fixed for reproducibility).
    pub rng_seed: u64,
    /// Cap on candidate-substitution combinations during existential
    /// elimination.
    pub max_exelim_attempts: usize,
    /// Whether the Fourier–Motzkin layer ([`crate::fm`]) runs between the
    /// greedy symbolic search and the numeric grid.  Unlike the
    /// verdict-neutral evaluation knobs below, this one **changes
    /// verdicts** (obligations the greedy search misses flip from
    /// grid-checked — or `Unknown` under a non-decisive numeric layer — to
    /// proved), so it is part of [`SolveConfig::fingerprint`].
    pub use_fm: bool,
    /// Evaluate numeric queries through the compiled bytecode of
    /// [`crate::compile`] (the default).  `false` selects the tree-walking
    /// evaluator — kept as the reference implementation and for the
    /// `solver_grid` benchmark's before/after comparison.
    pub use_compiled_eval: bool,
    /// Minimum number of grid points before the sweep is chunked across
    /// worker threads.  The default (`usize::MAX`) keeps the sweep on the
    /// calling thread: with the default 4 000-point cap a compiled sweep is
    /// far cheaper than thread startup, and batch services parallelize
    /// across queries already.  Services checking with enlarged grids lower
    /// this to spread one huge query across cores.
    pub parallel_grid_min_points: usize,
    /// Worker threads for a chunked grid sweep (`0` = the machine's
    /// available parallelism).
    pub parallel_grid_threads: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            nat_grid_max: 10,
            max_grid_points: 4_000,
            random_points: 64,
            inner_quantifier_bound: 8,
            numeric_is_decisive: true,
            rng_seed: 0xB1DE_C057,
            max_exelim_attempts: 128,
            use_fm: true,
            use_compiled_eval: true,
            parallel_grid_min_points: usize::MAX,
            parallel_grid_threads: 0,
        }
    }
}

impl SolveConfig {
    /// A stable fingerprint of every field that can influence a verdict.
    /// Mixed into cache keys: verdicts are only reusable between solvers
    /// running the *same* configuration (a laxer config must never leak
    /// `Valid` into a stricter one).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::default();
        h.write_u64(self.nat_grid_max);
        h.write_u64(self.max_grid_points as u64);
        h.write_u64(self.random_points as u64);
        h.write_u64(self.inner_quantifier_bound);
        h.write_u8(self.numeric_is_decisive as u8);
        h.write_u64(self.rng_seed);
        h.write_u64(self.max_exelim_attempts as u64);
        // `use_fm` turns `Unknown`/grid-checked verdicts into proved ones —
        // a verdict *and* provenance change — so a snapshot recorded with
        // the FM layer on must never be replayed into a solver running with
        // it off (and vice versa).
        h.write_u8(self.use_fm as u8);
        // `use_compiled_eval` and the parallel-sweep knobs are deliberately
        // *not* mixed in: they select an evaluation strategy, not a verdict.
        // The compiled evaluator is verdict-identical to the tree evaluator
        // (differential-tested), and a chunked sweep reports the same
        // lowest-index counterexample as a sequential one, so solvers that
        // differ only in these fields may share cached verdicts.
        h.finish()
    }
}

/// Statistics accumulated across solver queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of top-level entailment queries.
    pub queries: usize,
    /// Atomic goals discharged purely symbolically.
    pub symbolic_hits: usize,
    /// Goals discharged by the Fourier–Motzkin layer (proved, zero grid
    /// points).
    pub fm_proved: usize,
    /// Goals *refuted* by an FM witness: the feasible branch's assignment
    /// was extracted, re-verified by direct evaluation, and returned as the
    /// counterexample — again zero grid points.
    pub fm_refuted: usize,
    /// Leftover real-sorted existentials discharged by FM projection in
    /// `exelim` (each saved a bounded existential grid search).
    pub fm_projections: usize,
    /// DNF branch systems answered from the FM subproblem memo (each hit
    /// skipped a full elimination run).
    pub fm_memo_hits: usize,
    /// DNF branch systems eliminated and then memoized.
    pub fm_memo_misses: usize,
    /// Candidate assignments `exelim` rejected without a solver call:
    /// either the instantiated goal was already refuted under an earlier
    /// assignment (memoized rejection), or the screen found an on-grid
    /// counterexample at tree-evaluation cost (both from the indexed
    /// existential search).
    pub exelim_candidates_pruned: usize,
    /// Goals that needed the numeric layer.
    pub numeric_checks: usize,
    /// Numeric checks that ended in a grid-checked *accept* (the decisive
    /// numeric layer found no counterexample) — the verdicts that are
    /// `Valid(GridChecked)` rather than proved.
    pub grid_accepted: usize,
    /// Grid/random points evaluated by the numeric layer.
    pub points_evaluated: usize,
    /// Candidate substitutions attempted during existential elimination.
    pub exelim_attempts: usize,
    /// Entailment queries answered from the validity cache.
    pub cache_hits: usize,
    /// Entailment queries that consulted the validity cache and missed.
    pub cache_misses: usize,
    /// Numeric queries lowered to bytecode (program-cache misses).
    pub programs_compiled: usize,
    /// Numeric queries whose compiled program was reused from the
    /// program cache.
    pub program_cache_hits: usize,
    /// Wall-clock time spent inside the Fourier–Motzkin decision procedure
    /// (`fm::prove`) — the cost of *proving*.
    pub fm_time: Duration,
    /// Wall-clock time spent inside the numeric layer (compile + grid +
    /// random sweep) — the cost of *sweeping*.
    pub numeric_time: Duration,
    /// Wall-clock time spent eliminating existentials.
    pub exelim_time: Duration,
    /// Wall-clock time spent in constraint solving (excluding ∃-elimination).
    pub solving_time: Duration,
    /// Why the last exhausted existential search gave up, when a specific
    /// cap could be identified (`None` when no search was exhausted, or
    /// when the candidate pool simply ran dry without hitting a cap).
    pub search_exhausted: Option<SearchExhaustedReason>,
}

impl SolveStats {
    /// Accumulates `other` into `self`.
    ///
    /// This is the **single** aggregation point for solver counters — the
    /// batch workers, the daemon and the engine all sum through here, so a
    /// newly added field can never be silently dropped from one path: the
    /// exhaustive destructuring below fails to compile until the field is
    /// handled.
    pub fn merge(&mut self, other: &SolveStats) {
        let SolveStats {
            queries,
            symbolic_hits,
            fm_proved,
            fm_refuted,
            fm_projections,
            fm_memo_hits,
            fm_memo_misses,
            exelim_candidates_pruned,
            numeric_checks,
            grid_accepted,
            points_evaluated,
            exelim_attempts,
            cache_hits,
            cache_misses,
            programs_compiled,
            program_cache_hits,
            fm_time,
            numeric_time,
            exelim_time,
            solving_time,
            search_exhausted,
        } = *other;
        self.queries += queries;
        self.symbolic_hits += symbolic_hits;
        self.fm_proved += fm_proved;
        self.fm_refuted += fm_refuted;
        self.fm_projections += fm_projections;
        self.fm_memo_hits += fm_memo_hits;
        self.fm_memo_misses += fm_memo_misses;
        self.exelim_candidates_pruned += exelim_candidates_pruned;
        self.numeric_checks += numeric_checks;
        self.grid_accepted += grid_accepted;
        self.points_evaluated += points_evaluated;
        self.exelim_attempts += exelim_attempts;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.programs_compiled += programs_compiled;
        self.program_cache_hits += program_cache_hits;
        self.fm_time += fm_time;
        self.numeric_time += numeric_time;
        self.exelim_time += exelim_time;
        self.solving_time += solving_time;
        self.search_exhausted = self.search_exhausted.or(search_exhausted);
    }

    /// Publishes these statistics as counters and phase-latency histograms
    /// on the process-wide [`rel_obs::metrics::global`] registry.  Called
    /// once per def-check by the engine, so the histograms read as per-def
    /// phase-time distributions.  Exhaustively destructured like
    /// [`SolveStats::merge`], and for the same reason.
    pub fn publish(&self) {
        let SolveStats {
            queries,
            symbolic_hits,
            fm_proved,
            fm_refuted,
            fm_projections,
            fm_memo_hits,
            fm_memo_misses,
            exelim_candidates_pruned,
            numeric_checks,
            grid_accepted,
            points_evaluated,
            exelim_attempts,
            cache_hits,
            cache_misses,
            programs_compiled,
            program_cache_hits,
            fm_time,
            numeric_time,
            exelim_time,
            solving_time,
            search_exhausted,
        } = *self;
        rel_obs::counter!("solver.queries").add(queries as u64);
        rel_obs::counter!("solver.symbolic_hits").add(symbolic_hits as u64);
        rel_obs::counter!("solver.fm_proved").add(fm_proved as u64);
        rel_obs::counter!("solver.fm_refuted").add(fm_refuted as u64);
        rel_obs::counter!("solver.fm_projections").add(fm_projections as u64);
        rel_obs::counter!("solver.fm_memo_hits").add(fm_memo_hits as u64);
        rel_obs::counter!("solver.fm_memo_misses").add(fm_memo_misses as u64);
        rel_obs::counter!("solver.exelim_candidates_pruned").add(exelim_candidates_pruned as u64);
        rel_obs::counter!("solver.numeric_checks").add(numeric_checks as u64);
        rel_obs::counter!("solver.grid_accepted").add(grid_accepted as u64);
        rel_obs::counter!("solver.points_evaluated").add(points_evaluated as u64);
        rel_obs::counter!("solver.exelim_attempts").add(exelim_attempts as u64);
        rel_obs::counter!("solver.cache_hits").add(cache_hits as u64);
        rel_obs::counter!("solver.cache_misses").add(cache_misses as u64);
        rel_obs::counter!("solver.programs_compiled").add(programs_compiled as u64);
        rel_obs::counter!("solver.program_cache_hits").add(program_cache_hits as u64);
        rel_obs::histogram!("solver.fm_ns").observe(fm_time);
        rel_obs::histogram!("solver.numeric_ns").observe(numeric_time);
        rel_obs::histogram!("solver.exelim_ns").observe(exelim_time);
        rel_obs::histogram!("solver.solving_ns").observe(solving_time);
        if let Some(reason) = search_exhausted {
            // Four runtime-chosen names, so the per-call-site caching macro
            // does not apply; this is the once-per-def slow path.
            rel_obs::metrics::global()
                .counter(reason.counter_name())
                .incr();
        }
    }
}

/// Which cap ended an exhausted existential search — the difference between
/// "raise `max_exelim_attempts`" and "the FM system is too big", which is
/// exactly what the merge/msort close-out needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchExhaustedReason {
    /// `SolveConfig::max_exelim_attempts` candidate substitutions were
    /// tried without success.
    AttemptBudget,
    /// Fourier–Motzkin elimination gave up because an intermediate system
    /// exceeded the row or coefficient-magnitude limits (`FmLimits`).
    RowCap,
    /// Fourier–Motzkin gave up because the goal split into more DNF
    /// branches (or distinct atoms) than `FmLimits` allows.
    BranchCap,
    /// The indexed candidate search visited more combinations than the
    /// component exploration ceiling before the attempt budget was even
    /// reached (cartesian blowup inside one variable component).
    ComponentBlowup,
}

impl SearchExhaustedReason {
    /// Stable kebab-case tag used in JSON reports and CLI diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            SearchExhaustedReason::AttemptBudget => "attempt-budget",
            SearchExhaustedReason::RowCap => "row-cap",
            SearchExhaustedReason::BranchCap => "branch-cap",
            SearchExhaustedReason::ComponentBlowup => "component-blowup",
        }
    }

    /// Name of the recorder instant event emitted when this cap fires.
    pub fn event_name(self) -> &'static str {
        match self {
            SearchExhaustedReason::AttemptBudget => "exelim.exhausted.attempt-budget",
            SearchExhaustedReason::RowCap => "exelim.exhausted.row-cap",
            SearchExhaustedReason::BranchCap => "exelim.exhausted.branch-cap",
            SearchExhaustedReason::ComponentBlowup => "exelim.exhausted.component-blowup",
        }
    }

    /// Name of the recorder instant event emitted when Fourier–Motzkin
    /// *proving* (as opposed to exelim's projection) abstains on this cap.
    pub fn fm_event_name(self) -> &'static str {
        match self {
            SearchExhaustedReason::AttemptBudget => "fm.abstain.attempt-budget",
            SearchExhaustedReason::RowCap => "fm.abstain.row-cap",
            SearchExhaustedReason::BranchCap => "fm.abstain.branch-cap",
            SearchExhaustedReason::ComponentBlowup => "fm.abstain.component-blowup",
        }
    }

    /// Name of the global-registry counter bumped when this cap fires.
    pub fn counter_name(self) -> &'static str {
        match self {
            SearchExhaustedReason::AttemptBudget => "solver.search_exhausted.attempt-budget",
            SearchExhaustedReason::RowCap => "solver.search_exhausted.row-cap",
            SearchExhaustedReason::BranchCap => "solver.search_exhausted.branch-cap",
            SearchExhaustedReason::ComponentBlowup => "solver.search_exhausted.component-blowup",
        }
    }

    /// Human phrasing of the cap for failure diagnostics ("the <cap> of
    /// <n> ..." reads naturally with the fired limit appended).
    pub fn describe(self) -> &'static str {
        match self {
            SearchExhaustedReason::AttemptBudget => "the candidate-substitution attempt budget",
            SearchExhaustedReason::RowCap => {
                "the Fourier-Motzkin row/magnitude cap on an intermediate system"
            }
            SearchExhaustedReason::BranchCap => {
                "the Fourier-Motzkin branch/atom cap while splitting the goal"
            }
            SearchExhaustedReason::ComponentBlowup => {
                "the per-component exploration ceiling of the indexed candidate search"
            }
        }
    }

    /// Parses the [`SearchExhaustedReason::as_str`] tag back (used by the
    /// service layer when round-tripping reports through JSON).
    pub fn parse(s: &str) -> Option<SearchExhaustedReason> {
        match s {
            "attempt-budget" => Some(SearchExhaustedReason::AttemptBudget),
            "row-cap" => Some(SearchExhaustedReason::RowCap),
            "branch-cap" => Some(SearchExhaustedReason::BranchCap),
            "component-blowup" => Some(SearchExhaustedReason::ComponentBlowup),
            _ => None,
        }
    }
}

/// How a `Valid` verdict was reached — the provenance threaded through
/// reports, the service protocol and persisted snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Decided symbolically (greedy linear search, Fourier–Motzkin, or a
    /// structural combination of proved sub-goals): sound over the whole
    /// unbounded domain.
    Proved,
    /// Accepted because the decisive numeric layer found no counterexample
    /// on the bounded grid + random sweep.
    GridChecked,
}

impl Provenance {
    /// The provenance of a conjunction of verdicts: proved only when every
    /// conjunct was proved.
    pub fn and(self, other: Provenance) -> Provenance {
        match (self, other) {
            (Provenance::Proved, Provenance::Proved) => Provenance::Proved,
            _ => Provenance::GridChecked,
        }
    }
}

/// The verdict of a validity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The entailment holds; the [`Provenance`] records whether it was
    /// proved or merely checked on the whole numeric grid.
    Valid(Provenance),
    /// The entailment fails; a falsifying assignment is provided when the
    /// numeric layer found one.
    Invalid(Option<IdxEnv>),
    /// The symbolic layer could not decide and the numeric layer was not
    /// allowed to be decisive.
    Unknown,
}

impl Validity {
    /// A proved `Valid`.
    pub fn proved() -> Validity {
        Validity::Valid(Provenance::Proved)
    }

    /// A grid-checked `Valid`.
    pub fn grid_checked() -> Validity {
        Validity::Valid(Provenance::GridChecked)
    }

    /// Returns `true` for [`Validity::Valid`] of either provenance.
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid(_))
    }

    /// The provenance of a `Valid` verdict.
    pub fn provenance(&self) -> Option<Provenance> {
        match self {
            Validity::Valid(p) => Some(*p),
            _ => None,
        }
    }
}

/// Where a refutation (or the counterexample behind it) came from — kept by
/// the solver for the *last* top-level [`Solver::entails`] call so the
/// engine can explain failures instead of printing every `Invalid` the same
/// way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CexSource {
    /// The exhaustive bounded grid sweep found the falsifying point.
    GridSweep,
    /// The randomized sampling phase found the falsifying point.
    RandomSample,
    /// Fourier–Motzkin elimination produced the witness (re-verified by
    /// direct evaluation before being reported).
    FmWitness,
    /// No numeric counterexample exists in hand: the candidate-substitution
    /// search for the goal's existentials was exhausted.
    SearchExhausted,
}

/// Diagnostics of the last refutation: the counterexample source, the
/// falsifying assignment (when numeric) and the atom-elimination order of
/// the Fourier–Motzkin run that preceded it (empty when FM never ran on
/// the failing goal).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefutationInfo {
    /// What produced the refutation.
    pub source: Option<CexSource>,
    /// The falsifying assignment, if a numeric layer found one.
    pub env: Option<IdxEnv>,
    /// FM elimination order (atom display names) of the failing goal.
    pub fm_eliminated: Vec<String>,
    /// For [`CexSource::SearchExhausted`] refutations: which cap fired,
    /// with the configured limit value, when one could be identified.
    pub exhausted: Option<(SearchExhaustedReason, u64)>,
}

/// One memoized compiled program, stored next to its full key so program
/// hash collisions can never alias two queries onto one bytecode.
#[derive(Debug, Clone)]
struct ProgramEntry {
    universals: Vec<(IdxVar, Sort)>,
    hyp: Constr,
    goal: Constr,
    program: Arc<CompiledQuery>,
}

/// The full key of one compiled numeric query, as exported for snapshots.
///
/// Compilation is deterministic and cheap next to solving, so snapshots
/// persist the *keys* of the program memo rather than the bytecode itself:
/// loading recompiles each key once ([`SharedProgramCache::warm`]) and the
/// first checks of the new process start with a hot program cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramKey {
    /// The universally quantified context of the query.
    pub universals: Vec<(IdxVar, Sort)>,
    /// The hypothesis constraint.
    pub hyp: Constr,
    /// The goal constraint.
    pub goal: Constr,
}

impl ProgramKey {
    fn stable_hash(&self) -> u64 {
        program_key_hash(&self.universals, &self.hyp, &self.goal)
    }
}

fn program_key_hash(universals: &[(IdxVar, Sort)], hyp: &Constr, goal: &Constr) -> u64 {
    let mut h = Fnv1a::default();
    universals.hash(&mut h);
    hyp.hash(&mut h);
    goal.hash(&mut h);
    h.finish()
}

/// Counters of a [`SharedProgramCache`] (monotone, process-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Lookups answered with an already-compiled program.
    pub hits: u64,
    /// Lookups that missed (the caller compiled and published).
    pub misses: u64,
    /// Programs currently stored.
    pub entries: u64,
}

/// A compiled-program memo shared across solvers.
///
/// The per-[`Solver`] program cache dies with its solver — and engines spawn
/// a fresh solver per definition, so without sharing, every definition (and
/// every daemon request) recompiles the numeric queries it has in common
/// with its neighbours.  Attaching one `SharedProgramCache` to an engine
/// (mirroring the validity cache) makes the bytecode survive across
/// definitions, requests and — via [`SharedProgramCache::export_keys`] and
/// [`SharedProgramCache::warm`] in `rel-persist` snapshots — processes.
///
/// Sharding and the clear-when-full eviction mirror
/// [`crate::cache::ShardedValidityCache`]; entries store their full key, so
/// hash collisions can never alias two queries onto one bytecode.
pub struct SharedProgramCache {
    shards: Vec<Mutex<ProgramShard>>,
    max_entries_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
}

impl Default for SharedProgramCache {
    // Hand-written (like ShardedValidityCache's): a derived Default would
    // build a zero-shard cache whose first lookup divides by zero.
    fn default() -> Self {
        SharedProgramCache::new()
    }
}

#[derive(Default)]
struct ProgramShard {
    buckets: HashMap<u64, Vec<ProgramEntry>>,
    len: usize,
}

impl SharedProgramCache {
    /// Default shard count (8) and per-shard capacity (2 048 programs).
    pub fn new() -> SharedProgramCache {
        SharedProgramCache::with_shards_and_capacity(8, 2_048)
    }

    /// A cache with explicit shard count and per-shard entry cap (both
    /// rounded up to at least 1).
    pub fn with_shards_and_capacity(n: usize, max_entries_per_shard: usize) -> SharedProgramCache {
        SharedProgramCache {
            shards: (0..n.max(1))
                .map(|_| Mutex::new(ProgramShard::default()))
                .collect(),
            max_entries_per_shard: max_entries_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<ProgramShard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    fn lookup(
        &self,
        hash: u64,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Option<Arc<CompiledQuery>> {
        let shard = self.shard(hash).lock().expect("program shard poisoned");
        let found = shard.buckets.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.universals == universals && e.hyp == *hyp && e.goal == *goal)
                .map(|e| Arc::clone(&e.program))
        });
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, hash: u64, entry: ProgramEntry) {
        let mut shard = self.shard(hash).lock().expect("program shard poisoned");
        if shard.len >= self.max_entries_per_shard {
            shard.buckets.clear();
            self.entries.fetch_sub(shard.len as u64, Ordering::Relaxed);
            shard.len = 0;
        }
        let bucket = shard.buckets.entry(hash).or_default();
        if bucket
            .iter()
            .any(|e| e.universals == entry.universals && e.hyp == entry.hyp && e.goal == entry.goal)
        {
            return;
        }
        bucket.push(entry);
        shard.len += 1;
        self.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Compiles (if absent) the program for one query key — snapshot loading
    /// replays exported keys through this to warm the cache.  The compile
    /// happens outside the shard lock; a racing warm of the same key is
    /// deduplicated by [`SharedProgramCache::insert`].
    pub fn warm(&self, key: &ProgramKey) {
        let hash = key.stable_hash();
        {
            let shard = self.shard(hash).lock().expect("program shard poisoned");
            if let Some(bucket) = shard.buckets.get(&hash) {
                if bucket.iter().any(|e| {
                    e.universals == key.universals && e.hyp == key.hyp && e.goal == key.goal
                }) {
                    return;
                }
            }
        }
        let program = Arc::new(compile_query(&key.universals, &key.hyp, &key.goal));
        self.insert(
            hash,
            ProgramEntry {
                universals: key.universals.clone(),
                hyp: key.hyp.clone(),
                goal: key.goal.clone(),
                program,
            },
        );
    }

    /// Clones out every program key, in a deterministic order (shards in
    /// index order, buckets by hash) — snapshot saving.
    pub fn export_keys(&self) -> Vec<ProgramKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("program shard poisoned");
            let mut hashes: Vec<u64> = shard.buckets.keys().copied().collect();
            hashes.sort_unstable();
            for h in hashes {
                for e in &shard.buckets[&h] {
                    out.push(ProgramKey {
                        universals: e.universals.clone(),
                        hyp: e.hyp.clone(),
                        goal: e.goal.clone(),
                    });
                }
            }
        }
        out
    }

    /// Drops every stored program (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("program shard poisoned");
            shard.buckets.clear();
            self.entries.fetch_sub(shard.len as u64, Ordering::Relaxed);
            shard.len = 0;
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for SharedProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedProgramCache")
            .field("shards", &self.shards.len())
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

/// Entry cap of the per-solver program cache.  Solvers live for one
/// definition (engines spawn a fresh one per def), so the cap only matters
/// for unusually long-lived solvers; it is cleared wholesale when full,
/// like a validity-cache shard.
const MAX_CACHED_PROGRAMS: usize = 4_096;

/// The constraint solver.
#[derive(Debug)]
pub struct Solver {
    config: SolveConfig,
    /// `config.fingerprint()`, computed once — it is on the cache hot path.
    config_fingerprint: u64,
    stats: SolveStats,
    cache: Option<Arc<dyn ValidityCache>>,
    /// Compiled-program memo, keyed on the stable structural hash of
    /// `(universals, hyp, goal)` with full-key verification (the same
    /// collision discipline as the validity cache, see DESIGN.md §5.1).
    programs: HashMap<u64, Vec<ProgramEntry>>,
    cached_program_count: usize,
    /// Optional cross-solver program memo, consulted after the local map
    /// misses and published to after every compile.
    shared_programs: Option<Arc<SharedProgramCache>>,
    /// Limits of the Fourier–Motzkin layer.
    fm_limits: FmLimits,
    /// FM subproblem memo: canonical normalized branch systems → decisions.
    fm_memo: FmMemo,
    /// Per-solver verdict memo over canonical query keys, consulted by
    /// `entails_canonical` (the structural decomposition): engines run
    /// cache-less solvers by default, and the sub-goals one definition
    /// decomposes into repeat heavily.  The `entails_no_exists` gateway of
    /// `exelim`'s candidate attempts deliberately does *not* consult it —
    /// hashing a large hypothesis per attempt costs more than the cheap
    /// sweeps it would save; repeated *decide-layer* work on that path is
    /// deduplicated by the FM layer's own query/branch memos instead.
    /// Keys are the same canonical [`QueryKey`]s the shared cache uses, so
    /// hash collisions can never replay a wrong verdict.
    local_verdicts: HashMap<u64, Vec<(QueryKey, Validity)>>,
    local_verdict_count: usize,
    /// Diagnostics of the last refutation (reset per top-level `entails`).
    last_refutation: RefutationInfo,
    /// FM elimination order of the goal currently being decided; moved into
    /// `last_refutation` only when that same goal is refuted (cleared at
    /// every `symbolic_decide`, so a refutation is never annotated with an
    /// unrelated goal's atoms).
    pending_fm_order: Vec<String>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::with_config(SolveConfig::default())
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolveConfig) -> Solver {
        Solver {
            config_fingerprint: config.fingerprint(),
            config,
            stats: SolveStats::default(),
            cache: None,
            programs: HashMap::new(),
            cached_program_count: 0,
            shared_programs: None,
            fm_limits: FmLimits::default(),
            fm_memo: FmMemo::default(),
            local_verdicts: HashMap::new(),
            local_verdict_count: 0,
            last_refutation: RefutationInfo::default(),
            pending_fm_order: Vec::new(),
        }
    }

    /// Attaches a shared validity cache, consulted before every entailment
    /// query (including the structural sub-queries `entails` decomposes into)
    /// and populated with every verdict computed.  Sound because the solver is
    /// deterministic: its randomized numeric layer runs from a fixed seed.
    pub fn with_cache(mut self, cache: Arc<dyn ValidityCache>) -> Solver {
        self.cache = Some(cache);
        self
    }

    /// The attached validity cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn ValidityCache>> {
        self.cache.as_ref()
    }

    /// Attaches a shared compiled-program memo, consulted when the solver's
    /// own program map misses and published to after every compile.  Safe to
    /// share between solvers of *different* configurations: the bytecode of a
    /// query is a pure function of `(universals, hyp, goal)` — configuration
    /// only decides which points it is evaluated at.
    pub fn with_program_cache(mut self, programs: Arc<SharedProgramCache>) -> Solver {
        self.shared_programs = Some(programs);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SolveStats::default();
    }

    /// Diagnostics of the most recent refutation (meaningful right after a
    /// failed [`Solver::entails`]; reset on every top-level call).
    pub fn last_refutation(&self) -> &RefutationInfo {
        &self.last_refutation
    }

    /// Checks the entailment `∀ universals. hyp ⟹ goal`.
    ///
    /// Existential quantifiers inside `goal` are eliminated first using the
    /// candidate-substitution pass of [`crate::exelim`], exactly as in §6 of
    /// the paper.
    pub fn entails(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let _span = rel_obs::span_with("solver.entails", universals.len() as u64);
        self.last_refutation = RefutationInfo::default();
        self.pending_fm_order.clear();
        let goal = simplify(goal);
        self.entails_canonical(universals, hyp, &goal)
    }

    /// [`Solver::entails`] on a goal that is already in simplified form.
    ///
    /// Structural recursion goes through this entry point: `simplify` is
    /// idempotent and recursive, so the sub-goals of a simplified goal are
    /// themselves simplified and re-simplifying them at every decomposition
    /// level would rebuild the same trees over and over (one full clone per
    /// level in the seed).
    fn entails_canonical(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        self.stats.queries += 1;
        if goal.is_top() {
            return Validity::proved();
        }
        // Consult the per-solver memo, then the shared validity cache (when
        // attached), on the canonical form of the query.  Structural
        // sub-queries recurse back through `entails`, so conjuncts and
        // implication bodies are memoized individually — that is what lets
        // verdicts transfer across definitions that share sub-derivations,
        // not just across identical top-level queries.  The lookup borrows
        // the constraints; nothing is cloned unless a freshly computed
        // verdict is stored.  (The Arc clone releases the borrow of
        // `self.cache` so one canonicalized query serves both the lookup
        // and the store.)
        let query = QueryRef::new(self.config_fingerprint, universals, hyp, goal);
        let qhash = query.stable_hash();
        if let Some(verdict) = self.local_lookup(qhash, &query) {
            return verdict;
        }
        if let Some(cache) = self.cache.clone() {
            if let Some(verdict) = cache.lookup(&query) {
                self.stats.cache_hits += 1;
                self.local_store(qhash, query.to_key(), verdict.clone());
                return verdict;
            }
            self.stats.cache_misses += 1;
            let verdict = self.entails_simplified(universals, hyp, goal);
            cache.store(&query, verdict.clone());
            self.local_store(qhash, query.to_key(), verdict.clone());
            verdict
        } else {
            let verdict = self.entails_simplified(universals, hyp, goal);
            self.local_store(qhash, query.to_key(), verdict.clone());
            verdict
        }
    }

    /// The per-solver verdict memo entry cap; a full memo is wholesale-
    /// cleared (epoch eviction, like every other memo layer).
    const MAX_LOCAL_VERDICTS: usize = 16_384;

    /// Looks up a canonical query in the per-solver memo.
    fn local_lookup(&self, hash: u64, query: &QueryRef<'_>) -> Option<Validity> {
        self.local_verdicts
            .get(&hash)?
            .iter()
            .find(|(k, _)| query.matches(k))
            .map(|(_, v)| v.clone())
    }

    /// Memoizes a verdict in the per-solver memo.
    fn local_store(&mut self, hash: u64, key: QueryKey, verdict: Validity) {
        if self.local_verdict_count >= Self::MAX_LOCAL_VERDICTS {
            self.local_verdicts.clear();
            self.local_verdict_count = 0;
        }
        let bucket = self.local_verdicts.entry(hash).or_default();
        if bucket.iter().any(|(k, _)| *k == key) {
            return;
        }
        bucket.push((key, verdict));
        self.local_verdict_count += 1;
    }

    /// The uncached entailment check on an already-simplified goal.
    fn entails_simplified(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        // Decompose the goal structurally first so existential elimination is
        // applied to the smallest possible subproblems (each sub-derivation's
        // existentials stay together, but unrelated conjuncts are separated).
        match goal {
            Constr::Top => return Validity::proved(),
            Constr::And(cs) => {
                let mut prov = Provenance::Proved;
                for c in cs {
                    match self.entails_canonical(universals, hyp, c) {
                        Validity::Valid(p) => prov = prov.and(p),
                        other => return other,
                    }
                }
                return Validity::Valid(prov);
            }
            Constr::Implies(a, b) => {
                let hyp = hyp.clone().and((**a).clone());
                return self.entails_canonical(universals, &hyp, b);
            }
            Constr::Forall(q, c) => {
                let mut universals = universals.to_vec();
                universals.push((q.var.clone(), q.sort));
                return self.entails_canonical(&universals, hyp, c);
            }
            _ => {}
        }

        let ex_vars = goal.existential_vars();
        if ex_vars.is_empty() {
            let start = Instant::now();
            let v = self.entails_no_exists(universals, hyp, goal);
            self.stats.solving_time += start.elapsed();
            v
        } else {
            let start = Instant::now();
            let outcome = exelim::eliminate_existentials(self, universals, hyp, goal);
            self.stats.exelim_time += start.elapsed();
            match outcome.validity {
                Some(v) => v,
                None => {
                    // No candidate substitution worked.  A fully numeric check
                    // with bounded existential search is only affordable for a
                    // couple of leftover variables; otherwise report failure.
                    if ex_vars.len() <= 2 {
                        let start = Instant::now();
                        let v = self.numeric_check(universals, hyp, goal);
                        self.stats.solving_time += start.elapsed();
                        v
                    } else {
                        self.note_search_exhausted(outcome.stats.exhausted);
                        Validity::Invalid(None)
                    }
                }
            }
        }
    }

    /// Checks an entailment whose goal contains no existential quantifier.
    pub(crate) fn entails_no_exists(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let goal = simplify(goal);
        self.no_exists_canonical(universals, hyp, &goal)
    }

    /// [`Solver::entails_no_exists`] on an already-simplified goal; the
    /// structural recursion below stays here so each decomposition level
    /// reuses the one simplification done at entry instead of rebuilding
    /// the goal tree per level.
    fn no_exists_canonical(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        match goal {
            Constr::Top => Validity::proved(),
            Constr::And(cs) => {
                let mut prov = Provenance::Proved;
                for c in cs {
                    match self.no_exists_canonical(universals, hyp, c) {
                        Validity::Valid(p) => prov = prov.and(p),
                        other => return other,
                    }
                }
                Validity::Valid(prov)
            }
            Constr::Implies(a, b) => {
                let hyp = hyp.clone().and((**a).clone());
                self.no_exists_canonical(universals, &hyp, b)
            }
            Constr::Forall(q, c) => {
                let mut universals = universals.to_vec();
                universals.push((q.var.clone(), q.sort));
                self.no_exists_canonical(&universals, hyp, c)
            }
            Constr::Or(cs) => {
                // Sufficient condition: one disjunct is entailed on its own.
                // Disjuncts may contain their own existentials (heuristic 1
                // joins the consC/consNC derivations with ∨), so recurse
                // through the full pipeline per disjunct.
                for c in cs {
                    if c.existential_vars().is_empty() {
                        if self.symbolic_entails(universals, hyp, c).unwrap_or(false) {
                            self.stats.symbolic_hits += 1;
                            return Validity::proved();
                        }
                    } else if let v @ Validity::Valid(_) =
                        self.entails_canonical(universals, hyp, c)
                    {
                        return v;
                    }
                }
                if goal.existential_vars().is_empty() {
                    // Pointwise-only disjunctions (no single disjunct is
                    // entailed) are exactly where the case-splitting FM
                    // refutation shines: ¬(d₁ ∨ d₂) conjoins both negations.
                    if let Some(v) = self.symbolic_decide(universals, hyp, goal) {
                        return v;
                    }
                    self.numeric_check(universals, hyp, goal)
                } else {
                    self.note_search_exhausted(None);
                    Validity::Invalid(None)
                }
            }
            Constr::Eq(_, _)
            | Constr::Leq(_, _)
            | Constr::Lt(_, _)
            | Constr::Bot
            | Constr::Not(_) => {
                if let Some(v) = self.symbolic_decide(universals, hyp, goal) {
                    return v;
                }
                self.numeric_check(universals, hyp, goal)
            }
            Constr::Exists(_, _) => {
                // Residual existential (can only happen when called directly):
                // defer to the numeric layer's bounded search.
                self.numeric_check(universals, hyp, goal)
            }
        }
    }

    // ----------------------------------------------------------------------
    // Symbolic layer
    // ----------------------------------------------------------------------

    /// Attempts to prove `hyp ⟹ goal` by greedy linear reasoning; returns
    /// `None` when the goal shape is outside the fragment.
    fn symbolic_entails(
        &mut self,
        _universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Option<bool> {
        with_prepared_facts(hyp, goal, |_, rewritten_goal, ineq_facts| {
            self.greedy_entails(rewritten_goal, ineq_facts)
        })
    }

    /// The greedy layer proper, on already-prepared (rewritten, saturated)
    /// facts — shared between [`Solver::symbolic_entails`] and the combined
    /// pipeline of [`Solver::symbolic_decide`], which prepares the facts
    /// once for both the greedy search and Fourier–Motzkin.
    fn greedy_entails(&self, goal: &Constr, ineq_facts: &[Cow<'_, Constr>]) -> Option<bool> {
        match goal {
            Constr::Eq(a, b) => {
                let d = LinExpr::of_idx(a).sub(&LinExpr::of_idx(b));
                Some(d == LinExpr::zero())
            }
            Constr::Leq(a, b) => {
                Some(self.prove_nonneg(LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)), ineq_facts))
            }
            Constr::Lt(a, b) => {
                // For the integer-valued index terms of RelCost, a < b is
                // a + 1 ≤ b; for costs we require strict slack in the constant.
                let d = LinExpr::of_idx(b).sub(&LinExpr::of_idx(a));
                let strict = LinExpr::of_idx(&(b.clone() - a.clone() - Idx::one()));
                Some(
                    self.prove_nonneg(strict, ineq_facts)
                        || (d.coeffs.is_empty() && matches!(d.constant, Extended::Infinity))
                        || matches!(d.as_finite_constant(), Some(q) if q > Rational::ZERO),
                )
            }
            Constr::Bot => {
                // hyp ⟹ ff holds only if hyp is contradictory; detect the
                // simple case of a hypothesis that is syntactically Bot.
                Some(ineq_facts.iter().any(|c| c.is_bot()))
            }
            _ => None,
        }
    }

    /// Greedy positive-combination search: is `target ≥ 0` derivable from the
    /// facts (each read as `rhs − lhs ≥ 0`) plus non-negativity of atoms?
    fn prove_nonneg(&self, mut target: LinExpr, facts: &[Cow<'_, Constr>]) -> bool {
        if target.is_syntactically_nonneg() {
            return true;
        }
        // Pre-compute fact expressions (each ≥ 0 under the hypotheses).
        // Equalities contribute both directions.
        let mut fact_exprs: Vec<LinExpr> = Vec::new();
        for c in facts {
            match c.as_ref() {
                Constr::Leq(a, b) | Constr::Lt(a, b) => {
                    fact_exprs.push(LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)));
                }
                Constr::Eq(a, b) => {
                    fact_exprs.push(LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)));
                    fact_exprs.push(LinExpr::of_idx(a).sub(&LinExpr::of_idx(b)));
                }
                _ => {}
            }
        }

        // To show `target ≥ 0` it suffices to find non-negative multipliers λᵢ
        // such that `target − Σ λᵢ·factᵢ` has only non-negative coefficients
        // and a non-negative constant (every atom denotes a non-negative
        // quantity).  The greedy loop cancels one negative coefficient at a
        // time using a fact that carries the same atom negatively.
        for _round in 0..12 {
            if target.is_syntactically_nonneg() {
                return true;
            }
            // Find an atom with a negative coefficient.
            let offending = target
                .coeffs
                .iter()
                .find(|(_, q)| q.is_negative())
                .map(|(a, q)| (a.clone(), *q));
            let (atom, neg_coeff) = match offending {
                Some(x) => x,
                None => {
                    return match target.constant {
                        Extended::Finite(q) => !q.is_negative(),
                        Extended::Infinity => true,
                    }
                }
            };
            // Use a fact whose expression also carries the atom negatively:
            // λ = d_A / f_A > 0 and subtracting λ·fact zeroes the coefficient.
            let mut progressed = false;
            for fe in &fact_exprs {
                if let Some(fc) = fe.coeffs.get(&atom) {
                    if fc.is_negative() {
                        let lambda = neg_coeff / *fc;
                        target = target.sub(&fe.scale(lambda));
                        progressed = true;
                        break;
                    }
                }
            }
            if !progressed {
                return false;
            }
        }
        target.is_syntactically_nonneg()
    }

    // ----------------------------------------------------------------------
    // Fourier–Motzkin layer
    // ----------------------------------------------------------------------

    /// The combined symbolic pipeline on an existential-free goal: prepares
    /// the facts **once** (hypothesis conjuncts, lemma saturation,
    /// hypothesis-equality rewrites) and runs the greedy search and then the
    /// complete Fourier–Motzkin procedure over them.  Returns
    /// `Some(Valid(Proved))` on a proof, `Some(Invalid)` on a verified FM
    /// witness, and `None` when the query must fall through to the numeric
    /// layer.
    fn symbolic_decide(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Option<Validity> {
        let _span = rel_obs::span("solver.symbolic");
        // A new goal's decision invalidates whatever elimination order the
        // *previous* goal's FM run left pending — a later refutation must
        // never be annotated with another goal's atoms.
        self.pending_fm_order.clear();
        // Cloned out of `self` so the closure below can borrow the FM memo
        // mutably alongside (the limits are three words).
        let fm_limits = self.fm_limits.clone();
        with_prepared_facts(hyp, goal, |rewrites, rewritten_goal, ineq_facts| {
            if self
                .greedy_entails(rewritten_goal, ineq_facts)
                .unwrap_or(false)
            {
                self.stats.symbolic_hits += 1;
                return Some(Validity::proved());
            }
            if !self.config.use_fm {
                return None;
            }
            let fact_refs: Vec<&Constr> = ineq_facts.iter().map(|c| c.as_ref()).collect();

            let tf = Instant::now();
            let outcome = {
                let _fm_span = rel_obs::span_with("fm.prove", fact_refs.len() as u64);
                fm::prove(
                    universals,
                    &fact_refs,
                    rewritten_goal,
                    &fm_limits,
                    &mut self.fm_memo,
                )
            };
            self.stats.fm_time += tf.elapsed();
            self.stats.fm_memo_hits += outcome.memo_hits;
            self.stats.fm_memo_misses += outcome.memo_misses;
            if outcome.memo_hits > 0 {
                rel_obs::event_with("fm.memo_hit", outcome.memo_hits as u64);
            }
            if debug_layers() {
                eprintln!(
                    "fm[{:?} w={} elim={}]: GOAL {goal}",
                    outcome.verdict,
                    outcome.witness.is_some(),
                    outcome.eliminated.len()
                );
            }
            match outcome.verdict {
                FmVerdict::Proved => {
                    self.stats.fm_proved += 1;
                    Some(Validity::proved())
                }
                FmVerdict::CandidateRefuted | FmVerdict::Abstained => {
                    // Remember the elimination order: if *this* goal goes on
                    // to be refuted, the diagnostic can say which atoms FM
                    // projected before handing over.
                    self.pending_fm_order = outcome.eliminated;
                    // A witness exists only when every atom was a plain
                    // variable (no abstraction gap).  Even then it is trusted
                    // only after re-evaluating the original implication at the
                    // point — that single evaluation is what makes the verdict
                    // exactly as sound as a grid counterexample, at none of the
                    // sweep's cost.
                    if let Some(witness) = outcome.witness {
                        let mut env = IdxEnv::new();
                        for (v, _) in universals {
                            env.bind(v.clone(), Extended::ZERO);
                        }
                        for (v, q) in witness {
                            env.bind(v, Extended::Finite(q));
                        }
                        // Variables consumed as hypothesis-equality rewrites
                        // were substituted out of the FM system; reconstruct
                        // their values from the rewrite right-hand sides so
                        // the full (unrewritten) hypothesis evaluates
                        // correctly.  Iterated to a fixed point:
                        // `split_rewrites` closes chains where it can, but a
                        // rewrite whose right-hand side still mentions
                        // another rewritten variable (cycle guard, bounded
                        // closure) would otherwise evaluate against that
                        // variable's stale zero default and discard a
                        // genuine counterexample.
                        for _ in 0..rewrites.len().max(1) {
                            for (v, idx) in rewrites {
                                if let Ok(value) = idx.eval(&env) {
                                    env.bind(v.clone(), value);
                                }
                            }
                        }
                        let formula = hyp.clone().implies(goal.clone());
                        if !formula.eval_bounded(&env, self.config.inner_quantifier_bound) {
                            self.stats.fm_refuted += 1;
                            self.note_counterexample(CexSource::FmWitness, &env);
                            return Some(Validity::Invalid(Some(env)));
                        }
                    }
                    None
                }
            }
        })
    }

    /// Records one FM existential projection (called by `exelim`).
    pub(crate) fn note_fm_projection(&mut self) {
        self.stats.fm_projections += 1;
    }

    /// The FM limits in force (exelim's projection fallback shares them).
    pub(crate) fn fm_limits(&self) -> &FmLimits {
        &self.fm_limits
    }

    // ----------------------------------------------------------------------
    // Numeric layer
    // ----------------------------------------------------------------------

    /// Bounded-exhaustive plus randomized check of `∀ universals. hyp ⟹ goal`.
    ///
    /// The default path compiles the implication **once** to the flat
    /// bytecode of [`crate::compile`] (memoized in the program cache) and
    /// re-evaluates that program — with a single reused evaluation frame —
    /// at every grid and random point.  `use_compiled_eval = false` selects
    /// the tree-walking reference evaluator.  Verdicts and counterexamples
    /// are identical either way (differential-tested).
    fn numeric_check(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let _span = rel_obs::span_with("solver.numeric", universals.len() as u64);
        self.stats.numeric_checks += 1;
        if debug_layers() {
            eprintln!(
                "numeric[{} univ]: GOAL {goal} ||| HYP {hyp}",
                universals.len()
            );
        }
        let tn = Instant::now();
        let v = if self.config.use_compiled_eval {
            self.numeric_check_compiled(universals, hyp, goal)
        } else {
            self.numeric_check_tree(universals, hyp, goal)
        };
        self.stats.numeric_time += tn.elapsed();
        v
    }

    /// The verdict of a numeric sweep that found no counterexample: a
    /// grid-checked accept when the numeric layer is decisive, `Unknown`
    /// otherwise.
    fn numeric_accept(&mut self) -> Validity {
        if self.config.numeric_is_decisive {
            self.stats.grid_accepted += 1;
            Validity::grid_checked()
        } else {
            Validity::Unknown
        }
    }

    /// Records a counterexample for the failure diagnostics, claiming the
    /// pending FM elimination order (it belongs to the goal being refuted).
    fn note_counterexample(&mut self, source: CexSource, env: &IdxEnv) {
        self.last_refutation.source = Some(source);
        self.last_refutation.env = Some(env.clone());
        self.last_refutation.fm_eliminated = std::mem::take(&mut self.pending_fm_order);
    }

    /// Records an exhausted existential search (no numeric counterexample),
    /// with the cap that ended it when one fired.
    fn note_search_exhausted(&mut self, why: Option<(SearchExhaustedReason, u64)>) {
        self.last_refutation.source = Some(CexSource::SearchExhausted);
        self.last_refutation.env = None;
        self.last_refutation.fm_eliminated = std::mem::take(&mut self.pending_fm_order);
        self.last_refutation.exhausted = why;
        if let Some((reason, _)) = why {
            self.stats.search_exhausted = self.stats.search_exhausted.or(Some(reason));
        }
    }

    /// Adaptive per-variable grid size so the total stays under the cap.
    fn per_var_grid(&self, vars: usize) -> u64 {
        let k = vars as u32;
        let mut per_var = self.config.nat_grid_max + 1;
        while (per_var as u128).pow(k) > self.config.max_grid_points as u128 && per_var > 3 {
            per_var -= 1;
        }
        per_var
    }

    /// Looks up (or compiles and memoizes) the bytecode of one query.
    fn lookup_or_compile(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Arc<CompiledQuery> {
        let key = program_key_hash(universals, hyp, goal);
        if let Some(entries) = self.programs.get(&key) {
            if let Some(e) = entries
                .iter()
                .find(|e| e.universals == universals && e.hyp == *hyp && e.goal == *goal)
            {
                self.stats.program_cache_hits += 1;
                return Arc::clone(&e.program);
            }
        }
        // The local map missed: try the cross-solver memo (a hit there is
        // still a program-cache hit from this solver's point of view), and
        // only compile when both layers miss.  Either way the program is
        // memoized locally so repeats within this solver stay lock-free.
        let (program, fresh) = match self
            .shared_programs
            .as_ref()
            .and_then(|shared| shared.lookup(key, universals, hyp, goal))
        {
            Some(program) => {
                self.stats.program_cache_hits += 1;
                (program, false)
            }
            None => {
                self.stats.programs_compiled += 1;
                let _span = rel_obs::span("grid.compile");
                (Arc::new(compile_query(universals, hyp, goal)), true)
            }
        };
        if self.cached_program_count >= MAX_CACHED_PROGRAMS {
            self.programs.clear();
            self.cached_program_count = 0;
        }
        let entry = ProgramEntry {
            universals: universals.to_vec(),
            hyp: hyp.clone(),
            goal: goal.clone(),
            program: Arc::clone(&program),
        };
        if fresh {
            if let Some(shared) = &self.shared_programs {
                shared.insert(key, entry.clone());
            }
        }
        self.programs.entry(key).or_default().push(entry);
        self.cached_program_count += 1;
        program
    }

    fn numeric_check_compiled(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let bound = self.config.inner_quantifier_bound;
        let program = self.lookup_or_compile(universals, hyp, goal);

        if universals.is_empty() {
            let mut frame = program.new_frame();
            self.stats.points_evaluated += 1;
            return if program.eval(&mut frame, bound) {
                self.numeric_accept()
            } else {
                let env = IdxEnv::new();
                self.note_counterexample(CexSource::GridSweep, &env);
                Validity::Invalid(Some(env))
            };
        }

        let per_var = self.per_var_grid(universals.len());
        let total = (per_var as u128).pow(universals.len() as u32);
        let parallel = total >= self.config.parallel_grid_min_points as u128
            && u64::try_from(total).is_ok()
            && self.grid_threads() > 1;

        let mut frame = program.new_frame();
        let failing = if parallel {
            self.grid_sweep_parallel(&program, universals.len(), per_var, total as u64, bound)
        } else {
            self.grid_sweep_sequential(&program, &mut frame, universals.len(), per_var, bound)
        };
        if let Some(idx) = failing {
            let coords = decode_grid_point(idx, per_var, universals.len());
            let env = IdxEnv::from_pairs(
                universals
                    .iter()
                    .zip(&coords)
                    .map(|((v, _), n)| (v.clone(), Extended::from(*n))),
            );
            self.note_counterexample(CexSource::GridSweep, &env);
            return Validity::Invalid(Some(env));
        }

        // Randomized phase: same seeded stream as the tree evaluator, but
        // points that already lie on the exhaustively-swept grid are skipped
        // (they cannot change the verdict and used to inflate
        // `points_evaluated`).  The stream is always consumed in full so
        // skipping never shifts later samples.
        if self.config.random_points > 0 {
            let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
            let mut sample = vec![Extended::ZERO; universals.len()];
            let mut point = vec![Val::int(0); universals.len()];
            for _ in 0..self.config.random_points {
                if draw_random_point(&mut rng, universals, per_var, &mut sample) {
                    continue;
                }
                for (p, e) in point.iter_mut().zip(&sample) {
                    *p = Val::from_ext(*e);
                }
                self.stats.points_evaluated += 1;
                if !program.eval_point(&mut frame, &point, bound) {
                    let env = program.point_env(universals, &point);
                    self.note_counterexample(CexSource::RandomSample, &env);
                    return Validity::Invalid(Some(env));
                }
            }
        }

        self.numeric_accept()
    }

    /// Sweeps the whole grid on the calling thread with one reused frame;
    /// returns the index of the first failing point.
    fn grid_sweep_sequential(
        &mut self,
        program: &CompiledQuery,
        frame: &mut crate::compile::EvalFrame,
        vars: usize,
        per_var: u64,
        bound: u64,
    ) -> Option<u64> {
        let mut coords = vec![0u64; vars];
        let mut index = 0u64;
        let mut evaluated = 0usize;
        // Seed every universal slot once; the odometer then rewrites only
        // the slots whose coordinate actually changed (~1 per point).
        // Non-owner entries (shadowed duplicate names) never write: their
        // slot belongs to the last entry of the name, exactly the tree
        // evaluator's last-binding-wins environment.
        for i in 0..vars {
            frame.set_slot(program.universal_slot(i), Val::int(0));
        }
        let owns = |i: usize| program.universal_owner(i);
        let failing = 'grid: loop {
            evaluated += 1;
            if !program.eval(frame, bound) {
                break Some(index);
            }
            index += 1;
            // Advance the odometer (coordinate 0 fastest).
            let mut i = 0;
            loop {
                if i == coords.len() {
                    break 'grid None;
                }
                coords[i] += 1;
                if coords[i] < per_var {
                    if owns(i) {
                        frame.set_slot(program.universal_slot(i), Val::int(coords[i] as i64));
                    }
                    break;
                }
                coords[i] = 0;
                if owns(i) {
                    frame.set_slot(program.universal_slot(i), Val::int(0));
                }
                i += 1;
            }
        };
        self.stats.points_evaluated += evaluated;
        failing
    }

    fn grid_threads(&self) -> usize {
        if self.config.parallel_grid_threads > 0 {
            self.config.parallel_grid_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Chunks the grid across scoped worker threads (one compiled program,
    /// one frame per worker).  Deterministic: the *lowest-index* failing
    /// point wins, which is exactly the point the sequential sweep reports.
    fn grid_sweep_parallel(
        &mut self,
        program: &CompiledQuery,
        vars: usize,
        per_var: u64,
        total: u64,
        bound: u64,
    ) -> Option<u64> {
        let threads = self.grid_threads().min(total as usize).max(1);
        let chunk = total.div_ceil(threads as u64);
        let best = AtomicU64::new(u64::MAX);
        let evaluated = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let lo = t as u64 * chunk;
                let hi = (lo + chunk).min(total);
                let (best, evaluated) = (&best, &evaluated);
                scope.spawn(move || {
                    let mut frame = program.new_frame();
                    let mut point = vec![Val::int(0); vars];
                    let mut local = 0u64;
                    for idx in lo..hi {
                        // A failure in an earlier chunk makes this one moot.
                        if local.is_multiple_of(256) && best.load(Ordering::Relaxed) < lo {
                            break;
                        }
                        decode_grid_point_into(idx, per_var, &mut point);
                        local += 1;
                        if !program.eval_point(&mut frame, &point, bound) {
                            best.fetch_min(idx, Ordering::Relaxed);
                            break;
                        }
                    }
                    evaluated.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        match best.load(Ordering::Relaxed) {
            u64::MAX => {
                // Valid on the whole grid: every chunk swept fully.
                self.stats.points_evaluated += evaluated.load(Ordering::Relaxed) as usize;
                None
            }
            idx => {
                // A counterexample: workers race, so the number of points
                // *touched* is timing-dependent.  Report the
                // sequential-equivalent count (everything up to and
                // including the lowest failing index) so `SolveStats` stays
                // deterministic — the property DESIGN.md promises of batch
                // runs — and agrees with a sequential sweep of the same
                // query.
                self.stats.points_evaluated += (idx + 1) as usize;
                Some(idx)
            }
        }
    }

    /// The tree-walking reference path (`use_compiled_eval = false`): same
    /// verdicts, one `Box`-tree interpretation per point.  One environment
    /// is reused across all points (rebinding in place) instead of the
    /// seed's fresh `IdxEnv` per point.
    fn numeric_check_tree(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let bound = self.config.inner_quantifier_bound;
        let formula = hyp.clone().implies(goal.clone());
        let vars = universals;

        if vars.is_empty() {
            self.stats.points_evaluated += 1;
            return if formula.eval_bounded(&IdxEnv::new(), bound) {
                self.numeric_accept()
            } else {
                let env = IdxEnv::new();
                self.note_counterexample(CexSource::GridSweep, &env);
                Validity::Invalid(Some(env))
            };
        }

        let per_var = self.per_var_grid(vars.len());
        let mut env = IdxEnv::new();
        let mut grid_env = vec![0u64; vars.len()];
        'grid: loop {
            for ((v, _), n) in vars.iter().zip(&grid_env) {
                env.bind(v.clone(), Extended::from(*n));
            }
            self.stats.points_evaluated += 1;
            if !formula.eval_bounded(&env, bound) {
                self.note_counterexample(CexSource::GridSweep, &env);
                return Validity::Invalid(Some(env));
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == grid_env.len() {
                    break 'grid;
                }
                grid_env[i] += 1;
                if grid_env[i] < per_var {
                    break;
                }
                grid_env[i] = 0;
                i += 1;
            }
        }

        if self.config.random_points > 0 {
            let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
            let mut sample = vec![Extended::ZERO; vars.len()];
            for _ in 0..self.config.random_points {
                // Grid-coincident samples were already evaluated exhaustively.
                if draw_random_point(&mut rng, vars, per_var, &mut sample) {
                    continue;
                }
                for ((v, _), e) in vars.iter().zip(&sample) {
                    env.bind(v.clone(), *e);
                }
                self.stats.points_evaluated += 1;
                if !formula.eval_bounded(&env, bound) {
                    self.note_counterexample(CexSource::RandomSample, &env);
                    return Validity::Invalid(Some(env));
                }
            }
        }

        self.numeric_accept()
    }

    /// Records one candidate-substitution attempt (called by `exelim`).
    pub(crate) fn note_exelim_attempt(&mut self) {
        self.stats.exelim_attempts += 1;
    }

    /// Records one candidate assignment skipped by memoized rejection
    /// (called by `exelim`'s indexed search).
    pub(crate) fn note_exelim_pruned(&mut self) {
        self.stats.exelim_candidates_pruned += 1;
    }
}

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

/// `BIRELCOST_DEBUG_SOLVER=1` traces every query that reaches the FM and
/// numeric layers (goal shape, FM verdict, witness availability) — the tool
/// for diagnosing why an obligation is not decided symbolically.  The env
/// lookup happens once per process.
fn debug_layers() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("BIRELCOST_DEBUG_SOLVER").is_some())
}

/// Draws one random sample point from the seeded stream (the same draws, in
/// the same order, as the seed solver), returning `true` when every
/// coordinate already lies on the exhaustive grid (integer-valued and below
/// `per_var`).  Both numeric paths share this helper so their streams — and
/// therefore verdicts, counterexamples and `points_evaluated` — stay in
/// lockstep structurally rather than by convention.
fn draw_random_point(
    rng: &mut StdRng,
    vars: &[(IdxVar, Sort)],
    per_var: u64,
    out: &mut [Extended],
) -> bool {
    let mut on_grid = true;
    for (slot, (_, sort)) in out.iter_mut().zip(vars) {
        *slot = match sort {
            Sort::Nat => {
                let n = rng.gen_range(0..64u64);
                on_grid &= n < per_var;
                Extended::from(n)
            }
            Sort::Real => {
                let q = Rational::new(rng.gen_range(0..128i64), 2);
                on_grid &= q.is_integer() && (q.numerator() as u64) < per_var;
                Extended::Finite(q)
            }
        };
    }
    on_grid
}

/// Decodes a grid-point index into odometer coordinates (coordinate 0 is
/// the fastest-cycling digit, matching the sequential sweep's order).
fn decode_grid_point(idx: u64, per_var: u64, vars: usize) -> Vec<u64> {
    let mut coords = vec![0u64; vars];
    let mut rest = idx;
    for c in coords.iter_mut() {
        *c = rest % per_var;
        rest /= per_var;
    }
    coords
}

/// [`decode_grid_point`] straight into a frame point vector.
fn decode_grid_point_into(idx: u64, per_var: u64, point: &mut [Val]) {
    let mut rest = idx;
    for p in point.iter_mut() {
        *p = Val::int((rest % per_var) as i64);
        rest /= per_var;
    }
}

/// Prepares the symbolic fact pipeline **once** and hands the borrowed
/// results to `f`: hypothesis conjuncts (borrowed — cloning here was one of
/// the seed's hottest allocation sites), lemma saturation over the
/// non-linear atoms in sight, and hypothesis equalities applied as variable
/// rewrites (the closure receives them to reconstruct rewritten variables
/// in FM witnesses).  Shared by the greedy path (`symbolic_entails`) and
/// the combined greedy + Fourier–Motzkin pipeline (`symbolic_decide`), so
/// the two layers can never diverge on which facts they see.
fn with_prepared_facts<R>(
    hyp: &Constr,
    goal: &Constr,
    f: impl FnOnce(&[(IdxVar, Idx)], &Constr, &[Cow<'_, Constr>]) -> R,
) -> R {
    let mut facts: Vec<&Constr> = conjuncts(hyp);
    let mut atoms: BTreeSet<Atom> = lemmas::atoms_of_constr(hyp);
    atoms.extend(lemmas::atoms_of_constr(goal));
    let lemma_facts = lemmas::saturate(&atoms);
    facts.extend(lemma_facts.iter());
    let (rewrites, rest) = split_rewrites(&facts);
    let rewritten_goal = apply_rewrites(goal, &rewrites);
    let ineq_facts: Vec<Cow<'_, Constr>> =
        rest.iter().map(|c| apply_rewrites(c, &rewrites)).collect();
    f(&rewrites, rewritten_goal.as_ref(), &ineq_facts)
}

/// Flattens the top-level conjunctive structure of a hypothesis into atoms,
/// borrowing them from the hypothesis (no clones on this path).
fn conjuncts(c: &Constr) -> Vec<&Constr> {
    let mut out = Vec::new();
    fn go<'a>(c: &'a Constr, out: &mut Vec<&'a Constr>) {
        match c {
            Constr::Top => {}
            Constr::And(cs) => {
                for c in cs {
                    go(c, out);
                }
            }
            other => out.push(other),
        }
    }
    go(c, &mut out);
    out
}

/// Splits hypothesis facts into variable rewrites (`x = I` with `x ∉ I`) and
/// the remaining (still borrowed) inequality facts.
///
/// Only the *first* equality per variable becomes a rewrite: a second one
/// (`a = 0 ∧ a = β + 1` — the consC/nil case split produces these) must
/// stay a fact, because applying both as rewrites silently drops the
/// constraint connecting the two right-hand sides — exactly the
/// contradiction that proves a vacuous branch.
fn split_rewrites<'a>(facts: &[&'a Constr]) -> (Vec<(IdxVar, Idx)>, Vec<&'a Constr>) {
    let mut rewrites: Vec<(IdxVar, Idx)> = Vec::new();
    let mut rest = Vec::new();
    let rewritten = |rewrites: &[(IdxVar, Idx)], v: &IdxVar| rewrites.iter().any(|(w, _)| w == v);
    for f in facts.iter().copied() {
        match f {
            Constr::Eq(Idx::Var(v), rhs) if !rhs.mentions(v) && !rewritten(&rewrites, v) => {
                rewrites.push((v.clone(), rhs.clone()));
            }
            Constr::Eq(lhs, Idx::Var(v)) if !lhs.mentions(v) && !rewritten(&rewrites, v) => {
                rewrites.push((v.clone(), lhs.clone()));
            }
            other => rest.push(other),
        }
    }
    // Close the rewrites under each other (bounded iterations): a rewrite's
    // right-hand side may mention a variable that is itself rewritten.
    for _ in 0..rewrites.len() {
        let snapshot = rewrites.clone();
        for (v, rhs) in rewrites.iter_mut() {
            for (w, replacement) in &snapshot {
                if w != v && rhs.mentions(w) && !replacement.mentions(v) {
                    *rhs = rhs.subst(w, replacement);
                }
            }
        }
    }
    (rewrites, rest)
}

/// Applies variable rewrites throughout a constraint, borrowing the input
/// when no rewrite variable occurs in it (the common case for most facts).
fn apply_rewrites<'a>(c: &'a Constr, rewrites: &[(IdxVar, Idx)]) -> Cow<'a, Constr> {
    if !rewrites.iter().any(|(v, _)| c.mentions(v)) {
        return Cow::Borrowed(c);
    }
    let mut acc = Cow::Borrowed(c);
    for (v, i) in rewrites {
        if acc.mentions(v) {
            acc = Cow::Owned(acc.subst(v, i));
        }
    }
    acc
}

/// Constant-folds atomic comparisons and simplifies trivial connectives.
///
/// Routes through the calling thread's hash-consed constraint pool
/// ([`crate::cpool`]): repeated simplification of the same (sub-)constraints
/// — every canonical entry point simplifies its goal, and `exelim` re-enters
/// once per candidate substitution — reduces to memo lookups.  Produces
/// exactly the same constraint as [`simplify_tree`] (differential-tested in
/// `cpool`).
pub fn simplify(c: &Constr) -> Constr {
    cpool::simplify_cached(c)
}

/// The tree-walking reference implementation of [`simplify`] (the pooled
/// version mirrors these fold rules node for node).
pub fn simplify_tree(c: &Constr) -> Constr {
    match c {
        Constr::Eq(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x == y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => {
                    if na == nb {
                        Constr::Top
                    } else {
                        Constr::Eq(na, nb)
                    }
                }
            }
        }
        Constr::Leq(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => {
                    if na == nb {
                        Constr::Top
                    } else {
                        Constr::Leq(na, nb)
                    }
                }
            }
        }
        Constr::Lt(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x < y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => Constr::Lt(na, nb),
            }
        }
        Constr::And(cs) => Constr::conj(cs.iter().map(simplify_tree)),
        Constr::Or(cs) => Constr::disj(cs.iter().map(simplify_tree)),
        // `negate` flips comparisons (¬(a < b) becomes b ≤ a) without
        // re-folding them, so simplify the flipped form once more: this is
        // what makes `simplify` idempotent, the invariant the solver's
        // canonical entry points (`entails_canonical`,
        // `no_exists_canonical`) rely on to skip re-simplification at every
        // decomposition level.  A `Not` result is the opaque case (e.g.
        // ¬(a = b)) whose operand is already simplified — recursing on it
        // would loop.
        Constr::Not(c) => match simplify_tree(c).negate() {
            negated @ Constr::Not(_) => negated,
            negated => simplify_tree(&negated),
        },
        Constr::Implies(a, b) => simplify_tree(a).implies(simplify_tree(b)),
        Constr::Forall(q, c) => Constr::forall(q.var.clone(), q.sort, simplify_tree(c)),
        Constr::Exists(q, c) => Constr::exists(q.var.clone(), q.sort, simplify_tree(c)),
        Constr::Top | Constr::Bot => c.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat_vars(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    /// A configuration with the FM layer off — used by the tests that
    /// exercise the numeric layer itself (grid sweeps, program caches),
    /// which the complete linear decision procedure would now short-circuit.
    fn no_fm() -> SolveConfig {
        SolveConfig {
            use_fm: false,
            ..SolveConfig::default()
        }
    }

    #[test]
    fn trivial_goals() {
        let mut s = Solver::new();
        assert!(s.entails(&[], &Constr::Top, &Constr::Top).is_valid());
        assert!(s
            .entails(&[], &Constr::Top, &Constr::leq(Idx::nat(1), Idx::nat(2)))
            .is_valid());
        assert!(matches!(
            s.entails(&[], &Constr::Top, &Constr::leq(Idx::nat(3), Idx::nat(2))),
            Validity::Invalid(_)
        ));
    }

    #[test]
    fn linear_goals_are_discharged_symbolically() {
        let mut s = Solver::new();
        let u = nat_vars(&["n", "a"]);
        // n ≤ n + a
        let g = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::var("a"));
        assert!(s.entails(&u, &Constr::Top, &g).is_valid());
        assert!(s.stats().symbolic_hits >= 1);
        assert_eq!(s.stats().numeric_checks, 0);
    }

    #[test]
    fn hypotheses_are_used() {
        let mut s = Solver::new();
        let u = nat_vars(&["n", "m", "a"]);
        // n = m + 1 ∧ a ≤ m  ⟹  a + 1 ≤ n
        let hyp = Constr::eq(Idx::var("n"), Idx::var("m") + Idx::one())
            .and(Constr::leq(Idx::var("a"), Idx::var("m")));
        let goal = Constr::leq(Idx::var("a") + Idx::one(), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn invalid_entailments_produce_counterexamples() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let goal = Constr::leq(Idx::var("n"), Idx::nat(5));
        match s.entails(&u, &Constr::Top, &goal) {
            Validity::Invalid(Some(env)) => {
                let v = Idx::var("n").eval(&env).unwrap();
                assert!(v > Extended::from(5));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn ceiling_floor_lemmas_apply() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // ⌈n/2⌉ + ⌊n/2⌋ ≤ n  (in fact equal)
        let goal = Constr::leq(
            Idx::half_ceil(Idx::var("n")) + Idx::half_floor(Idx::var("n")),
            Idx::var("n"),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // ⌈n/2⌉ ≤ n
        let goal = Constr::leq(Idx::half_ceil(Idx::var("n")), Idx::var("n"));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn min_max_lemmas_apply() {
        let mut s = Solver::new();
        let u = nat_vars(&["a", "b"]);
        let goal = Constr::leq(Idx::min(Idx::var("a"), Idx::var("b")), Idx::var("a"));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        let goal = Constr::leq(Idx::var("b"), Idx::max(Idx::var("a"), Idx::var("b")));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn implications_and_foralls_in_goals() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // (n ≥ 3) → (1 ≤ n)
        let goal =
            Constr::geq(Idx::var("n"), Idx::nat(3)).implies(Constr::leq(Idx::one(), Idx::var("n")));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // ∀ m. m ≤ m + n
        let goal = Constr::forall(
            "m",
            Sort::Nat,
            Constr::leq(Idx::var("m"), Idx::var("m") + Idx::var("n")),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn disjunction_goals() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // (n ≤ n + 1) ∨ (n = 17): first disjunct is valid on its own.
        let goal = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one())
            .or(Constr::eq(Idx::var("n"), Idx::nat(17)));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // A disjunction valid only pointwise (n ≤ 8 ∨ n ≥ 5) is decided by
        // the FM case split — a *proof*, no grid point evaluated.
        let goal =
            Constr::leq(Idx::var("n"), Idx::nat(8)).or(Constr::geq(Idx::var("n"), Idx::nat(5)));
        assert_eq!(s.entails(&u, &Constr::Top, &goal), Validity::proved());
        assert!(s.stats().fm_proved >= 1);
        assert_eq!(s.stats().numeric_checks, 0);
        assert_eq!(s.stats().points_evaluated, 0);
        // With FM off it is still accepted, but only grid-checked.
        let mut tree = Solver::with_config(no_fm());
        assert_eq!(
            tree.entails(&u, &Constr::Top, &goal),
            Validity::grid_checked()
        );
        assert!(tree.stats().numeric_checks >= 1);
        assert!(tree.stats().grid_accepted >= 1);
    }

    #[test]
    fn existential_goals_are_eliminated() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // ∃ i. i = n + 1 ∧ n ≤ i
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())
                .and(Constr::leq(Idx::var("n"), Idx::var("i"))),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert!(s.stats().exelim_attempts >= 1);
    }

    #[test]
    fn contradictory_hypotheses_entail_anything() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let hyp = Constr::leq(Idx::var("n") + Idx::one(), Idx::var("n"));
        let goal = Constr::eq(Idx::nat(0), Idx::nat(1));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn strict_inequalities() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let hyp = Constr::leq(Idx::nat(3), Idx::var("n"));
        let goal = Constr::lt(Idx::nat(1), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
        let goal = Constr::lt(Idx::var("n"), Idx::var("n"));
        assert!(!s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn simplify_folds_constants() {
        assert_eq!(
            simplify(&Constr::leq(Idx::nat(2), Idx::nat(3))),
            Constr::Top
        );
        assert_eq!(
            simplify(&Constr::eq(Idx::nat(2) + Idx::nat(2), Idx::nat(4))),
            Constr::Top
        );
        assert_eq!(simplify(&Constr::lt(Idx::nat(4), Idx::nat(3))), Constr::Bot);
        let keep = Constr::leq(Idx::var("n"), Idx::nat(3));
        assert_eq!(simplify(&keep), keep);
    }

    #[test]
    fn cached_solver_agrees_with_uncached_and_reports_hits() {
        use crate::cache::{ShardedValidityCache, ValidityCache};
        let cache = Arc::new(ShardedValidityCache::new());
        let u = nat_vars(&["n", "a"]);
        let hyp = Constr::leq(Idx::var("a"), Idx::var("n"));
        let goals = [
            Constr::leq(Idx::var("a"), Idx::var("n") + Idx::one()),
            Constr::leq(Idx::var("n"), Idx::nat(3)),
            Constr::exists(
                "i",
                Sort::Nat,
                Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())
                    .and(Constr::leq(Idx::var("n"), Idx::var("i"))),
            ),
        ];

        let mut plain = Solver::new();
        let mut cached = Solver::new().with_cache(cache.clone());
        for goal in &goals {
            // Cold pass: every verdict matches the uncached solver.
            assert_eq!(
                plain.entails(&u, &hyp, goal),
                cached.entails(&u, &hyp, goal)
            );
        }
        assert_eq!(cached.stats().cache_hits, 0);
        let misses_after_cold = cached.stats().cache_misses;
        assert!(misses_after_cold > 0);

        // Warm pass: same queries, all answered from the cache.
        let mut warm = Solver::new().with_cache(cache.clone());
        for goal in &goals {
            assert_eq!(plain.entails(&u, &hyp, goal), warm.entails(&u, &hyp, goal));
        }
        assert!(warm.stats().cache_hits > 0);
        assert_eq!(warm.stats().cache_misses, 0);
        assert!(cache.stats().entries > 0);
    }

    /// A goal the symbolic layers cannot touch (the sum atom has no upper
    /// bound in the abstraction), so every solver path below exercises the
    /// numeric layer even with FM enabled.
    fn pointwise_goal() -> Constr {
        Constr::leq(
            Idx::sum("i", Idx::zero(), Idx::var("n"), Idx::one()),
            Idx::var("n") + Idx::one(),
        )
    }

    #[test]
    fn compiled_and_tree_numeric_paths_agree() {
        let tree_config = SolveConfig {
            use_compiled_eval: false,
            ..SolveConfig::default()
        };
        let u = nat_vars(&["n", "a"]);
        let hyp = Constr::leq(Idx::var("a"), Idx::var("n"));
        let goals = [
            pointwise_goal(),
            // Valid, with a summation forcing the inner loops.
            Constr::leq(
                Idx::sum(
                    "i",
                    Idx::zero(),
                    Idx::var("a"),
                    Idx::min(Idx::var("a"), Idx::pow2(Idx::var("i"))),
                ),
                Idx::var("n") * Idx::var("a") + Idx::var("n") + Idx::one(),
            ),
            // Invalid: both paths must report the *same* counterexample.
            Constr::leq(Idx::var("n") * Idx::var("n"), Idx::var("n") + Idx::nat(20)),
            // Inner quantifier.
            Constr::forall(
                "m",
                Sort::Nat,
                Constr::leq(Idx::var("m"), Idx::var("m") + Idx::var("n")),
            ),
        ];
        for goal in &goals {
            let mut compiled = Solver::new();
            let mut tree = Solver::with_config(tree_config.clone());
            assert_eq!(
                compiled.entails(&u, &hyp, goal),
                tree.entails(&u, &hyp, goal),
                "compiled and tree verdicts diverge on {goal}"
            );
            assert_eq!(
                compiled.stats().points_evaluated,
                tree.stats().points_evaluated,
                "evaluation-point counts diverge on {goal}"
            );
        }
    }

    #[test]
    fn parallel_grid_sweep_matches_sequential() {
        let parallel_config = SolveConfig {
            parallel_grid_min_points: 2,
            parallel_grid_threads: 4,
            ..SolveConfig::default()
        };
        let u = nat_vars(&["n", "a", "b"]);
        let hyp = Constr::leq(Idx::var("b"), Idx::var("a"));
        let goals = [
            // Valid on the whole grid (full sweep in every chunk).
            Constr::leq(Idx::var("b"), Idx::var("a") + Idx::var("n")),
            // Fails deep into the grid: the lowest-index counterexample must
            // match the sequential one exactly.
            Constr::leq(Idx::var("n") + Idx::var("a"), Idx::nat(13)),
            // Fails immediately.
            Constr::lt(Idx::var("n"), Idx::zero()),
        ];
        for goal in &goals {
            let mut seq = Solver::new();
            let mut par = Solver::with_config(parallel_config.clone());
            assert_eq!(
                seq.entails(&u, &hyp, goal),
                par.entails(&u, &hyp, goal),
                "parallel sweep diverges on {goal}"
            );
        }
        // Both configurations share one fingerprint: verdicts are exchangeable.
        assert_eq!(
            SolveConfig::default().fingerprint(),
            parallel_config.fingerprint()
        );
    }

    #[test]
    fn program_cache_reuses_compiled_queries() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let goal = pointwise_goal();
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(s.stats().programs_compiled, 1);
        assert_eq!(s.stats().program_cache_hits, 0);
        let points_cold = s.stats().points_evaluated;
        assert!(points_cold > 0);
        // Same query again: the per-solver verdict memo replays it outright —
        // no recompilation *and* no re-sweep.
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(s.stats().programs_compiled, 1);
        assert_eq!(s.stats().points_evaluated, points_cold);
    }

    #[test]
    fn shared_program_cache_spans_solvers_and_warms_from_keys() {
        let shared = Arc::new(SharedProgramCache::new());
        let u = nat_vars(&["n"]);
        let goal = pointwise_goal();

        let mut first = Solver::new().with_program_cache(Arc::clone(&shared));
        assert!(first.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(first.stats().programs_compiled, 1);
        assert_eq!(shared.stats().entries, 1);

        // A *different* solver instance reuses the published bytecode.
        let mut second = Solver::new().with_program_cache(Arc::clone(&shared));
        assert!(second.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(second.stats().programs_compiled, 0);
        assert_eq!(second.stats().program_cache_hits, 1);

        // Export/warm round-trip: a fresh cache warmed from the exported
        // keys serves the query without any solver compiling it.
        let keys = shared.export_keys();
        assert_eq!(keys.len(), 1);
        let warmed = Arc::new(SharedProgramCache::new());
        for k in &keys {
            warmed.warm(k);
        }
        assert_eq!(warmed.stats().entries, 1);
        let mut third = Solver::new().with_program_cache(Arc::clone(&warmed));
        assert!(third.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(third.stats().programs_compiled, 0);
        assert_eq!(third.stats().program_cache_hits, 1);
    }

    #[test]
    fn random_points_on_the_grid_are_not_recounted() {
        // One universal: the exhaustive grid covers 0..=10, and random Nat
        // samples land in 0..64 — the ones below 11 are skipped.  Both
        // evaluator paths must agree on the resulting point count.
        let u = nat_vars(&["n"]);
        let goal = pointwise_goal();
        let mut compiled = Solver::new();
        compiled.entails(&u, &Constr::Top, &goal);
        let mut tree = Solver::with_config(SolveConfig {
            use_compiled_eval: false,
            ..SolveConfig::default()
        });
        tree.entails(&u, &Constr::Top, &goal);
        assert_eq!(
            compiled.stats().points_evaluated,
            tree.stats().points_evaluated
        );
        // 11 grid points plus at most 64 off-grid random points.
        assert!(compiled.stats().points_evaluated > 11);
        assert!(compiled.stats().points_evaluated < 11 + 64);
    }

    #[test]
    fn fm_layer_proves_beyond_the_greedy_search() {
        // 3 ≤ n ⟹ 1 < n: the greedy search has no negative coefficient to
        // cancel (the residual is n − 2 with a negative constant), but FM's
        // integer tightening refutes ¬goal (n ≤ 1) against n ≥ 3 directly.
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let hyp = Constr::leq(Idx::nat(3), Idx::var("n"));
        let goal = Constr::lt(Idx::one(), Idx::var("n"));
        assert_eq!(s.entails(&u, &hyp, &goal), Validity::proved());
        assert!(s.stats().fm_proved >= 1);
        assert_eq!(s.stats().points_evaluated, 0);
        // The same entailment is only grid-checked with FM off.
        let mut tree = Solver::with_config(no_fm());
        assert_eq!(tree.entails(&u, &hyp, &goal), Validity::grid_checked());
        assert!(tree.stats().points_evaluated > 0);
    }

    #[test]
    fn fm_witnesses_refute_without_grid_sweeps() {
        // The exact boundary: a + b ≤ 19 under the same hypotheses fails at
        // a = 10, b = 10 (or wherever FM's back-substitution lands); the
        // witness is verified by evaluation and no grid point is swept.
        let mut s = Solver::new();
        let u = nat_vars(&["a", "b"]);
        let hyp =
            Constr::leq(Idx::var("a"), Idx::nat(10)).and(Constr::leq(Idx::var("b"), Idx::nat(10)));
        let goal = Constr::leq(Idx::var("a") + Idx::var("b"), Idx::nat(19));
        match s.entails(&u, &hyp, &goal) {
            Validity::Invalid(Some(env)) => {
                // The witness genuinely falsifies the implication.
                assert!(hyp.eval_bounded(&env, 8));
                assert!(!goal.eval_bounded(&env, 8));
            }
            other => panic!("expected a witnessed refutation, got {other:?}"),
        }
        assert!(s.stats().fm_refuted >= 1);
        assert_eq!(s.stats().points_evaluated, 0);
        assert_eq!(s.last_refutation().source, Some(CexSource::FmWitness));
        assert!(!s.last_refutation().fm_eliminated.is_empty());
    }

    #[test]
    fn fm_witnesses_solve_product_factors() {
        // t·a ≤ 0 under 1 ≤ a: the product is an opaque atom, but the
        // concretizer divides the product's witness value back out to get
        // t — zero grid points for the refutation.
        let mut s = Solver::new();
        let u = vec![
            (IdxVar::new("t"), Sort::Real),
            (IdxVar::new("a"), Sort::Nat),
        ];
        let hyp = Constr::leq(Idx::one(), Idx::var("a"));
        let goal = Constr::leq(Idx::var("t") * Idx::var("a"), Idx::zero());
        match s.entails(&u, &hyp, &goal) {
            Validity::Invalid(Some(env)) => {
                assert!(!goal.eval_bounded(&env, 8), "witness must falsify: {env:?}");
            }
            other => panic!("expected a witnessed refutation, got {other:?}"),
        }
        assert_eq!(s.stats().points_evaluated, 0);
    }

    #[test]
    fn fm_projection_discharges_real_existential_bounds() {
        // ∃t :: ℝ. c < t ∧ t < d — no syntactic candidate works (the
        // boundaries themselves violate the strict bounds, and 0 fails
        // c < 0), but FM projection reduces the goal to c < d ∧ 0 < d,
        // which the hypothesis proves.
        let mut s = Solver::new();
        let u = vec![
            (IdxVar::new("c"), Sort::Real),
            (IdxVar::new("d"), Sort::Real),
        ];
        let hyp = Constr::lt(Idx::var("c") + Idx::one(), Idx::var("d"));
        let goal = Constr::exists(
            "t",
            Sort::Real,
            Constr::lt(Idx::var("c"), Idx::var("t")).and(Constr::lt(Idx::var("t"), Idx::var("d"))),
        );
        assert_eq!(s.entails(&u, &hyp, &goal), Validity::proved());
        assert!(s.stats().fm_projections >= 1);
        assert_eq!(s.stats().points_evaluated, 0);
    }

    #[test]
    fn and_goals_combine_provenance() {
        // One conjunct proves symbolically, the other only grid-checks (a
        // summation with no linear upper bound): the conjunction must
        // report the weaker provenance.
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let goal = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one()).and(Constr::leq(
            Idx::sum("i", Idx::zero(), Idx::var("n"), Idx::one()),
            Idx::var("n") + Idx::one(),
        ));
        assert_eq!(s.entails(&u, &Constr::Top, &goal), Validity::grid_checked());
        assert!(s.stats().grid_accepted >= 1);
    }

    #[test]
    fn duplicate_equalities_on_one_variable_keep_their_contradiction() {
        // a = 0 ∧ a = b + 1 forces b = −1: impossible over ℕ, so anything
        // follows.  Losing the second equality to a shadowed rewrite used
        // to push this to the grid (which accepted it only because no grid
        // point satisfies the hypothesis).
        let mut s = Solver::new();
        let u = nat_vars(&["a", "b", "m"]);
        let hyp = Constr::eq(Idx::var("a"), Idx::zero())
            .and(Constr::eq(Idx::var("a"), Idx::var("b") + Idx::one()));
        let goal = Constr::eq(Idx::var("m"), Idx::nat(7));
        assert_eq!(s.entails(&u, &hyp, &goal), Validity::proved());
        assert_eq!(s.stats().points_evaluated, 0);
    }

    #[test]
    fn merge_sort_recurrence_is_accepted() {
        // The key constraint from the paper's msort walkthrough (inequality (1)):
        //   h(⌈n/2⌉) + Q(⌈n/2⌉, β) + Q(⌊n/2⌋, α − β) ≤ Q(n, α)   when α ≥ 1, β ≤ α, α ≤ n, n ≥ 2.
        use crate::lemmas::big_q;
        let mut s = Solver::new();
        let u = nat_vars(&["n", "alpha", "beta"]);
        let hyp = Constr::leq(Idx::one(), Idx::var("alpha"))
            .and(Constr::leq(Idx::var("beta"), Idx::var("alpha")))
            .and(Constr::leq(Idx::var("alpha"), Idx::var("n")))
            .and(Constr::leq(Idx::nat(2), Idx::var("n")));
        let lhs = Idx::half_ceil(Idx::var("n"))
            + big_q(Idx::half_ceil(Idx::var("n")), Idx::var("beta"))
            + big_q(
                Idx::half_floor(Idx::var("n")),
                Idx::var("alpha") - Idx::var("beta"),
            );
        let goal = Constr::leq(lhs, big_q(Idx::var("n"), Idx::var("alpha")));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn merge_covers_every_field() {
        // Every counter distinct and non-zero, so a merge that dropped or
        // crossed a field would be caught by the per-field asserts below.
        // Constructed without `..`: adding a SolveStats field breaks this
        // literal (and `merge` itself) until both are taught about it.
        let unit = SolveStats {
            queries: 1,
            symbolic_hits: 2,
            fm_proved: 3,
            fm_refuted: 4,
            fm_projections: 5,
            fm_memo_hits: 6,
            fm_memo_misses: 7,
            exelim_candidates_pruned: 8,
            numeric_checks: 9,
            grid_accepted: 10,
            points_evaluated: 11,
            exelim_attempts: 12,
            cache_hits: 13,
            cache_misses: 14,
            programs_compiled: 15,
            program_cache_hits: 16,
            fm_time: Duration::from_nanos(17),
            numeric_time: Duration::from_nanos(18),
            exelim_time: Duration::from_nanos(19),
            solving_time: Duration::from_nanos(20),
            search_exhausted: Some(SearchExhaustedReason::RowCap),
        };
        let mut acc = SolveStats::default();
        acc.merge(&unit);
        acc.merge(&unit);
        let SolveStats {
            queries,
            symbolic_hits,
            fm_proved,
            fm_refuted,
            fm_projections,
            fm_memo_hits,
            fm_memo_misses,
            exelim_candidates_pruned,
            numeric_checks,
            grid_accepted,
            points_evaluated,
            exelim_attempts,
            cache_hits,
            cache_misses,
            programs_compiled,
            program_cache_hits,
            fm_time,
            numeric_time,
            exelim_time,
            solving_time,
            search_exhausted,
        } = acc;
        assert_eq!(queries, 2);
        assert_eq!(symbolic_hits, 4);
        assert_eq!(fm_proved, 6);
        assert_eq!(fm_refuted, 8);
        assert_eq!(fm_projections, 10);
        assert_eq!(fm_memo_hits, 12);
        assert_eq!(fm_memo_misses, 14);
        assert_eq!(exelim_candidates_pruned, 16);
        assert_eq!(numeric_checks, 18);
        assert_eq!(grid_accepted, 20);
        assert_eq!(points_evaluated, 22);
        assert_eq!(exelim_attempts, 24);
        assert_eq!(cache_hits, 26);
        assert_eq!(cache_misses, 28);
        assert_eq!(programs_compiled, 30);
        assert_eq!(program_cache_hits, 32);
        assert_eq!(fm_time, Duration::from_nanos(34));
        assert_eq!(numeric_time, Duration::from_nanos(36));
        assert_eq!(exelim_time, Duration::from_nanos(38));
        assert_eq!(solving_time, Duration::from_nanos(40));
        // First-reason-wins accumulation, like the solver's own field.
        assert_eq!(search_exhausted, Some(SearchExhaustedReason::RowCap));
        let mut first = SolveStats {
            search_exhausted: Some(SearchExhaustedReason::BranchCap),
            ..SolveStats::default()
        };
        first.merge(&unit);
        assert_eq!(
            first.search_exhausted,
            Some(SearchExhaustedReason::BranchCap)
        );
    }

    #[test]
    fn exhausted_attempt_budget_reaches_stats_and_refutation() {
        // Attempt budget 0: the existential search exhausts before trying a
        // single candidate.  Three existentials keep the solver from falling
        // back to the bounded numeric search (that path only covers ≤ 2
        // leftover variables), so the abstention must surface as a verdict.
        let mut s = Solver::with_config(SolveConfig {
            max_exelim_attempts: 0,
            ..SolveConfig::default()
        });
        let u = nat_vars(&["n"]);
        let goal = Constr::exists(
            "a",
            Sort::Nat,
            Constr::exists(
                "b",
                Sort::Nat,
                Constr::exists(
                    "c",
                    Sort::Nat,
                    Constr::eq(Idx::var("a"), Idx::var("n"))
                        .and(Constr::eq(Idx::var("b"), Idx::var("a")))
                        .and(Constr::eq(Idx::var("c"), Idx::var("b") + Idx::one())),
                ),
            ),
        );
        let v = s.entails(&u, &Constr::Top, &goal);
        assert!(matches!(v, Validity::Invalid(None)));
        assert_eq!(
            s.stats().search_exhausted,
            Some(SearchExhaustedReason::AttemptBudget)
        );
        assert_eq!(
            s.last_refutation().exhausted,
            Some((SearchExhaustedReason::AttemptBudget, 0))
        );
        // The same query with the default budget succeeds — the abstention
        // above is the cap, not the constraint.
        let mut s = Solver::new();
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert_eq!(s.stats().search_exhausted, None);
    }
}
