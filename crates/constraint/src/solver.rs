//! Validity checking for existential-free constraints.
//!
//! The checker decides (best-effort) entailments of the form
//! `∀ ∆, ψₐ.  Φₐ ⟹ Φ`, the judgement the paper delegates to Why3 + Alt-Ergo.
//! It is layered:
//!
//! 1. **Symbolic layer** — linear arithmetic over exact rationals: hypothesis
//!    equalities are used as rewrites, the lemma table of [`crate::lemmas`]
//!    saturates facts about non-linear atoms, and a greedy positive-combination
//!    search discharges the goal when it is a consequence of the linear facts.
//! 2. **Numeric layer** — a bounded-exhaustive + randomized evaluation of the
//!    implication over a grid of values of the universally quantified index
//!    variables.  This layer both *refutes* invalid constraints (producing a
//!    counterexample) and, when configured as decisive (the default, matching
//!    DESIGN.md §4), *accepts* constraints that hold on the whole grid.
//!
//! The statistics collected ([`SolveStats`]) feed the Table-1 style timing
//! breakdown reported by the engine.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rel_index::{Atom, Extended, Idx, IdxEnv, IdxVar, LinExpr, Rational, Sort};

use crate::cache::{QueryRef, ValidityCache};
use crate::constr::Constr;
use crate::exelim;
use crate::lemmas;

/// Configuration of the solver.
#[derive(Debug, Clone)]
pub struct SolveConfig {
    /// Largest natural tried per universally quantified variable on the grid.
    pub nat_grid_max: u64,
    /// Cap on the total number of grid points per query.
    pub max_grid_points: usize,
    /// Number of additional randomized sample points.
    pub random_points: usize,
    /// Domain bound used for quantifiers that remain *inside* the formula
    /// (e.g. axioms supplied as closed ∀-facts).
    pub inner_quantifier_bound: u64,
    /// Whether passing the numeric layer counts as validity.  When `false`,
    /// constraints the symbolic layer cannot prove come back as
    /// [`Validity::Unknown`].
    pub numeric_is_decisive: bool,
    /// Seed for the randomized sample points (fixed for reproducibility).
    pub rng_seed: u64,
    /// Cap on candidate-substitution combinations during existential
    /// elimination.
    pub max_exelim_attempts: usize,
}

impl Default for SolveConfig {
    fn default() -> Self {
        SolveConfig {
            nat_grid_max: 10,
            max_grid_points: 4_000,
            random_points: 64,
            inner_quantifier_bound: 8,
            numeric_is_decisive: true,
            rng_seed: 0xB1DE_C057,
            max_exelim_attempts: 128,
        }
    }
}

impl SolveConfig {
    /// A stable fingerprint of every field that can influence a verdict.
    /// Mixed into cache keys: verdicts are only reusable between solvers
    /// running the *same* configuration (a laxer config must never leak
    /// `Valid` into a stricter one).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = crate::cache::Fnv1a::default();
        h.write_u64(self.nat_grid_max);
        h.write_u64(self.max_grid_points as u64);
        h.write_u64(self.random_points as u64);
        h.write_u64(self.inner_quantifier_bound);
        h.write_u8(self.numeric_is_decisive as u8);
        h.write_u64(self.rng_seed);
        h.write_u64(self.max_exelim_attempts as u64);
        h.finish()
    }
}

/// Statistics accumulated across solver queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of top-level entailment queries.
    pub queries: usize,
    /// Atomic goals discharged purely symbolically.
    pub symbolic_hits: usize,
    /// Goals that needed the numeric layer.
    pub numeric_checks: usize,
    /// Grid/random points evaluated by the numeric layer.
    pub points_evaluated: usize,
    /// Candidate substitutions attempted during existential elimination.
    pub exelim_attempts: usize,
    /// Entailment queries answered from the validity cache.
    pub cache_hits: usize,
    /// Entailment queries that consulted the validity cache and missed.
    pub cache_misses: usize,
    /// Wall-clock time spent eliminating existentials.
    pub exelim_time: Duration,
    /// Wall-clock time spent in constraint solving (excluding ∃-elimination).
    pub solving_time: Duration,
}

/// The verdict of a validity query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Validity {
    /// The entailment holds (symbolically, or on the whole numeric grid when
    /// the numeric layer is decisive).
    Valid,
    /// The entailment fails; a falsifying assignment is provided when the
    /// numeric layer found one.
    Invalid(Option<IdxEnv>),
    /// The symbolic layer could not decide and the numeric layer was not
    /// allowed to be decisive.
    Unknown,
}

impl Validity {
    /// Returns `true` for [`Validity::Valid`].
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }
}

/// The constraint solver.
#[derive(Debug)]
pub struct Solver {
    config: SolveConfig,
    /// `config.fingerprint()`, computed once — it is on the cache hot path.
    config_fingerprint: u64,
    stats: SolveStats,
    cache: Option<Arc<dyn ValidityCache>>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::with_config(SolveConfig::default())
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolveConfig) -> Solver {
        Solver {
            config_fingerprint: config.fingerprint(),
            config,
            stats: SolveStats::default(),
            cache: None,
        }
    }

    /// Attaches a shared validity cache, consulted before every entailment
    /// query (including the structural sub-queries `entails` decomposes into)
    /// and populated with every verdict computed.  Sound because the solver is
    /// deterministic: its randomized numeric layer runs from a fixed seed.
    pub fn with_cache(mut self, cache: Arc<dyn ValidityCache>) -> Solver {
        self.cache = Some(cache);
        self
    }

    /// The attached validity cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn ValidityCache>> {
        self.cache.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolveConfig {
        &self.config
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = SolveStats::default();
    }

    /// Checks the entailment `∀ universals. hyp ⟹ goal`.
    ///
    /// Existential quantifiers inside `goal` are eliminated first using the
    /// candidate-substitution pass of [`crate::exelim`], exactly as in §6 of
    /// the paper.
    pub fn entails(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        self.stats.queries += 1;
        let goal = simplify(goal);
        if goal.is_top() {
            return Validity::Valid;
        }
        // Consult the shared validity cache (when attached) on the canonical
        // form of the query.  Structural sub-queries recurse back through
        // `entails`, so conjuncts and implication bodies are memoized
        // individually — that is what lets verdicts transfer across
        // definitions that share sub-derivations, not just across identical
        // top-level queries.  The lookup borrows the constraints; nothing is
        // cloned unless a freshly computed verdict is stored.  (The Arc
        // clone releases the borrow of `self.cache` so one canonicalized
        // query serves both the lookup and the store.)
        if let Some(cache) = self.cache.clone() {
            let query = QueryRef::new(self.config_fingerprint, universals, hyp, &goal);
            if let Some(verdict) = cache.lookup(&query) {
                self.stats.cache_hits += 1;
                return verdict;
            }
            self.stats.cache_misses += 1;
            let verdict = self.entails_simplified(universals, hyp, &goal);
            cache.store(&query, verdict.clone());
            verdict
        } else {
            self.entails_simplified(universals, hyp, &goal)
        }
    }

    /// The uncached entailment check on an already-simplified goal.
    fn entails_simplified(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        // Decompose the goal structurally first so existential elimination is
        // applied to the smallest possible subproblems (each sub-derivation's
        // existentials stay together, but unrelated conjuncts are separated).
        match goal {
            Constr::Top => return Validity::Valid,
            Constr::And(cs) => {
                for c in cs {
                    match self.entails(universals, hyp, c) {
                        Validity::Valid => {}
                        other => return other,
                    }
                }
                return Validity::Valid;
            }
            Constr::Implies(a, b) => {
                let hyp = hyp.clone().and((**a).clone());
                return self.entails(universals, &hyp, b);
            }
            Constr::Forall(q, c) => {
                let mut universals = universals.to_vec();
                universals.push((q.var.clone(), q.sort));
                return self.entails(&universals, hyp, c);
            }
            _ => {}
        }

        let ex_vars = goal.existential_vars();
        if ex_vars.is_empty() {
            let start = Instant::now();
            let v = self.entails_no_exists(universals, hyp, goal);
            self.stats.solving_time += start.elapsed();
            v
        } else {
            let start = Instant::now();
            let outcome = exelim::eliminate_existentials(self, universals, hyp, goal);
            self.stats.exelim_time += start.elapsed();
            match outcome.validity {
                Some(v) => v,
                None => {
                    // No candidate substitution worked.  A fully numeric check
                    // with bounded existential search is only affordable for a
                    // couple of leftover variables; otherwise report failure.
                    if ex_vars.len() <= 2 {
                        let start = Instant::now();
                        let v = self.numeric_check(universals, hyp, goal);
                        self.stats.solving_time += start.elapsed();
                        v
                    } else {
                        Validity::Invalid(None)
                    }
                }
            }
        }
    }

    /// Checks an entailment whose goal contains no existential quantifier.
    pub(crate) fn entails_no_exists(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        let goal = simplify(goal);
        match &goal {
            Constr::Top => Validity::Valid,
            Constr::And(cs) => {
                for c in cs {
                    match self.entails_no_exists(universals, hyp, c) {
                        Validity::Valid => {}
                        other => return other,
                    }
                }
                Validity::Valid
            }
            Constr::Implies(a, b) => {
                let hyp = hyp.clone().and((**a).clone());
                self.entails_no_exists(universals, &hyp, b)
            }
            Constr::Forall(q, c) => {
                let mut universals = universals.to_vec();
                universals.push((q.var.clone(), q.sort));
                self.entails_no_exists(&universals, hyp, c)
            }
            Constr::Or(cs) => {
                // Sufficient condition: one disjunct is entailed on its own.
                // Disjuncts may contain their own existentials (heuristic 1
                // joins the consC/consNC derivations with ∨), so recurse
                // through the full pipeline per disjunct.
                for c in cs {
                    if c.existential_vars().is_empty() {
                        if self.symbolic_entails(universals, hyp, c).unwrap_or(false) {
                            self.stats.symbolic_hits += 1;
                            return Validity::Valid;
                        }
                    } else if self.entails(universals, hyp, c).is_valid() {
                        return Validity::Valid;
                    }
                }
                if goal.existential_vars().is_empty() {
                    self.numeric_check(universals, hyp, &goal)
                } else {
                    Validity::Invalid(None)
                }
            }
            Constr::Eq(_, _) | Constr::Leq(_, _) | Constr::Lt(_, _) | Constr::Bot | Constr::Not(_) => {
                if self
                    .symbolic_entails(universals, hyp, &goal)
                    .unwrap_or(false)
                {
                    self.stats.symbolic_hits += 1;
                    return Validity::Valid;
                }
                self.numeric_check(universals, hyp, &goal)
            }
            Constr::Exists(_, _) => {
                // Residual existential (can only happen when called directly):
                // defer to the numeric layer's bounded search.
                self.numeric_check(universals, hyp, &goal)
            }
        }
    }

    // ----------------------------------------------------------------------
    // Symbolic layer
    // ----------------------------------------------------------------------

    /// Attempts to prove `hyp ⟹ goal` by linear reasoning; returns `None` when
    /// the goal shape is outside the fragment.
    fn symbolic_entails(
        &mut self,
        _universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Option<bool> {
        let mut facts = conjuncts(hyp);
        // Saturate with lemmas about the non-linear atoms in sight.
        let mut atoms: BTreeSet<Atom> = lemmas::atoms_of_constr(hyp);
        atoms.extend(lemmas::atoms_of_constr(goal));
        facts.extend(lemmas::saturate(&atoms));

        // Use hypothesis equalities on variables as rewrites.
        let (rewrites, ineq_facts) = split_rewrites(&facts);
        let goal = apply_rewrites(goal, &rewrites);
        let ineq_facts: Vec<Constr> = ineq_facts
            .iter()
            .map(|c| apply_rewrites(c, &rewrites))
            .collect();

        match &goal {
            Constr::Eq(a, b) => {
                let d = LinExpr::of_idx(a).sub(&LinExpr::of_idx(b));
                Some(d == LinExpr::zero())
            }
            Constr::Leq(a, b) => Some(self.prove_nonneg(
                LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)),
                &ineq_facts,
            )),
            Constr::Lt(a, b) => {
                // For the integer-valued index terms of RelCost, a < b is
                // a + 1 ≤ b; for costs we require strict slack in the constant.
                let d = LinExpr::of_idx(b).sub(&LinExpr::of_idx(a));
                let strict = LinExpr::of_idx(&(b.clone() - a.clone() - Idx::one()));
                Some(
                    self.prove_nonneg(strict, &ineq_facts)
                        || (d.coeffs.is_empty()
                            && matches!(d.constant, Extended::Infinity)
                            )
                        || matches!(d.as_finite_constant(), Some(q) if q > Rational::ZERO),
                )
            }
            Constr::Bot => {
                // hyp ⟹ ff holds only if hyp is contradictory; detect the
                // simple case of a hypothesis that is syntactically Bot.
                Some(ineq_facts.iter().any(|c| c.is_bot()))
            }
            _ => None,
        }
    }

    /// Greedy positive-combination search: is `target ≥ 0` derivable from the
    /// facts (each read as `rhs − lhs ≥ 0`) plus non-negativity of atoms?
    fn prove_nonneg(&self, mut target: LinExpr, facts: &[Constr]) -> bool {
        if target.is_syntactically_nonneg() {
            return true;
        }
        // Pre-compute fact expressions (each ≥ 0 under the hypotheses).
        // Equalities contribute both directions.
        let mut fact_exprs: Vec<LinExpr> = Vec::new();
        for c in facts {
            match c {
                Constr::Leq(a, b) | Constr::Lt(a, b) => {
                    fact_exprs.push(LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)));
                }
                Constr::Eq(a, b) => {
                    fact_exprs.push(LinExpr::of_idx(b).sub(&LinExpr::of_idx(a)));
                    fact_exprs.push(LinExpr::of_idx(a).sub(&LinExpr::of_idx(b)));
                }
                _ => {}
            }
        }

        // To show `target ≥ 0` it suffices to find non-negative multipliers λᵢ
        // such that `target − Σ λᵢ·factᵢ` has only non-negative coefficients
        // and a non-negative constant (every atom denotes a non-negative
        // quantity).  The greedy loop cancels one negative coefficient at a
        // time using a fact that carries the same atom negatively.
        for _round in 0..12 {
            if target.is_syntactically_nonneg() {
                return true;
            }
            // Find an atom with a negative coefficient.
            let offending = target
                .coeffs
                .iter()
                .find(|(_, q)| q.is_negative())
                .map(|(a, q)| (a.clone(), *q));
            let (atom, neg_coeff) = match offending {
                Some(x) => x,
                None => {
                    return match target.constant {
                        Extended::Finite(q) => !q.is_negative(),
                        Extended::Infinity => true,
                    }
                }
            };
            // Use a fact whose expression also carries the atom negatively:
            // λ = d_A / f_A > 0 and subtracting λ·fact zeroes the coefficient.
            let mut progressed = false;
            for fe in &fact_exprs {
                if let Some(fc) = fe.coeffs.get(&atom) {
                    if fc.is_negative() {
                        let lambda = neg_coeff / *fc;
                        target = target.sub(&fe.scale(lambda));
                        progressed = true;
                        break;
                    }
                }
            }
            if !progressed {
                return false;
            }
        }
        target.is_syntactically_nonneg()
    }

    // ----------------------------------------------------------------------
    // Numeric layer
    // ----------------------------------------------------------------------

    /// Bounded-exhaustive plus randomized check of `∀ universals. hyp ⟹ goal`.
    fn numeric_check(
        &mut self,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> Validity {
        self.stats.numeric_checks += 1;
        let bound = self.config.inner_quantifier_bound;
        let formula = hyp.clone().implies(goal.clone());
        let vars: Vec<(IdxVar, Sort)> = universals.to_vec();

        if vars.is_empty() {
            self.stats.points_evaluated += 1;
            let ok = formula.eval_bounded(&IdxEnv::new(), bound);
            return if ok {
                if self.config.numeric_is_decisive {
                    Validity::Valid
                } else {
                    Validity::Unknown
                }
            } else {
                Validity::Invalid(Some(IdxEnv::new()))
            };
        }

        // Adaptive per-variable grid size so the total stays under the cap.
        let k = vars.len() as u32;
        let mut per_var = self.config.nat_grid_max + 1;
        while (per_var as u128).pow(k) > self.config.max_grid_points as u128 && per_var > 3 {
            per_var -= 1;
        }

        let mut counterexample = None;
        let mut grid_env = vec![0u64; vars.len()];
        'grid: loop {
            let env = IdxEnv::from_pairs(
                vars.iter()
                    .zip(grid_env.iter())
                    .map(|((v, _), n)| (v.clone(), Extended::from(*n))),
            );
            self.stats.points_evaluated += 1;
            if !formula.eval_bounded(&env, bound) {
                counterexample = Some(env);
                break 'grid;
            }
            // Advance the odometer.
            let mut i = 0;
            loop {
                if i == grid_env.len() {
                    break 'grid;
                }
                grid_env[i] += 1;
                if grid_env[i] < per_var {
                    break;
                }
                grid_env[i] = 0;
                i += 1;
            }
        }

        if counterexample.is_none() && self.config.random_points > 0 {
            let mut rng = StdRng::seed_from_u64(self.config.rng_seed);
            for _ in 0..self.config.random_points {
                let env = IdxEnv::from_pairs(vars.iter().map(|(v, s)| {
                    let val: Extended = match s {
                        Sort::Nat => Extended::from(rng.gen_range(0..64u64)),
                        Sort::Real => {
                            Extended::Finite(Rational::new(rng.gen_range(0..128i64), 2))
                        }
                    };
                    (v.clone(), val)
                }));
                self.stats.points_evaluated += 1;
                if !formula.eval_bounded(&env, bound) {
                    counterexample = Some(env);
                    break;
                }
            }
        }

        match counterexample {
            Some(env) => Validity::Invalid(Some(env)),
            None => {
                if self.config.numeric_is_decisive {
                    Validity::Valid
                } else {
                    Validity::Unknown
                }
            }
        }
    }

    /// Records one candidate-substitution attempt (called by `exelim`).
    pub(crate) fn note_exelim_attempt(&mut self) {
        self.stats.exelim_attempts += 1;
    }
}

// --------------------------------------------------------------------------
// Helpers
// --------------------------------------------------------------------------

/// Flattens the top-level conjunctive structure of a hypothesis into atoms.
fn conjuncts(c: &Constr) -> Vec<Constr> {
    let mut out = Vec::new();
    fn go(c: &Constr, out: &mut Vec<Constr>) {
        match c {
            Constr::Top => {}
            Constr::And(cs) => {
                for c in cs {
                    go(c, out);
                }
            }
            other => out.push(other.clone()),
        }
    }
    go(c, &mut out);
    out
}

/// Splits hypothesis facts into variable rewrites (`x = I` with `x ∉ I`) and
/// the remaining inequality facts.
fn split_rewrites(facts: &[Constr]) -> (Vec<(IdxVar, Idx)>, Vec<Constr>) {
    let mut rewrites: Vec<(IdxVar, Idx)> = Vec::new();
    let mut rest = Vec::new();
    for f in facts {
        match f {
            Constr::Eq(Idx::Var(v), rhs) if !rhs.mentions(v) => {
                rewrites.push((v.clone(), rhs.clone()));
            }
            Constr::Eq(lhs, Idx::Var(v)) if !lhs.mentions(v) => {
                rewrites.push((v.clone(), lhs.clone()));
            }
            other => rest.push(other.clone()),
        }
    }
    // Close the rewrites under each other (bounded iterations): a rewrite's
    // right-hand side may mention a variable that is itself rewritten.
    for _ in 0..rewrites.len() {
        let snapshot = rewrites.clone();
        for (v, rhs) in rewrites.iter_mut() {
            for (w, replacement) in &snapshot {
                if w != v && rhs.mentions(w) && !replacement.mentions(v) {
                    *rhs = rhs.subst(w, replacement);
                }
            }
        }
    }
    (rewrites, rest)
}

/// Applies variable rewrites throughout a constraint.
fn apply_rewrites(c: &Constr, rewrites: &[(IdxVar, Idx)]) -> Constr {
    rewrites
        .iter()
        .fold(c.clone(), |acc, (v, i)| acc.subst(v, i))
}

/// Constant-folds atomic comparisons and simplifies trivial connectives.
pub fn simplify(c: &Constr) -> Constr {
    match c {
        Constr::Eq(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x == y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => {
                    if na == nb {
                        Constr::Top
                    } else {
                        Constr::Eq(na, nb)
                    }
                }
            }
        }
        Constr::Leq(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => {
                    if na == nb {
                        Constr::Top
                    } else {
                        Constr::Leq(na, nb)
                    }
                }
            }
        }
        Constr::Lt(a, b) => {
            let (na, nb) = (rel_index::normalize(a), rel_index::normalize(b));
            match (na.as_const(), nb.as_const()) {
                (Some(x), Some(y)) => {
                    if x < y {
                        Constr::Top
                    } else {
                        Constr::Bot
                    }
                }
                _ => Constr::Lt(na, nb),
            }
        }
        Constr::And(cs) => Constr::conj(cs.iter().map(simplify)),
        Constr::Or(cs) => Constr::disj(cs.iter().map(simplify)),
        Constr::Not(c) => simplify(c).negate(),
        Constr::Implies(a, b) => simplify(a).implies(simplify(b)),
        Constr::Forall(q, c) => Constr::forall(q.var.clone(), q.sort, simplify(c)),
        Constr::Exists(q, c) => Constr::exists(q.var.clone(), q.sort, simplify(c)),
        Constr::Top | Constr::Bot => c.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat_vars(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    #[test]
    fn trivial_goals() {
        let mut s = Solver::new();
        assert!(s.entails(&[], &Constr::Top, &Constr::Top).is_valid());
        assert!(s
            .entails(&[], &Constr::Top, &Constr::leq(Idx::nat(1), Idx::nat(2)))
            .is_valid());
        assert!(matches!(
            s.entails(&[], &Constr::Top, &Constr::leq(Idx::nat(3), Idx::nat(2))),
            Validity::Invalid(_)
        ));
    }

    #[test]
    fn linear_goals_are_discharged_symbolically() {
        let mut s = Solver::new();
        let u = nat_vars(&["n", "a"]);
        // n ≤ n + a
        let g = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::var("a"));
        assert!(s.entails(&u, &Constr::Top, &g).is_valid());
        assert!(s.stats().symbolic_hits >= 1);
        assert_eq!(s.stats().numeric_checks, 0);
    }

    #[test]
    fn hypotheses_are_used() {
        let mut s = Solver::new();
        let u = nat_vars(&["n", "m", "a"]);
        // n = m + 1 ∧ a ≤ m  ⟹  a + 1 ≤ n
        let hyp = Constr::eq(Idx::var("n"), Idx::var("m") + Idx::one())
            .and(Constr::leq(Idx::var("a"), Idx::var("m")));
        let goal = Constr::leq(Idx::var("a") + Idx::one(), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn invalid_entailments_produce_counterexamples() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let goal = Constr::leq(Idx::var("n"), Idx::nat(5));
        match s.entails(&u, &Constr::Top, &goal) {
            Validity::Invalid(Some(env)) => {
                let v = Idx::var("n").eval(&env).unwrap();
                assert!(v > Extended::from(5));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn ceiling_floor_lemmas_apply() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // ⌈n/2⌉ + ⌊n/2⌋ ≤ n  (in fact equal)
        let goal = Constr::leq(
            Idx::half_ceil(Idx::var("n")) + Idx::half_floor(Idx::var("n")),
            Idx::var("n"),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // ⌈n/2⌉ ≤ n
        let goal = Constr::leq(Idx::half_ceil(Idx::var("n")), Idx::var("n"));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn min_max_lemmas_apply() {
        let mut s = Solver::new();
        let u = nat_vars(&["a", "b"]);
        let goal = Constr::leq(Idx::min(Idx::var("a"), Idx::var("b")), Idx::var("a"));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        let goal = Constr::leq(Idx::var("b"), Idx::max(Idx::var("a"), Idx::var("b")));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn implications_and_foralls_in_goals() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // (n ≥ 3) → (1 ≤ n)
        let goal = Constr::geq(Idx::var("n"), Idx::nat(3))
            .implies(Constr::leq(Idx::one(), Idx::var("n")));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // ∀ m. m ≤ m + n
        let goal = Constr::forall(
            "m",
            Sort::Nat,
            Constr::leq(Idx::var("m"), Idx::var("m") + Idx::var("n")),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
    }

    #[test]
    fn disjunction_goals() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // (n ≤ n + 1) ∨ (n = 17): first disjunct is valid on its own.
        let goal = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one())
            .or(Constr::eq(Idx::var("n"), Idx::nat(17)));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        // A disjunction valid only pointwise (n ≤ 8 ∨ n ≥ 5) is settled numerically.
        let goal = Constr::leq(Idx::var("n"), Idx::nat(8)).or(Constr::geq(Idx::var("n"), Idx::nat(5)));
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert!(s.stats().numeric_checks >= 1);
    }

    #[test]
    fn existential_goals_are_eliminated() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        // ∃ i. i = n + 1 ∧ n ≤ i
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())
                .and(Constr::leq(Idx::var("n"), Idx::var("i"))),
        );
        assert!(s.entails(&u, &Constr::Top, &goal).is_valid());
        assert!(s.stats().exelim_attempts >= 1);
    }

    #[test]
    fn contradictory_hypotheses_entail_anything() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let hyp = Constr::leq(Idx::var("n") + Idx::one(), Idx::var("n"));
        let goal = Constr::eq(Idx::nat(0), Idx::nat(1));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn strict_inequalities() {
        let mut s = Solver::new();
        let u = nat_vars(&["n"]);
        let hyp = Constr::leq(Idx::nat(3), Idx::var("n"));
        let goal = Constr::lt(Idx::nat(1), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
        let goal = Constr::lt(Idx::var("n"), Idx::var("n"));
        assert!(!s.entails(&u, &hyp, &goal).is_valid());
    }

    #[test]
    fn simplify_folds_constants() {
        assert_eq!(
            simplify(&Constr::leq(Idx::nat(2), Idx::nat(3))),
            Constr::Top
        );
        assert_eq!(
            simplify(&Constr::eq(Idx::nat(2) + Idx::nat(2), Idx::nat(4))),
            Constr::Top
        );
        assert_eq!(
            simplify(&Constr::lt(Idx::nat(4), Idx::nat(3))),
            Constr::Bot
        );
        let keep = Constr::leq(Idx::var("n"), Idx::nat(3));
        assert_eq!(simplify(&keep), keep);
    }

    #[test]
    fn cached_solver_agrees_with_uncached_and_reports_hits() {
        use crate::cache::{ShardedValidityCache, ValidityCache};
        let cache = Arc::new(ShardedValidityCache::new());
        let u = nat_vars(&["n", "a"]);
        let hyp = Constr::leq(Idx::var("a"), Idx::var("n"));
        let goals = [
            Constr::leq(Idx::var("a"), Idx::var("n") + Idx::one()),
            Constr::leq(Idx::var("n"), Idx::nat(3)),
            Constr::exists(
                "i",
                Sort::Nat,
                Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())
                    .and(Constr::leq(Idx::var("n"), Idx::var("i"))),
            ),
        ];

        let mut plain = Solver::new();
        let mut cached = Solver::new().with_cache(cache.clone());
        for goal in &goals {
            // Cold pass: every verdict matches the uncached solver.
            assert_eq!(
                plain.entails(&u, &hyp, goal),
                cached.entails(&u, &hyp, goal)
            );
        }
        assert_eq!(cached.stats().cache_hits, 0);
        let misses_after_cold = cached.stats().cache_misses;
        assert!(misses_after_cold > 0);

        // Warm pass: same queries, all answered from the cache.
        let mut warm = Solver::new().with_cache(cache.clone());
        for goal in &goals {
            assert_eq!(plain.entails(&u, &hyp, goal), warm.entails(&u, &hyp, goal));
        }
        assert!(warm.stats().cache_hits > 0);
        assert_eq!(warm.stats().cache_misses, 0);
        assert!(cache.stats().entries > 0);
    }

    #[test]
    fn merge_sort_recurrence_is_accepted() {
        // The key constraint from the paper's msort walkthrough (inequality (1)):
        //   h(⌈n/2⌉) + Q(⌈n/2⌉, β) + Q(⌊n/2⌋, α − β) ≤ Q(n, α)   when α ≥ 1, β ≤ α, α ≤ n, n ≥ 2.
        use crate::lemmas::big_q;
        let mut s = Solver::new();
        let u = nat_vars(&["n", "alpha", "beta"]);
        let hyp = Constr::leq(Idx::one(), Idx::var("alpha"))
            .and(Constr::leq(Idx::var("beta"), Idx::var("alpha")))
            .and(Constr::leq(Idx::var("alpha"), Idx::var("n")))
            .and(Constr::leq(Idx::nat(2), Idx::var("n")));
        let lhs = Idx::half_ceil(Idx::var("n"))
            + big_q(Idx::half_ceil(Idx::var("n")), Idx::var("beta"))
            + big_q(
                Idx::half_floor(Idx::var("n")),
                Idx::var("alpha") - Idx::var("beta"),
            );
        let goal = Constr::leq(lhs, big_q(Idx::var("n"), Idx::var("alpha")));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }
}
