//! A complete decision procedure for linear rational arithmetic over atoms:
//! Fourier–Motzkin variable elimination with integer tightening.
//!
//! The symbolic layer's greedy positive-combination search
//! (`Solver::prove_nonneg`) is fast but incomplete even on the pure linear
//! fragment: it cancels one negative coefficient at a time and gives up
//! after a fixed number of rounds, so many obligations that *are* linear
//! consequences of the hypotheses fall through to the bounded grid sweep.
//! This module closes that gap.  An entailment `facts ⟹ goal` is decided by
//! refutation: the negation of the goal is put in disjunctive normal form
//! over atomic comparisons, each branch is conjoined with the linear facts
//! (plus non-negativity of every atom — sizes, difference counts and costs
//! are all non-negative in RelCost), and Fourier–Motzkin elimination drives
//! the system to a ground contradiction or a witness:
//!
//! * **every branch infeasible** → the entailment holds over the reals, and
//!   therefore over the naturals — the verdict is a *proof*, no grid point
//!   is ever evaluated;
//! * **some branch feasible** → the elimination's witness assigns values to
//!   *atoms*, which are free variables of the abstraction only: `⌈n/2⌉` and
//!   `n` are distinct atoms the abstraction can set inconsistently.  A
//!   feasible branch is therefore only a **candidate** counterexample and
//!   the query falls through to the numeric layer unchanged;
//! * **limits exceeded** (atom count, row count, branch fan-out, coefficient
//!   growth) → the procedure abstains, again falling through.
//!
//! **Integer tightening.**  ℕ-sorted variables and `⌈·⌉`/`⌊·⌋` atoms take
//! integer values.  A row whose atoms are all integer-valued is scaled to
//! integer coefficients, divided by their gcd, and its constant floored
//! (`Σ ≥ -c  ⟺  Σ ≥ ⌈-c⌉` for integer `Σ`); strict rows become non-strict
//! (`Σ > -c  ⟺  Σ ≥ ⌊-c⌋ + 1`).  Tightening only shrinks the feasible set
//! of the *abstraction* towards assignments every concrete model already
//! satisfies, so refutations stay sound — and it is what lets FM decide
//! `3 ≤ n ⟹ 1 < n`-style strict obligations without a grid.
//!
//! The same elimination core implements exact `∃`-projection over the
//! non-negative reals ([`project_reals`]), which `exelim` uses to discharge
//! leftover real-sorted (cost) existentials that candidate substitution
//! missed.

use std::collections::{BTreeMap, BTreeSet};

use rel_index::{Atom, Extended, Idx, IdxVar, LinExpr, Rational, Sort};

use crate::constr::Constr;

/// Resource limits of one FM run.  All three exist to bound the
/// worst-case double-exponential blow-up of elimination; hitting any of
/// them abstains (falls through to the numeric layer) rather than erring.
#[derive(Debug, Clone)]
pub struct FmLimits {
    /// Maximum distinct atoms in the system (elimination is per-atom).
    pub max_atoms: usize,
    /// Maximum rows alive at any point of the elimination.
    pub max_rows: usize,
    /// Maximum DNF branches of the negated goal.
    pub max_branches: usize,
}

impl Default for FmLimits {
    fn default() -> Self {
        FmLimits {
            max_atoms: 32,
            max_rows: 1_024,
            max_branches: 16,
        }
    }
}

/// Coefficient-magnitude cap (numerator and denominator).  All elimination
/// and witness arithmetic goes through the checked helpers below
/// ([`checked_rat`] and friends): `i128` intermediates for in-bounds
/// operands cannot overflow, and any *reduced* result past the cap makes
/// the run abstain instead of reaching `Rational`'s panicking operators.
const MAX_MAGNITUDE: i64 = 1 << 30;

/// The verdict of one FM entailment attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmVerdict {
    /// Every branch of the negated goal is infeasible: the entailment is
    /// proved (sound — no grid evaluation needed).
    Proved,
    /// Some branch is feasible in the linear abstraction.  Over opaque
    /// atoms this is only a *candidate* counterexample; the caller must
    /// fall through to the numeric layer.
    CandidateRefuted,
    /// The query is outside the fragment or exceeded the limits.
    Abstained,
}

/// The outcome of an FM run: verdict plus the elimination order actually
/// used (surfaced in failure diagnostics).
#[derive(Debug, Clone)]
pub struct FmOutcome {
    /// The verdict.
    pub verdict: FmVerdict,
    /// Display names of the atoms eliminated, in elimination order, for the
    /// decisive branch (the feasible one on `CandidateRefuted`, the last
    /// one on `Proved`).
    pub eliminated: Vec<String>,
    /// On `CandidateRefuted`, a satisfying assignment of the feasible
    /// branch *when every atom of the system is a plain index variable*
    /// (back-substituted through the elimination, integer values for
    /// ℕ-sorted variables).  With only plain variables there is no
    /// abstraction gap left — the caller still re-verifies the point by
    /// direct evaluation before trusting it, which is what keeps a
    /// witness-backed `Invalid` exactly as sound as a grid counterexample.
    pub witness: Option<Vec<(IdxVar, Rational)>>,
}

impl FmOutcome {
    fn abstained() -> FmOutcome {
        FmOutcome {
            verdict: FmVerdict::Abstained,
            eliminated: Vec::new(),
            witness: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Rows
// ---------------------------------------------------------------------------

/// One constraint row `expr ≥ 0` (or `expr > 0` when `strict`).  The
/// expression's constant is always finite — `∞` never enters a system (facts
/// mentioning it are dropped, goals mentioning it abstain).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    expr: LinExpr,
    strict: bool,
}

impl Row {
    fn constant(&self) -> Rational {
        self.expr
            .constant
            .finite()
            .expect("FM rows keep finite constants by construction")
    }

    /// `true` while every coefficient and the constant stay within
    /// [`MAX_MAGNITUDE`].
    fn in_bounds(&self) -> bool {
        rat_in_bounds(self.constant()) && self.expr.coeffs.values().copied().all(rat_in_bounds)
    }
}

// ---------------------------------------------------------------------------
// Checked rational arithmetic
// ---------------------------------------------------------------------------
//
// `Rational`'s operators panic when a *reduced* result overflows `i64`.
// Bounded inputs do not make reduced outputs bounded (the gcd can be 1), so
// every arithmetic step of elimination and witness extraction goes through
// these checked helpers instead: `None` makes the run abstain (falling
// through to the numeric layer) where the raw operators would abort the
// process.  All intermediates are `i128`, far from overflow for in-bounds
// operands.

fn rat_in_bounds(q: Rational) -> bool {
    q.numerator().abs() <= MAX_MAGNITUDE && q.denominator() <= MAX_MAGNITUDE
}

/// Builds a reduced rational, requiring the result within [`MAX_MAGNITUDE`].
fn checked_rat(num: i128, den: i128) -> Option<Rational> {
    debug_assert!(den != 0);
    let sign = if den < 0 { -1 } else { 1 };
    let g = gcd_i128(num, den).max(1);
    let num = sign * num / g;
    let den = sign * den / g;
    if num.abs() > MAX_MAGNITUDE as i128 || den > MAX_MAGNITUDE as i128 {
        return None;
    }
    Some(Rational::new(num as i64, den as i64))
}

fn rat_mul(a: Rational, b: Rational) -> Option<Rational> {
    checked_rat(
        a.numerator() as i128 * b.numerator() as i128,
        a.denominator() as i128 * b.denominator() as i128,
    )
}

fn rat_add(a: Rational, b: Rational) -> Option<Rational> {
    checked_rat(
        a.numerator() as i128 * b.denominator() as i128
            + b.numerator() as i128 * a.denominator() as i128,
        a.denominator() as i128 * b.denominator() as i128,
    )
}

fn rat_div(a: Rational, b: Rational) -> Option<Rational> {
    if b.is_zero() {
        return None;
    }
    checked_rat(
        a.numerator() as i128 * b.denominator() as i128,
        a.denominator() as i128 * b.numerator() as i128,
    )
}

/// `lo/a + up/(-b)` over whole rows: the Fourier–Motzkin combination of a
/// lower-bound row (`a > 0`) and an upper-bound row (`b < 0`) after the
/// pivot column was removed.  `None` on any overflow of the magnitude cap.
fn combine_rows(
    lo: &LinExpr,
    a: Rational,
    lo_strict: bool,
    up: &LinExpr,
    b: Rational,
    up_strict: bool,
) -> Option<Row> {
    let inv_a = rat_div(Rational::ONE, a)?;
    let inv_nb = rat_div(Rational::ONE, Rational::ZERO - b)?;
    let mut coeffs = std::collections::BTreeMap::new();
    for (atom, q) in &lo.coeffs {
        let scaled = rat_mul(*q, inv_a)?;
        if !scaled.is_zero() {
            coeffs.insert(atom.clone(), scaled);
        }
    }
    for (atom, q) in &up.coeffs {
        let scaled = rat_mul(*q, inv_nb)?;
        let entry = coeffs.entry(atom.clone()).or_insert(Rational::ZERO);
        *entry = rat_add(*entry, scaled)?;
    }
    coeffs.retain(|_, q| !q.is_zero());
    let constant = rat_add(
        rat_mul(lo.constant.finite()?, inv_a)?,
        rat_mul(up.constant.finite()?, inv_nb)?,
    )?;
    Some(Row {
        expr: LinExpr {
            constant: Extended::Finite(constant),
            coeffs,
        },
        strict: lo_strict || up_strict,
    })
}

/// Does the index term mention `∞` anywhere?  Such atoms are outside the
/// finite-linear fragment and make the run abstain.
fn mentions_infty(idx: &Idx) -> bool {
    match idx {
        Idx::Infty => true,
        Idx::Var(_) | Idx::Const(_) => false,
        Idx::Add(a, b)
        | Idx::Sub(a, b)
        | Idx::Mul(a, b)
        | Idx::Div(a, b)
        | Idx::Min(a, b)
        | Idx::Max(a, b) => mentions_infty(a) || mentions_infty(b),
        Idx::Ceil(a) | Idx::Floor(a) | Idx::Log2(a) | Idx::Pow2(a) => mentions_infty(a),
        Idx::Sum { lo, hi, body, .. } => {
            mentions_infty(lo) || mentions_infty(hi) || mentions_infty(body)
        }
    }
}

/// Linearizes an index term, rejecting `∞` (in the constant or buried in an
/// atom).
fn lin_of(idx: &Idx) -> Option<LinExpr> {
    let l = LinExpr::of_idx(idx);
    l.constant.finite()?;
    if l.coeffs.keys().any(|a| mentions_infty(&a.0)) {
        return None;
    }
    Some(l)
}

/// The row for `pos − neg {≥,>} 0`; `None` when either side leaves the
/// finite-linear fragment.
fn row_of(pos: &Idx, neg: &Idx, strict: bool) -> Option<Row> {
    let expr = lin_of(pos)?.sub(&lin_of(neg)?);
    Some(Row { expr, strict })
}

// ---------------------------------------------------------------------------
// DNF of goals and their negations
// ---------------------------------------------------------------------------

type Branches = Vec<Vec<Row>>;

fn cross(a: Branches, b: Branches, cap: usize) -> Option<Branches> {
    if a.len().checked_mul(b.len())? > cap {
        return None;
    }
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in &a {
        for y in &b {
            let mut branch = x.clone();
            branch.extend(y.iter().cloned());
            out.push(branch);
        }
    }
    Some(out)
}

fn union(a: Branches, b: Branches, cap: usize) -> Option<Branches> {
    if a.len() + b.len() > cap {
        return None;
    }
    let mut out = a;
    out.extend(b);
    Some(out)
}

/// DNF of `c` itself, as branches of conjoined rows.  `None` when `c` is
/// outside the quantifier-free comparison fragment.
fn pos_branches(c: &Constr, cap: usize) -> Option<Branches> {
    match c {
        Constr::Top => Some(vec![vec![]]),
        Constr::Bot => Some(vec![]),
        Constr::Eq(a, b) => Some(vec![vec![row_of(b, a, false)?, row_of(a, b, false)?]]),
        Constr::Leq(a, b) => Some(vec![vec![row_of(b, a, false)?]]),
        Constr::Lt(a, b) => Some(vec![vec![row_of(b, a, true)?]]),
        Constr::And(cs) => {
            let mut acc = vec![vec![]];
            for c in cs {
                acc = cross(acc, pos_branches(c, cap)?, cap)?;
            }
            Some(acc)
        }
        Constr::Or(cs) => {
            let mut acc = vec![];
            for c in cs {
                acc = union(acc, pos_branches(c, cap)?, cap)?;
            }
            Some(acc)
        }
        Constr::Not(c) => neg_branches(c, cap),
        Constr::Implies(a, b) => union(neg_branches(a, cap)?, pos_branches(b, cap)?, cap),
        Constr::Forall(_, _) | Constr::Exists(_, _) => None,
    }
}

/// DNF of `¬c`.
fn neg_branches(c: &Constr, cap: usize) -> Option<Branches> {
    match c {
        Constr::Top => Some(vec![]),
        Constr::Bot => Some(vec![vec![]]),
        // ¬(a = b) splits: a > b or b > a.
        Constr::Eq(a, b) => Some(vec![vec![row_of(a, b, true)?], vec![row_of(b, a, true)?]]),
        Constr::Leq(a, b) => Some(vec![vec![row_of(a, b, true)?]]),
        Constr::Lt(a, b) => Some(vec![vec![row_of(a, b, false)?]]),
        Constr::And(cs) => {
            let mut acc = vec![];
            for c in cs {
                acc = union(acc, neg_branches(c, cap)?, cap)?;
            }
            Some(acc)
        }
        Constr::Or(cs) => {
            let mut acc = vec![vec![]];
            for c in cs {
                acc = cross(acc, neg_branches(c, cap)?, cap)?;
            }
            Some(acc)
        }
        Constr::Not(c) => pos_branches(c, cap),
        Constr::Implies(a, b) => cross(pos_branches(a, cap)?, neg_branches(b, cap)?, cap),
        Constr::Forall(_, _) | Constr::Exists(_, _) => None,
    }
}

// ---------------------------------------------------------------------------
// Normalization and integer tightening
// ---------------------------------------------------------------------------

/// Is the atom integer-valued?  ℕ-sorted variables and `⌈·⌉`/`⌊·⌋` results
/// are; everything else is treated as real (`2^x`/`log₂ x` would also
/// qualify for natural arguments, but their arguments' sorts are not
/// tracked per-atom, so they stay untightened — sound, merely weaker).
fn is_integer_atom(atom: &Atom, nat_vars: &BTreeSet<IdxVar>) -> bool {
    match &atom.0 {
        Idx::Var(v) => nat_vars.contains(v),
        Idx::Ceil(_) | Idx::Floor(_) => true,
        _ => false,
    }
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Scales a row whose atoms are all integer-valued to coprime integer
/// coefficients and rounds the constant: the floor-based bound tightening
/// that makes strict ℕ-bounds decidable without a grid.  Leaves the row
/// untouched (still sound) when scaling would exceed the magnitude cap.
fn tighten_integer_row(row: &mut Row, nat_vars: &BTreeSet<IdxVar>) {
    if row.expr.coeffs.is_empty() {
        return;
    }
    // Precondition for the panic-free scaling below: in-bounds operands.
    // (Out-of-bounds rows are rejected by `normalize_system` right after.)
    if !row.in_bounds() {
        return;
    }
    if !row.expr.coeffs.keys().all(|a| is_integer_atom(a, nat_vars)) {
        return;
    }
    // lcm of the coefficient denominators.
    let mut lcm: i128 = 1;
    for q in row.expr.coeffs.values() {
        let den = q.denominator() as i128;
        lcm = lcm / gcd_i128(lcm, den) * den;
        if lcm > MAX_MAGNITUDE as i128 {
            return;
        }
    }
    let mut expr = row.expr.scale(Rational::from_int(lcm as i64));
    // Divide through by the gcd of the (now integral) coefficients.
    let mut g: i128 = 0;
    for q in expr.coeffs.values() {
        debug_assert!(q.is_integer());
        g = gcd_i128(g, q.numerator() as i128);
    }
    if g > 1 && g <= MAX_MAGNITUDE as i128 {
        expr = expr.scale(Rational::new(1, g as i64));
    }
    // Σ + c > 0  ⟺  Σ ≥ ⌊-c⌋ + 1;  Σ + c ≥ 0  ⟺  Σ ≥ ⌈-c⌉  (Σ integral).
    let c = expr
        .constant
        .finite()
        .expect("scaling a finite constant stays finite");
    let tightened = if row.strict {
        Rational::ZERO - ((Rational::ZERO - c).floor() + Rational::ONE)
    } else {
        c.floor()
    };
    expr.constant = Extended::Finite(tightened);
    let candidate = Row {
        expr,
        strict: false,
    };
    if candidate.in_bounds() {
        *row = candidate;
    }
}

enum RowStatus {
    /// Trivially satisfied — drop.
    Trivial,
    /// Ground contradiction — the whole branch is infeasible.
    Contradiction,
    /// Keep (possibly tightened).
    Keep,
}

fn classify(row: &mut Row, nat_vars: &BTreeSet<IdxVar>) -> RowStatus {
    tighten_integer_row(row, nat_vars);
    if row.expr.coeffs.is_empty() {
        let c = row.constant();
        let sat = if row.strict {
            !c.is_negative() && !c.is_zero()
        } else {
            !c.is_negative()
        };
        return if sat {
            RowStatus::Trivial
        } else {
            RowStatus::Contradiction
        };
    }
    RowStatus::Keep
}

/// Deduplication threshold: small systems (the overwhelming majority of
/// probe obligations) skip the coefficient-vector keying — cloning every
/// row's atoms per round costs more than the duplicates it would remove.
/// Large systems pay for it to keep the pairwise combination step in check.
const DEDUP_MIN_ROWS: usize = 48;

/// Normalizes a system: tightens and classifies every row, detects ground
/// contradictions, and (above [`DEDUP_MIN_ROWS`]) deduplicates rows with
/// identical coefficient vectors, keeping the tightest bound.  `Ok(None)`
/// means a ground contradiction (the branch is infeasible); `Err(())` means
/// a magnitude blow-up (abstain).
fn normalize_system(rows: Vec<Row>, nat_vars: &BTreeSet<IdxVar>) -> Result<Option<Vec<Row>>, ()> {
    let mut kept: Vec<Row> = Vec::with_capacity(rows.len());
    for mut row in rows {
        match classify(&mut row, nat_vars) {
            RowStatus::Trivial => continue,
            RowStatus::Contradiction => return Ok(None),
            RowStatus::Keep => {}
        }
        if !row.in_bounds() {
            return Err(());
        }
        kept.push(row);
    }
    if kept.len() < DEDUP_MIN_ROWS {
        return Ok(Some(kept));
    }
    // Keyed on the coefficient vector; the value is the tightest
    // (constant, strict) bound seen: smaller constant is tighter, and at
    // equal constants strict is tighter.
    let mut best: BTreeMap<Vec<(Atom, Rational)>, Row> = BTreeMap::new();
    for row in kept {
        let key: Vec<(Atom, Rational)> = row
            .expr
            .coeffs
            .iter()
            .map(|(a, q)| (a.clone(), *q))
            .collect();
        match best.get_mut(&key) {
            None => {
                best.insert(key, row);
            }
            Some(existing) => {
                let (c_new, c_old) = (row.constant(), existing.constant());
                let tighter = c_new < c_old || (c_new == c_old && row.strict && !existing.strict);
                if tighter {
                    *existing = row;
                }
            }
        }
    }
    Ok(Some(best.into_values().collect()))
}

// ---------------------------------------------------------------------------
// Elimination
// ---------------------------------------------------------------------------

enum ElimResult {
    /// The system is infeasible.
    Unsat,
    /// All atoms eliminated without contradiction: feasible (in the
    /// abstraction).
    Sat,
    /// Limits exceeded.
    Abstain,
}

/// The bound rows a pivot was eliminated under, kept for witness
/// back-substitution: each entry is `(residual expression, pivot
/// coefficient, strict)` — the row with the pivot's column removed.
struct ElimStep {
    atom: Atom,
    /// Rows with a positive pivot coefficient: `pivot ≥ -eval(e)/a`.
    lower: Vec<(LinExpr, Rational, bool)>,
    /// Rows with a negative pivot coefficient: `pivot ≤ eval(e)/(-b)`.
    upper: Vec<(LinExpr, Rational, bool)>,
}

/// Runs the full elimination, recording the order atoms were projected and
/// (for witness extraction) the bound rows each pivot was eliminated under.
fn eliminate(
    mut rows: Vec<Row>,
    nat_vars: &BTreeSet<IdxVar>,
    limits: &FmLimits,
    order: &mut Vec<String>,
    steps: &mut Vec<ElimStep>,
) -> ElimResult {
    loop {
        rows = match normalize_system(rows, nat_vars) {
            Err(()) => return ElimResult::Abstain,
            Ok(None) => return ElimResult::Unsat,
            Ok(Some(rows)) => rows,
        };
        if rows.len() > limits.max_rows {
            return ElimResult::Abstain;
        }
        // Count atom occurrences, split by sign, to pick the cheapest pivot.
        let mut signs: BTreeMap<&Atom, (usize, usize)> = BTreeMap::new();
        for row in &rows {
            for (a, q) in &row.expr.coeffs {
                let entry = signs.entry(a).or_insert((0, 0));
                if q.is_negative() {
                    entry.1 += 1;
                } else {
                    entry.0 += 1;
                }
            }
        }
        if signs.is_empty() {
            return ElimResult::Sat;
        }
        if signs.len() > limits.max_atoms {
            return ElimResult::Abstain;
        }
        let pivot = signs
            .iter()
            .min_by_key(|(_, (p, n))| (p * n, p + n))
            .map(|(a, _)| (*a).clone())
            .expect("non-empty sign map");
        order.push(pivot.0.to_string());

        let mut kept = Vec::new();
        let mut lower = Vec::new(); // positive coefficient: pivot bounded below
        let mut upper = Vec::new(); // negative coefficient: pivot bounded above
        for mut row in rows {
            let c = row.expr.remove_atom(&pivot);
            if c.is_zero() {
                kept.push(row);
            } else if c.is_negative() {
                upper.push((row.expr, c, row.strict));
            } else {
                lower.push((row.expr, c, row.strict));
            }
        }
        // One-sided bounds project away with their rows.
        if !lower.is_empty() && !upper.is_empty() {
            if kept.len() + lower.len() * upper.len() > limits.max_rows {
                return ElimResult::Abstain;
            }
            for (lo, a, lo_strict) in &lower {
                for (up, b, up_strict) in &upper {
                    // lo: a·x + e ≥ 0 (a > 0) gives x ≥ -e/a;
                    // up: b·x + f ≥ 0 (b < 0) gives x ≤ -f/b.
                    // Feasible together iff  -e/a ≤ -f/b, i.e. e/a + f/(-b) ≥ 0.
                    let Some(combined) = combine_rows(lo, *a, *lo_strict, up, *b, *up_strict)
                    else {
                        return ElimResult::Abstain;
                    };
                    kept.push(combined);
                }
            }
        }
        steps.push(ElimStep {
            atom: pivot,
            lower,
            upper,
        });
        rows = kept;
    }
}

/// Evaluates a residual expression under a partial atom assignment; `None`
/// when an atom is unassigned (defensive — back-substitution assigns in
/// reverse elimination order, so residuals only mention assigned atoms) or
/// when the checked arithmetic overflows the magnitude cap.
fn eval_residual(e: &LinExpr, assignment: &BTreeMap<Atom, Rational>) -> Option<Rational> {
    let mut acc = e.constant.finite()?;
    for (a, q) in &e.coeffs {
        acc = rat_add(acc, rat_mul(*q, *assignment.get(a)?)?)?;
    }
    Some(acc)
}

/// Back-substitutes a satisfying assignment through the elimination steps.
/// ℕ-sorted variables (and `⌈·⌉`/`⌊·⌋` atoms) get integer values; when no
/// integer fits the interval, extraction gives up (`None`) — the refutation
/// stays a candidate and the caller falls through to the grid.
///
/// `prefer_positive` lists atoms that occur as *factors* of product atoms:
/// within its interval, such an atom is nudged to ≥ 1, which is what lets
/// the concretizer later solve `P = x·y` for the remaining factor (a zero
/// factor makes the product inseparable).
fn extract_witness(
    steps: &[ElimStep],
    nat_vars: &BTreeSet<IdxVar>,
    prefer_positive: &BTreeSet<Atom>,
) -> Option<BTreeMap<Atom, Rational>> {
    let mut assignment: BTreeMap<Atom, Rational> = BTreeMap::new();
    for step in steps.iter().rev() {
        // Tightest bounds under the values chosen so far.
        let mut lo: Option<(Rational, bool)> = None;
        for (e, a, strict) in &step.lower {
            let v = rat_div(Rational::ZERO - eval_residual(e, &assignment)?, *a)?;
            let replace = match &lo {
                None => true,
                Some((cur, cur_strict)) => v > *cur || (v == *cur && *strict && !*cur_strict),
            };
            if replace {
                lo = Some((v, *strict));
            }
        }
        let mut hi: Option<(Rational, bool)> = None;
        for (e, b, strict) in &step.upper {
            let v = rat_div(eval_residual(e, &assignment)?, Rational::ZERO - *b)?;
            let replace = match &hi {
                None => true,
                Some((cur, cur_strict)) => v < *cur || (v == *cur && *strict && !*cur_strict),
            };
            if replace {
                hi = Some((v, *strict));
            }
        }
        let integral = is_integer_atom(&step.atom, nat_vars);
        let mut value = match (lo, hi) {
            (None, None) => Rational::ZERO,
            (Some((l, l_strict)), None) => {
                if integral {
                    let c = l.ceil();
                    if l_strict && c == l {
                        rat_add(c, Rational::ONE)?
                    } else {
                        c
                    }
                } else if l_strict {
                    rat_add(l, Rational::ONE)?
                } else {
                    l
                }
            }
            (None, Some((h, h_strict))) => {
                // Every atom carries a non-negativity lower bound while it is
                // still in the system, but a pivot can lose it to earlier
                // eliminations; clamp at zero.
                let base = Rational::ZERO.min(h);
                if h_strict && base == h {
                    return None;
                }
                base
            }
            (Some((l, l_strict)), Some((h, h_strict))) => {
                if integral {
                    let mut c = l.ceil();
                    if l_strict && c == l {
                        c = rat_add(c, Rational::ONE)?;
                    }
                    if c > h || (h_strict && c == h) {
                        return None;
                    }
                    c
                } else if l_strict || h_strict {
                    if l >= h {
                        return None;
                    }
                    rat_div(rat_add(l, h)?, Rational::from_int(2))?
                } else {
                    if l > h {
                        return None;
                    }
                    l
                }
            }
        };
        // Nudge product factors off zero when the interval allows: the
        // bounds only constrain the abstraction, but a strictly positive
        // factor is what makes `P = x·y` solvable for the other factor.
        if value < Rational::ONE && prefer_positive.contains(&step.atom) {
            let one_fits = match hi {
                None => true,
                Some((h, h_strict)) => Rational::ONE < h || (Rational::ONE == h && !h_strict),
            };
            if one_fits {
                value = Rational::ONE;
            }
        }
        // Defensive re-check against every bound row of this step.
        for (e, a, strict) in &step.lower {
            let bound = rat_div(Rational::ZERO - eval_residual(e, &assignment)?, *a)?;
            if value < bound || (*strict && value == bound) {
                return None;
            }
        }
        for (e, b, strict) in &step.upper {
            let bound = rat_div(eval_residual(e, &assignment)?, Rational::ZERO - *b)?;
            if value > bound || (*strict && value == bound) {
                return None;
            }
        }
        assignment.insert(step.atom.clone(), value);
    }
    Some(assignment)
}

// ---------------------------------------------------------------------------
// Entailment
// ---------------------------------------------------------------------------

/// Converts the usable hypothesis facts into rows: `Eq` contributes both
/// directions, `Leq`/`Lt` one row each; anything else (including facts
/// mentioning `∞`, which carry no finite-linear information) is skipped —
/// proving from fewer hypotheses is always sound.
fn fact_rows(facts: &[&Constr]) -> Vec<Row> {
    let mut rows = Vec::new();
    for f in facts {
        match f {
            Constr::Leq(a, b) => {
                if let Some(r) = row_of(b, a, false) {
                    rows.push(r);
                }
            }
            Constr::Lt(a, b) => {
                if let Some(r) = row_of(b, a, true) {
                    rows.push(r);
                }
            }
            Constr::Eq(a, b) => {
                if let (Some(r1), Some(r2)) = (row_of(b, a, false), row_of(a, b, false)) {
                    rows.push(r1);
                    rows.push(r2);
                }
            }
            _ => {}
        }
    }
    rows
}

/// Adds `atom ≥ 0` for every atom in sight: RelCost index terms (sizes,
/// difference counts, costs and every operation over them) denote
/// non-negative quantities — the same invariant `is_syntactically_nonneg`
/// and the greedy layer already rely on.
fn nonneg_rows(rows: &[Row]) -> Vec<Row> {
    let mut atoms: BTreeSet<Atom> = BTreeSet::new();
    for row in rows {
        atoms.extend(row.expr.coeffs.keys().cloned());
    }
    atoms
        .into_iter()
        .map(|a| Row {
            expr: LinExpr::atom(a),
            strict: false,
        })
        .collect()
}

/// Turns an *atom* assignment into a *variable* assignment: plain-variable
/// atoms bind directly, and product atoms `P = x · y` are solved for a
/// still-unbound variable factor by dividing `P`'s value by the other
/// factor (iterated to a fixed point, so chains of products resolve).
/// Remaining compound atoms are simply dropped — the caller re-verifies the
/// point by direct evaluation, which is the actual soundness gate; a
/// dropped constraint can only make that verification fail (falling back
/// to the grid), never let a wrong counterexample through.
///
/// Gives up (`None`) when a binding would violate its variable's sort —
/// a fractional or negative value for an ℕ-sorted variable is not a point
/// of the concrete domain, so "refuting" there would wrongly reject
/// obligations that hold over the naturals.
fn concretize(
    assignment: &BTreeMap<Atom, Rational>,
    universals: &[(IdxVar, Sort)],
) -> Option<Vec<(IdxVar, Rational)>> {
    let mut vars: BTreeMap<IdxVar, Rational> = BTreeMap::new();
    for (atom, value) in assignment {
        if let Idx::Var(v) = &atom.0 {
            vars.insert(v.clone(), *value);
        }
    }
    loop {
        let mut changed = false;
        for (atom, value) in assignment {
            let Idx::Mul(x, y) = &atom.0 else { continue };
            for (target, other) in [(&**x, &**y), (&**y, &**x)] {
                let Idx::Var(v) = target else { continue };
                if vars.contains_key(v) {
                    continue;
                }
                let env = rel_index::IdxEnv::from_pairs(
                    vars.iter().map(|(w, q)| (w.clone(), Extended::Finite(*q))),
                );
                let Ok(Extended::Finite(q)) = other.eval(&env) else {
                    continue;
                };
                if q.is_zero() {
                    continue;
                }
                let Some(solved) = rat_div(*value, q) else {
                    continue;
                };
                vars.insert(v.clone(), solved);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Sort check: every bound universal must hold a point of its domain.
    for (v, sort) in universals {
        if let Some(q) = vars.get(v) {
            if q.is_negative() || (*sort == Sort::Nat && !q.is_integer()) {
                return None;
            }
        }
    }
    if vars.values().any(|q| q.is_negative()) {
        return None;
    }
    Some(vars.into_iter().collect())
}

fn nat_var_set(universals: &[(IdxVar, Sort)]) -> BTreeSet<IdxVar> {
    universals
        .iter()
        .filter(|(_, s)| *s == Sort::Nat)
        .map(|(v, _)| v.clone())
        .collect()
}

/// Decides `facts ⟹ goal` by refuting `facts ∧ ¬goal`, branch by branch.
///
/// `Proved` is sound unconditionally.  `CandidateRefuted` and `Abstained`
/// are inconclusive: the caller falls through to the numeric layer.
pub fn prove(
    universals: &[(IdxVar, Sort)],
    facts: &[&Constr],
    goal: &Constr,
    limits: &FmLimits,
) -> FmOutcome {
    let Some(branches) = neg_branches(goal, limits.max_branches) else {
        return FmOutcome::abstained();
    };
    let nat_vars = nat_var_set(universals);
    let base = fact_rows(facts);
    let mut eliminated = Vec::new();
    for branch in branches {
        let mut rows = base.clone();
        rows.extend(branch);
        let side = nonneg_rows(&rows);
        rows.extend(side);
        // Atoms occurring as factors of product atoms: steer them positive
        // so the concretizer can divide the product value back out.
        let mut factor_atoms: BTreeSet<Atom> = BTreeSet::new();
        for row in &rows {
            for atom in row.expr.coeffs.keys() {
                if let Idx::Mul(x, y) = &atom.0 {
                    factor_atoms.insert(Atom((**x).clone()));
                    factor_atoms.insert(Atom((**y).clone()));
                }
            }
        }
        let mut order = Vec::new();
        let mut steps = Vec::new();
        match eliminate(rows, &nat_vars, limits, &mut order, &mut steps) {
            ElimResult::Unsat => eliminated = order,
            ElimResult::Sat => {
                let witness = extract_witness(&steps, &nat_vars, &factor_atoms)
                    .and_then(|assignment| concretize(&assignment, universals));
                return FmOutcome {
                    verdict: FmVerdict::CandidateRefuted,
                    eliminated: order,
                    witness,
                };
            }
            ElimResult::Abstain => {
                return FmOutcome {
                    verdict: FmVerdict::Abstained,
                    eliminated: order,
                    witness: None,
                }
            }
        }
    }
    FmOutcome {
        verdict: FmVerdict::Proved,
        eliminated,
        witness: None,
    }
}

// ---------------------------------------------------------------------------
// ∃-projection (exelim reuse)
// ---------------------------------------------------------------------------

/// Projects real-sorted existential variables out of a *conjunctive* matrix
/// by Fourier–Motzkin elimination, returning an equivalent ∃-free
/// constraint over the remaining atoms.
///
/// Exactness: over ℝ, `∃v. conjunction-of-linear-rows` is *equivalent* to
/// the projected system (this is the textbook property of FM projection),
/// so replacing the goal `∃v. M` by the projection neither weakens nor
/// strengthens it.  The variables' sort bound is respected by adding
/// `v ≥ 0` before projecting (RelCost's ℝ sort is the non-negative reals —
/// costs).  ℕ-sorted variables are **not** projected this way: rational
/// projection over-approximates integer satisfiability (the Omega test's
/// dark shadow would be needed), and an over-approximated goal would be
/// unsound to prove.
///
/// Returns `None` when the matrix is not a conjunction of finite-linear
/// comparisons, a variable occurs inside an opaque atom, or limits are
/// exceeded.
pub fn project_reals(matrix: &Constr, vars: &[IdxVar], limits: &FmLimits) -> Option<Constr> {
    // The matrix must be one conjunctive branch of comparisons.
    let mut branches = pos_branches(matrix, limits.max_branches)?;
    if branches.len() != 1 {
        return None;
    }
    let mut rows = branches.pop().expect("length checked");
    if rows.len() > limits.max_rows {
        return None;
    }
    let nat_vars = BTreeSet::new(); // no integer tightening during projection
    for v in vars {
        let atom = Atom(Idx::Var(v.clone()));
        // The variable must occur only as its own plain atom.
        if rows
            .iter()
            .any(|r| r.expr.coeffs.keys().any(|a| *a != atom && a.0.mentions(v)))
        {
            return None;
        }
        // Domain bound of the ℝ (cost) sort.
        rows.push(Row {
            expr: LinExpr::atom(atom.clone()),
            strict: false,
        });
        rows = match normalize_system(rows, &nat_vars) {
            Err(()) => return None,
            // Infeasible matrix: ∃v. M is equivalent to ff.
            Ok(None) => return Some(Constr::Bot),
            Ok(Some(rows)) => rows,
        };
        let mut kept = Vec::new();
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for mut row in rows {
            let c = row.expr.remove_atom(&atom);
            if c.is_zero() {
                kept.push(row);
            } else if c.is_negative() {
                upper.push((row, c));
            } else {
                lower.push((row, c));
            }
        }
        if !lower.is_empty() && !upper.is_empty() {
            if kept.len() + lower.len() * upper.len() > limits.max_rows {
                return None;
            }
            for (lo, a) in &lower {
                for (up, b) in &upper {
                    let combined = combine_rows(&lo.expr, *a, lo.strict, &up.expr, *b, up.strict)?;
                    kept.push(combined);
                }
            }
        }
        rows = kept;
    }
    let rows = match normalize_system(rows, &nat_vars) {
        Err(()) => return None,
        Ok(None) => return Some(Constr::Bot),
        Ok(Some(rows)) => rows,
    };
    Some(Constr::conj(rows.into_iter().map(|row| {
        let idx = row.expr.to_idx();
        if row.strict {
            Constr::Lt(Idx::zero(), idx)
        } else {
            Constr::Leq(Idx::zero(), idx)
        }
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nats(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    fn prove_default(universals: &[(IdxVar, Sort)], facts: &[&Constr], goal: &Constr) -> FmVerdict {
        prove(universals, facts, goal, &FmLimits::default()).verdict
    }

    #[test]
    fn transitivity_chains_are_proved() {
        // a ≤ b ∧ b ≤ c ∧ c ≤ d  ⟹  a ≤ d
        let u = nats(&["a", "b", "c", "d"]);
        let f1 = Constr::leq(Idx::var("a"), Idx::var("b"));
        let f2 = Constr::leq(Idx::var("b"), Idx::var("c"));
        let f3 = Constr::leq(Idx::var("c"), Idx::var("d"));
        let goal = Constr::leq(Idx::var("a"), Idx::var("d"));
        assert_eq!(
            prove_default(&u, &[&f1, &f2, &f3], &goal),
            FmVerdict::Proved
        );
    }

    #[test]
    fn upper_bounds_on_goal_atoms_are_used() {
        // The greedy layer cannot do this one: proving a + b ≤ 20 from
        // a ≤ 10 ∧ b ≤ 10 needs *upper* bounds on the goal's positive
        // atoms, not cancellations of negative ones.
        let u = nats(&["a", "b"]);
        let f1 = Constr::leq(Idx::var("a"), Idx::nat(10));
        let f2 = Constr::leq(Idx::var("b"), Idx::nat(10));
        let goal = Constr::leq(Idx::var("a") + Idx::var("b"), Idx::nat(20));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
        // And the bound is exact: 19 is refutable in the abstraction.
        let goal = Constr::leq(Idx::var("a") + Idx::var("b"), Idx::nat(19));
        assert_eq!(
            prove_default(&u, &[&f1, &f2], &goal),
            FmVerdict::CandidateRefuted
        );
    }

    #[test]
    fn strict_nat_bounds_need_integer_tightening() {
        // 3 ≤ n ⟹ 1 < n holds over ℕ by rounding; over ℝ it already holds,
        // but 0 < 2n − 1 for a *real* n ≥ 1/2 shows rational reasoning alone
        // cannot tighten n ≥ 1/2 to n ≥ 1:
        let u = nats(&["n"]);
        let hyp = Constr::leq(Idx::nat(3), Idx::var("n"));
        let goal = Constr::lt(Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &goal), FmVerdict::Proved);
        // 2n ≥ 1 ⟹ n ≥ 1 — true over ℕ only via the floor rounding.
        let hyp = Constr::leq(Idx::one(), Idx::nat(2) * Idx::var("n"));
        let goal = Constr::leq(Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &goal), FmVerdict::Proved);
    }

    #[test]
    fn pointwise_disjunctions_are_proved_by_case_split() {
        // n ≤ 8 ∨ n ≥ 5 — neither disjunct is valid alone; the negation
        // n > 8 ∧ n < 5 is a ground contradiction after one elimination.
        let u = nats(&["n"]);
        let goal =
            Constr::leq(Idx::var("n"), Idx::nat(8)).or(Constr::geq(Idx::var("n"), Idx::nat(5)));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::Proved);
    }

    #[test]
    fn contradictory_facts_prove_bot() {
        let u = nats(&["n"]);
        let hyp = Constr::leq(Idx::var("n") + Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &Constr::Bot), FmVerdict::Proved);
        // And consistent facts cannot prove Bot.
        let hyp = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one());
        assert_eq!(
            prove_default(&u, &[&hyp], &Constr::Bot),
            FmVerdict::CandidateRefuted
        );
    }

    #[test]
    fn opaque_atom_refutations_are_only_candidates() {
        // ⌈n/2⌉ ≤ n is true (lemma facts supply it) but *without* those
        // facts the abstraction can set ⌈n/2⌉ and n independently: FM must
        // answer CandidateRefuted, never Proved and never a hard Invalid.
        let u = nats(&["n"]);
        let goal = Constr::leq(Idx::half_ceil(Idx::var("n")), Idx::var("n"));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::CandidateRefuted);
    }

    #[test]
    fn infinity_makes_the_run_abstain_or_skip_facts() {
        let u = nats(&["n"]);
        // ∞ in the goal: outside the fragment.
        let goal = Constr::leq(Idx::infty(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::Abstained);
        // ∞ in a fact: the fact is skipped, the rest still proves.
        let f1 = Constr::leq(Idx::var("n"), Idx::infty());
        let f2 = Constr::leq(Idx::var("n"), Idx::nat(3));
        let goal = Constr::leq(Idx::var("n"), Idx::nat(4));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
    }

    #[test]
    fn equality_goals_split_into_two_branches() {
        // a = b ∧ b = c ⟹ a = c.
        let u = nats(&["a", "b", "c"]);
        let f1 = Constr::eq(Idx::var("a"), Idx::var("b"));
        let f2 = Constr::eq(Idx::var("b"), Idx::var("c"));
        let goal = Constr::eq(Idx::var("a"), Idx::var("c"));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
    }

    #[test]
    fn coefficient_blowups_abstain_instead_of_panicking() {
        // Coefficients near the magnitude cap with coprime denominators:
        // combining rows multiplies them, and the *reduced* result exceeds
        // what `Rational`'s panicking operators accept.  The checked
        // arithmetic must abstain (fall through to the grid) instead of
        // aborting the process.  Any verdict is acceptable; the property
        // under test is "returns".
        let u = nats(&["x", "y", "z"]);
        let big = (1i64 << 29) + 1;
        let c = |n: i64, d: i64| Idx::Const(Rational::new(n, d));
        let f1 = Constr::leq(
            c(big, big - 2) * Idx::var("x"),
            c(big - 4, big - 6) * Idx::var("y"),
        );
        let f2 = Constr::leq(
            c(big - 8, big - 10) * Idx::var("y"),
            c(big - 12, big - 14) * Idx::var("z"),
        );
        let goal = Constr::leq(c(big - 16, big - 18) * Idx::var("x"), Idx::var("z"));
        let _ = prove(&u, &[&f1, &f2], &goal, &FmLimits::default());
    }

    #[test]
    fn elimination_order_is_reported() {
        let u = nats(&["a", "b"]);
        let f = Constr::leq(Idx::var("a"), Idx::var("b"));
        let goal = Constr::leq(Idx::var("a"), Idx::var("b") + Idx::one());
        let out = prove(&u, &[&f], &goal, &FmLimits::default());
        assert_eq!(out.verdict, FmVerdict::Proved);
        assert!(!out.eliminated.is_empty());
    }

    #[test]
    fn projection_of_real_costs_is_exact() {
        // ∃t. c ≤ t ∧ t + 1 ≤ d  projects to  c + 1 ≤ d (plus c, d ≥ 0 noise
        // that normalization keeps only if non-trivial).
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::var("c"), Idx::var("t"))
            .and(Constr::leq(Idx::var("t") + Idx::one(), Idx::var("d")));
        let projected = project_reals(&matrix, &[t], &FmLimits::default()).expect("projectable");
        // The projection must be implied by c + 1 ≤ d and imply it: check a
        // few ground points on both sides.
        for (c, d, expect) in [(0, 1, true), (2, 3, true), (3, 3, false), (5, 2, false)] {
            let env =
                rel_index::IdxEnv::from_pairs([("c", Extended::from(c)), ("d", Extended::from(d))]);
            assert_eq!(
                projected.eval_bounded(&env, 8),
                expect,
                "projection wrong at c={c}, d={d}: {projected}"
            );
        }
    }

    #[test]
    fn projection_refuses_nonlinear_occurrences() {
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::half_ceil(Idx::var("t")), Idx::var("n"));
        assert!(project_reals(&matrix, &[t], &FmLimits::default()).is_none());
    }

    #[test]
    fn infeasible_matrices_project_to_bot() {
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::var("t") + Idx::one(), Idx::var("t"));
        assert_eq!(
            project_reals(&matrix, &[t], &FmLimits::default()),
            Some(Constr::Bot)
        );
    }
}
