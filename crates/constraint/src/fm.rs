//! A complete decision procedure for linear rational arithmetic over atoms:
//! Fourier–Motzkin variable elimination with integer tightening.
//!
//! The symbolic layer's greedy positive-combination search
//! (`Solver::prove_nonneg`) is fast but incomplete even on the pure linear
//! fragment: it cancels one negative coefficient at a time and gives up
//! after a fixed number of rounds, so many obligations that *are* linear
//! consequences of the hypotheses fall through to the bounded grid sweep.
//! This module closes that gap.  An entailment `facts ⟹ goal` is decided by
//! refutation: the negation of the goal is put in disjunctive normal form
//! over atomic comparisons, each branch is conjoined with the linear facts
//! (plus non-negativity of every atom — sizes, difference counts and costs
//! are all non-negative in RelCost), and Fourier–Motzkin elimination drives
//! the system to a ground contradiction or a witness:
//!
//! * **every branch infeasible** → the entailment holds over the reals, and
//!   therefore over the naturals — the verdict is a *proof*, no grid point
//!   is ever evaluated;
//! * **some branch feasible** → the elimination's witness assigns values to
//!   *atoms*, which are free variables of the abstraction only: `⌈n/2⌉` and
//!   `n` are distinct atoms the abstraction can set inconsistently.  A
//!   feasible branch is therefore only a **candidate** counterexample and
//!   the query falls through to the numeric layer unchanged;
//! * **limits exceeded** (atom count, row count, branch fan-out, coefficient
//!   growth) → the procedure abstains, again falling through.
//!
//! **Integer tightening.**  ℕ-sorted variables and `⌈·⌉`/`⌊·⌋` atoms take
//! integer values.  A row whose atoms are all integer-valued is scaled to
//! integer coefficients, divided by their gcd, and its constant floored
//! (`Σ ≥ -c  ⟺  Σ ≥ ⌈-c⌉` for integer `Σ`); strict rows become non-strict
//! (`Σ > -c  ⟺  Σ ≥ ⌊-c⌋ + 1`).  Tightening only shrinks the feasible set
//! of the *abstraction* towards assignments every concrete model already
//! satisfies, so refutations stay sound — and it is what lets FM decide
//! `3 ≤ n ⟹ 1 < n`-style strict obligations without a grid.
//!
//! The same elimination core implements exact `∃`-projection over the
//! non-negative reals ([`project_reals`]), which `exelim` uses to discharge
//! leftover real-sorted (cost) existentials that candidate substitution
//! missed.
//!
//! **Interning and memoization.**  Rows are vectors of `(AtomId, Rational)`
//! pairs over a per-solver atom table ([`FmMemo`]): structural atom
//! equality, hashing, sorting and pivot bookkeeping are integer operations,
//! and every per-atom property elimination consults (`∞`-freeness,
//! integrality, product factors) is computed once at interning time.  On
//! top of the table sit four memo layers, verified by the dual-hash scheme
//! of the engine's `DefIndex` where the keys would otherwise be cloned
//! trees: per-fact row conversion, per-hypothesis normalized base systems,
//! per-goal negated DNF, and — the layer the solver's
//! `fm_memo_hits`/`fm_memo_misses` counters report — canonical *branch
//! systems* and whole-query outcomes, so the structurally identical
//! subproblems that Eq-splits and Or case-splits generate in abundance are
//! eliminated once per solver and replayed everywhere else.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rel_index::{Atom, Extended, Idx, IdxVar, LinExpr, Rational, Sort};

use crate::cache::Fnv1a;
use crate::constr::Constr;
use crate::solver::SearchExhaustedReason;

/// Resource limits of one FM run.  All three exist to bound the
/// worst-case double-exponential blow-up of elimination; hitting any of
/// them abstains (falls through to the numeric layer) rather than erring.
#[derive(Debug, Clone)]
pub struct FmLimits {
    /// Maximum distinct atoms in the system (elimination is per-atom).
    pub max_atoms: usize,
    /// Maximum rows alive at any point of the elimination.
    pub max_rows: usize,
    /// Maximum DNF branches of the negated goal.
    pub max_branches: usize,
}

impl Default for FmLimits {
    fn default() -> Self {
        FmLimits {
            max_atoms: 32,
            max_rows: 1_024,
            max_branches: 16,
        }
    }
}

/// Coefficient-magnitude cap (numerator and denominator).  All elimination
/// and witness arithmetic goes through the checked helpers below
/// ([`checked_rat`] and friends): `i128` intermediates for in-bounds
/// operands cannot overflow, and any *reduced* result past the cap makes
/// the run abstain instead of reaching `Rational`'s panicking operators.
const MAX_MAGNITUDE: i64 = 1 << 30;

/// The verdict of one FM entailment attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmVerdict {
    /// Every branch of the negated goal is infeasible: the entailment is
    /// proved (sound — no grid evaluation needed).
    Proved,
    /// Some branch is feasible in the linear abstraction.  Over opaque
    /// atoms this is only a *candidate* counterexample; the caller must
    /// fall through to the numeric layer.
    CandidateRefuted,
    /// The query is outside the fragment or exceeded the limits.
    Abstained,
}

/// The outcome of an FM run: verdict plus the elimination order actually
/// used (surfaced in failure diagnostics).
#[derive(Debug, Clone)]
pub struct FmOutcome {
    /// The verdict.
    pub verdict: FmVerdict,
    /// Display names of the atoms eliminated, in elimination order, for the
    /// decisive branch (the feasible one on `CandidateRefuted`, the last
    /// one on `Proved`).
    pub eliminated: Vec<String>,
    /// On `CandidateRefuted`, a satisfying assignment of the feasible
    /// branch *when every atom of the system is a plain index variable*
    /// (back-substituted through the elimination, integer values for
    /// ℕ-sorted variables).  With only plain variables there is no
    /// abstraction gap left — the caller still re-verifies the point by
    /// direct evaluation before trusting it, which is what keeps a
    /// witness-backed `Invalid` exactly as sound as a grid counterexample.
    pub witness: Option<Vec<(IdxVar, Rational)>>,
    /// DNF branches of this run answered from the subproblem memo.
    pub memo_hits: usize,
    /// DNF branches of this run decided by elimination (and then memoized).
    pub memo_misses: usize,
}

impl FmOutcome {
    fn abstained() -> FmOutcome {
        FmOutcome {
            verdict: FmVerdict::Abstained,
            eliminated: Vec::new(),
            witness: None,
            memo_hits: 0,
            memo_misses: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Interned atoms
// ---------------------------------------------------------------------------

/// Handle of an interned atom in a solver's [`FmMemo`] table.
type AtomId = u32;

/// One interned atom with every property the elimination core consults —
/// computed once at interning time instead of re-inspecting the atom's tree
/// per row, per branch, per query.  Rows carry `u32` ids, so structural
/// equality, hashing, sorting and pivot bookkeeping are integer operations;
/// the tree form is only touched again for diagnostics and witness
/// concretization.
#[derive(Debug)]
struct AtomInfo {
    /// The atom itself (diagnostics, deterministic tie-breaking, witness
    /// concretization).
    atom: Atom,
    /// `∞` occurs somewhere inside: outside the finite-linear fragment, any
    /// row mentioning it is unusable.
    infinite: bool,
    /// Integer-valued regardless of variable sorts (`⌈·⌉`/`⌊·⌋` results).
    always_integer: bool,
    /// The variable, when the atom is a plain `Idx::Var`.
    var: Option<IdxVar>,
    /// For product atoms `x · y`, the interned ids of the two factors.
    factors: Option<(AtomId, AtomId)>,
}

// ---------------------------------------------------------------------------
// Subproblem memo
// ---------------------------------------------------------------------------

/// The decision recorded for one normalized branch system.
///
/// A decision is a pure function of the canonical system and the
/// integer-atom signature (tightening): elimination, witness extraction and
/// the sort checks of `concretize` consult nothing else — `prefer_positive`
/// only nudges a *candidate* witness, which every caller re-verifies by
/// direct evaluation before trusting.
#[derive(Debug, Clone)]
enum BranchDecision {
    /// Elimination drove the system to a ground contradiction.
    Infeasible {
        /// Atom elimination order.
        order: Vec<String>,
    },
    /// The system is feasible in the abstraction.
    Feasible {
        /// Atom elimination order.
        order: Vec<String>,
        /// The concretized candidate witness, when extraction succeeded.
        witness: Option<Vec<(IdxVar, Rational)>>,
    },
    /// Limits were exceeded mid-elimination.
    Abstained {
        /// Atom elimination order up to the abstention.
        order: Vec<String>,
        /// Which cap fired.
        cause: SearchExhaustedReason,
    },
}

/// Entry cap of the subproblem memo; a full memo is wholesale-cleared
/// (epoch eviction, like every other memo layer of the solver).
const FM_MEMO_MAX_ENTRIES: usize = 8_192;

/// Entry cap of the per-fact row-conversion cache.
const FACT_ROWS_MAX_ENTRIES: usize = 8_192;

/// Salt separating the verify-hash stream from the primary one in the
/// query/base memos (an arbitrary odd constant, 2⁶⁴/φ — the same scheme as
/// the engine's `DefIndex`).
const FM_VERIFY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-solver Fourier–Motzkin working memory: the interned atom table, a
/// per-fact row-conversion cache, and the *subproblem* memo keyed on the
/// canonical hash of the normalized atom system of one DNF branch.
///
/// Eq-splits (`¬(a = b)` forks into `a > b` and `b > a`) and Or case-splits
/// generate structurally identical branch systems in abundance — both
/// within one query and across the sub-goals `Solver::entails` decomposes a
/// definition into (which share their hypothesis rows).  Each distinct
/// system is eliminated once per solver; repeats are O(key) lookups over
/// integer row vectors.  The full canonical system is stored next to its
/// hash, so collisions can never replay the wrong decision.
#[derive(Debug, Default)]
pub struct FmMemo {
    /// Interned atoms (`AtomId` indexes this table).
    atoms: Vec<AtomInfo>,
    /// Dedup index for interning.
    atom_ids: HashMap<Atom, AtomId>,
    /// Per-fact row conversion: one hypothesis fact re-enters `prove` with
    /// every sub-goal of its definition, and its `LinExpr` decomposition is
    /// identical each time.  Dual-hash verified like the query memo.
    fact_rows: HashMap<u64, Vec<(u64, Vec<Row>)>>,
    fact_rows_len: usize,
    /// Per-goal DNF conversion: the sub-goals one definition decides repeat
    /// heavily, and their negated-DNF row form is identical each time.
    /// `None` records a goal outside the fragment (so the abstention is
    /// memoized too).
    #[allow(clippy::type_complexity)]
    goal_branches: HashMap<u64, Vec<(Constr, Option<Arc<Branches>>)>>,
    goal_branches_len: usize,
    /// Whole normalized base systems, keyed on the fact list and the
    /// ℕ-sorted variable set: the same hypothesis re-enters `prove` with
    /// every sub-goal of its definition, and its converted, tightened,
    /// canonicalized rows are identical each time.
    bases: HashMap<u64, Vec<BaseEntry>>,
    bases_len: usize,
    /// Decided branch systems.
    entries: HashMap<u64, Vec<MemoEntry>>,
    len: usize,
    /// Whole-query outcomes: `(facts, goal, nat_vars) → FmOutcome`.  The
    /// branch memo already deduplicates the elimination work, but a repeated
    /// query still pays conversion and canonicalization per branch; this
    /// level answers it for one fact-list + goal hash and two tree
    /// comparisons.
    queries: HashMap<u64, Vec<QueryEntry>>,
    queries_len: usize,
}

/// One memoized whole-query outcome.  Like the engine's `DefIndex`, the
/// full inputs are deliberately not stored: the entry is verified by an
/// independently seeded second hash over the same stream, so an accidental
/// primary-hash collision is a miss, never a wrong-outcome replay (~2⁻⁶⁴
/// at birthday scale for any feasible memo size) — and a replayed outcome
/// is re-checked by the caller anyway before an `Invalid` is trusted.
#[derive(Debug)]
struct QueryEntry {
    verify: u64,
    verdict: FmVerdict,
    eliminated: Vec<String>,
    witness: Option<Vec<(IdxVar, Rational)>>,
}

#[derive(Debug)]
struct MemoEntry {
    rows: Vec<Row>,
    ints: Vec<(AtomId, bool)>,
    decision: BranchDecision,
}

/// One cached base system, verified by the same dual-hash scheme as
/// [`QueryEntry`]: the normalized rows, their atom set, and whether
/// normalization already exposed a ground contradiction.
#[derive(Debug)]
struct BaseEntry {
    verify: u64,
    /// `None` when the facts alone are contradictory (every branch of any
    /// goal is infeasible) or the conversion blew the magnitude cap
    /// (`contradictory` distinguishes the two).
    rows: Option<Arc<Vec<Row>>>,
    atoms: Arc<BTreeSet<AtomId>>,
    contradictory: bool,
}

impl FmMemo {
    /// Number of memoized branch systems.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Interns an atom (and, for products, its factors), computing its
    /// elimination-relevant properties once.
    fn intern(&mut self, atom: &Atom) -> AtomId {
        if let Some(&id) = self.atom_ids.get(atom) {
            return id;
        }
        let factors = if let Idx::Mul(x, y) = &atom.0 {
            let fx = self.intern(&Atom((**x).clone()));
            let fy = self.intern(&Atom((**y).clone()));
            Some((fx, fy))
        } else {
            None
        };
        let id = u32::try_from(self.atoms.len()).expect("FM atom table overflow");
        self.atoms.push(AtomInfo {
            atom: atom.clone(),
            infinite: mentions_infty(&atom.0),
            always_integer: matches!(atom.0, Idx::Ceil(_) | Idx::Floor(_)),
            var: match &atom.0 {
                Idx::Var(v) => Some(v.clone()),
                _ => None,
            },
            factors,
        });
        self.atom_ids.insert(atom.clone(), id);
        id
    }

    /// Converts a linear expression to a row, rejecting `∞` (in the
    /// constant or buried inside an atom).
    fn lin_row(&mut self, lin: &LinExpr, strict: bool) -> Option<Row> {
        let constant = lin.constant.finite()?;
        let mut coeffs = Vec::with_capacity(lin.coeffs.len());
        for (atom, q) in &lin.coeffs {
            let id = self.intern(atom);
            if self.atoms[id as usize].infinite {
                return None;
            }
            coeffs.push((id, *q));
        }
        coeffs.sort_unstable_by_key(|(id, _)| *id);
        Some(Row {
            coeffs,
            constant,
            strict,
        })
    }

    /// The row for `pos − neg {≥,>} 0`; `None` when either side leaves the
    /// finite-linear fragment.
    fn row_of(&mut self, pos: &Idx, neg: &Idx, strict: bool) -> Option<Row> {
        let lp = LinExpr::of_idx(pos);
        lp.constant.finite()?;
        let ln = LinExpr::of_idx(neg);
        ln.constant.finite()?;
        self.lin_row(&lp.sub(&ln), strict)
    }

    /// Converts one hypothesis fact into its rows (memoized): `Eq`
    /// contributes both directions, `Leq`/`Lt` one row each; anything else
    /// (including facts mentioning `∞`, which carry no finite-linear
    /// information) contributes nothing — proving from fewer hypotheses is
    /// always sound.
    fn fact_rows_cached(&mut self, fact: &Constr, hash: u64, verify: u64) -> Vec<Row> {
        if let Some(bucket) = self.fact_rows.get(&hash) {
            if let Some((_, rows)) = bucket.iter().find(|(v, _)| *v == verify) {
                return rows.clone();
            }
        }
        let mut rows = Vec::new();
        match fact {
            Constr::Leq(a, b) => {
                if let Some(r) = self.row_of(b, a, false) {
                    rows.push(r);
                }
            }
            Constr::Lt(a, b) => {
                if let Some(r) = self.row_of(b, a, true) {
                    rows.push(r);
                }
            }
            Constr::Eq(a, b) => {
                if let (Some(r1), Some(r2)) = (self.row_of(b, a, false), self.row_of(a, b, false)) {
                    rows.push(r1);
                    rows.push(r2);
                }
            }
            _ => {}
        }
        if self.fact_rows_len >= FACT_ROWS_MAX_ENTRIES {
            self.fact_rows.clear();
            self.fact_rows_len = 0;
        }
        self.fact_rows
            .entry(hash)
            .or_default()
            .push((verify, rows.clone()));
        self.fact_rows_len += 1;
        rows
    }

    /// The negated-goal DNF, memoized per goal (the branch cap is fixed per
    /// solver, so it is not part of the key).
    fn neg_branches_cached(&mut self, goal: &Constr, cap: usize) -> Option<Arc<Branches>> {
        let hash = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            goal.hash(&mut h);
            h.finish()
        };
        if let Some(bucket) = self.goal_branches.get(&hash) {
            if let Some((_, branches)) = bucket.iter().find(|(g, _)| g == goal) {
                return branches.clone();
            }
        }
        let branches = neg_branches(goal, cap, self).map(Arc::new);
        if self.goal_branches_len >= FACT_ROWS_MAX_ENTRIES {
            self.goal_branches.clear();
            self.goal_branches_len = 0;
        }
        self.goal_branches
            .entry(hash)
            .or_default()
            .push((goal.clone(), branches.clone()));
        self.goal_branches_len += 1;
        branches
    }

    /// The normalized base system of one fact list (memoized).  Returns
    /// `(rows, atoms)` — `rows` is `None` on a ground contradiction
    /// (`contradictory = true` in the entry) or a magnitude blow-up.
    #[allow(clippy::type_complexity)]
    fn base_cached(
        &mut self,
        hash: u64,
        verify: u64,
        facts: &[(&Constr, u64, u64)],
        nat_vars: &BTreeSet<IdxVar>,
    ) -> (Option<Arc<Vec<Row>>>, Arc<BTreeSet<AtomId>>, bool) {
        if let Some(bucket) = self.bases.get(&hash) {
            if let Some(e) = bucket.iter().find(|e| e.verify == verify) {
                return (e.rows.clone(), Arc::clone(&e.atoms), e.contradictory);
            }
        }
        let mut base: Vec<Row> = Vec::new();
        for (fact, fh, fv) in facts {
            base.extend(self.fact_rows_cached(fact, *fh, *fv));
        }
        let mut atoms: BTreeSet<AtomId> = BTreeSet::new();
        for row in &base {
            atoms.extend(row.coeffs.iter().map(|(id, _)| *id));
        }
        base.extend(atoms.iter().map(|&id| nonneg_row(id)));
        let (rows, contradictory) = match normalize_system(base, &self.atoms, nat_vars) {
            Err(()) => (None, false),
            Ok(None) => (None, true),
            Ok(Some(rows)) => (Some(Arc::new(rows)), false),
        };
        let atoms = Arc::new(atoms);
        if self.bases_len >= FACT_ROWS_MAX_ENTRIES {
            self.bases.clear();
            self.bases_len = 0;
        }
        self.bases.entry(hash).or_default().push(BaseEntry {
            verify,
            rows: rows.clone(),
            atoms: Arc::clone(&atoms),
            contradictory,
        });
        self.bases_len += 1;
        (rows, atoms, contradictory)
    }

    /// Records one whole-query outcome.
    fn store_query(&mut self, hash: u64, verify: u64, out: &FmOutcome) {
        if self.queries_len >= FM_MEMO_MAX_ENTRIES {
            self.queries.clear();
            self.queries_len = 0;
        }
        self.queries.entry(hash).or_default().push(QueryEntry {
            verify,
            verdict: out.verdict,
            eliminated: out.eliminated.clone(),
            witness: out.witness.clone(),
        });
        self.queries_len += 1;
    }

    fn lookup(&self, hash: u64, rows: &[Row], ints: &[(AtomId, bool)]) -> Option<BranchDecision> {
        self.entries.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.rows == rows && e.ints == ints)
                .map(|e| e.decision.clone())
        })
    }

    fn store(
        &mut self,
        hash: u64,
        rows: Vec<Row>,
        ints: Vec<(AtomId, bool)>,
        decision: BranchDecision,
    ) {
        if self.len >= FM_MEMO_MAX_ENTRIES {
            self.entries.clear();
            self.len = 0;
        }
        self.entries.entry(hash).or_default().push(MemoEntry {
            rows,
            ints,
            decision,
        });
        self.len += 1;
    }
}

// ---------------------------------------------------------------------------
// Rows
// ---------------------------------------------------------------------------

/// One constraint row `Σ qᵢ·atomᵢ + c ≥ 0` (or `> 0` when `strict`), over
/// interned atom ids.  Coefficients are sorted by id and zero-free; the
/// constant is always finite — `∞` never enters a system.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Row {
    /// `(atom, coefficient)` pairs, sorted by atom id.
    coeffs: Vec<(AtomId, Rational)>,
    /// The additive constant.
    constant: Rational,
    /// `true` for a strict bound.
    strict: bool,
}

impl Row {
    /// `true` while every coefficient and the constant stay within
    /// [`MAX_MAGNITUDE`].
    fn in_bounds(&self) -> bool {
        rat_in_bounds(self.constant) && self.coeffs.iter().all(|(_, q)| rat_in_bounds(*q))
    }

    /// Removes an atom's column, returning its previous coefficient (zero
    /// when absent).
    fn remove_atom(&mut self, id: AtomId) -> Rational {
        match self.coeffs.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => self.coeffs.remove(pos).1,
            Err(_) => Rational::ZERO,
        }
    }

    /// Evaluates the row's expression under a (total, for this row's atoms)
    /// assignment; `None` on unassigned atoms or overflow.
    fn eval(&self, assignment: &BTreeMap<AtomId, Rational>) -> Option<Rational> {
        let mut acc = self.constant;
        for (id, q) in &self.coeffs {
            acc = rat_add(acc, rat_mul(*q, *assignment.get(id)?)?)?;
        }
        Some(acc)
    }
}

// ---------------------------------------------------------------------------
// Checked rational arithmetic
// ---------------------------------------------------------------------------
//
// `Rational`'s operators panic when a *reduced* result overflows `i64`.
// Bounded inputs do not make reduced outputs bounded (the gcd can be 1), so
// every arithmetic step of elimination and witness extraction goes through
// these checked helpers instead: `None` makes the run abstain (falling
// through to the numeric layer) where the raw operators would abort the
// process.  All intermediates are `i128`, far from overflow for in-bounds
// operands.

fn rat_in_bounds(q: Rational) -> bool {
    q.numerator().abs() <= MAX_MAGNITUDE && q.denominator() <= MAX_MAGNITUDE
}

/// Builds a reduced rational, requiring the result within [`MAX_MAGNITUDE`].
fn checked_rat(num: i128, den: i128) -> Option<Rational> {
    debug_assert!(den != 0);
    let sign = if den < 0 { -1 } else { 1 };
    let g = gcd_i128(num, den).max(1);
    let num = sign * num / g;
    let den = sign * den / g;
    if num.abs() > MAX_MAGNITUDE as i128 || den > MAX_MAGNITUDE as i128 {
        return None;
    }
    Some(Rational::new(num as i64, den as i64))
}

fn rat_mul(a: Rational, b: Rational) -> Option<Rational> {
    checked_rat(
        a.numerator() as i128 * b.numerator() as i128,
        a.denominator() as i128 * b.denominator() as i128,
    )
}

fn rat_add(a: Rational, b: Rational) -> Option<Rational> {
    checked_rat(
        a.numerator() as i128 * b.denominator() as i128
            + b.numerator() as i128 * a.denominator() as i128,
        a.denominator() as i128 * b.denominator() as i128,
    )
}

fn rat_div(a: Rational, b: Rational) -> Option<Rational> {
    if b.is_zero() {
        return None;
    }
    checked_rat(
        a.numerator() as i128 * b.denominator() as i128,
        a.denominator() as i128 * b.numerator() as i128,
    )
}

/// `lo/a + up/(-b)` over whole residual rows: the Fourier–Motzkin
/// combination of a lower-bound row (`a > 0`) and an upper-bound row
/// (`b < 0`) after the pivot column was removed.  The two sorted coefficient
/// vectors merge in one pass.  `None` on any overflow of the magnitude cap.
fn combine_rows(lo: &Row, a: Rational, up: &Row, b: Rational) -> Option<Row> {
    let inv_a = rat_div(Rational::ONE, a)?;
    let inv_nb = rat_div(Rational::ONE, Rational::ZERO - b)?;
    let mut coeffs = Vec::with_capacity(lo.coeffs.len() + up.coeffs.len());
    let (mut i, mut j) = (0, 0);
    while i < lo.coeffs.len() || j < up.coeffs.len() {
        let take_lo = match (lo.coeffs.get(i), up.coeffs.get(j)) {
            (Some((li, _)), Some((uj, _))) => {
                if li == uj {
                    let q = rat_add(
                        rat_mul(lo.coeffs[i].1, inv_a)?,
                        rat_mul(up.coeffs[j].1, inv_nb)?,
                    )?;
                    if !q.is_zero() {
                        coeffs.push((*li, q));
                    }
                    i += 1;
                    j += 1;
                    continue;
                }
                li < uj
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("loop condition"),
        };
        if take_lo {
            let (id, q) = lo.coeffs[i];
            let q = rat_mul(q, inv_a)?;
            if !q.is_zero() {
                coeffs.push((id, q));
            }
            i += 1;
        } else {
            let (id, q) = up.coeffs[j];
            let q = rat_mul(q, inv_nb)?;
            if !q.is_zero() {
                coeffs.push((id, q));
            }
            j += 1;
        }
    }
    let constant = rat_add(rat_mul(lo.constant, inv_a)?, rat_mul(up.constant, inv_nb)?)?;
    Some(Row {
        coeffs,
        constant,
        strict: lo.strict || up.strict,
    })
}

/// Does the index term mention `∞` anywhere?  Such atoms are outside the
/// finite-linear fragment (checked once per atom, at interning time).
fn mentions_infty(idx: &Idx) -> bool {
    match idx {
        Idx::Infty => true,
        Idx::Var(_) | Idx::Const(_) => false,
        Idx::Add(a, b)
        | Idx::Sub(a, b)
        | Idx::Mul(a, b)
        | Idx::Div(a, b)
        | Idx::Min(a, b)
        | Idx::Max(a, b) => mentions_infty(a) || mentions_infty(b),
        Idx::Ceil(a) | Idx::Floor(a) | Idx::Log2(a) | Idx::Pow2(a) => mentions_infty(a),
        Idx::Sum { lo, hi, body, .. } => {
            mentions_infty(lo) || mentions_infty(hi) || mentions_infty(body)
        }
    }
}

// ---------------------------------------------------------------------------
// DNF of goals and their negations
// ---------------------------------------------------------------------------

type Branches = Vec<Vec<Row>>;

fn cross(a: Branches, b: Branches, cap: usize) -> Option<Branches> {
    if a.len().checked_mul(b.len())? > cap {
        return None;
    }
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in &a {
        for y in &b {
            let mut branch = x.clone();
            branch.extend(y.iter().cloned());
            out.push(branch);
        }
    }
    Some(out)
}

fn union(a: Branches, b: Branches, cap: usize) -> Option<Branches> {
    if a.len() + b.len() > cap {
        return None;
    }
    let mut out = a;
    out.extend(b);
    Some(out)
}

/// DNF of `c` itself, as branches of conjoined rows.  `None` when `c` is
/// outside the quantifier-free comparison fragment.
fn pos_branches(c: &Constr, cap: usize, memo: &mut FmMemo) -> Option<Branches> {
    match c {
        Constr::Top => Some(vec![vec![]]),
        Constr::Bot => Some(vec![]),
        Constr::Eq(a, b) => Some(vec![vec![
            memo.row_of(b, a, false)?,
            memo.row_of(a, b, false)?,
        ]]),
        Constr::Leq(a, b) => Some(vec![vec![memo.row_of(b, a, false)?]]),
        Constr::Lt(a, b) => Some(vec![vec![memo.row_of(b, a, true)?]]),
        Constr::And(cs) => {
            let mut acc = vec![vec![]];
            for c in cs {
                acc = cross(acc, pos_branches(c, cap, memo)?, cap)?;
            }
            Some(acc)
        }
        Constr::Or(cs) => {
            let mut acc = vec![];
            for c in cs {
                acc = union(acc, pos_branches(c, cap, memo)?, cap)?;
            }
            Some(acc)
        }
        Constr::Not(c) => neg_branches(c, cap, memo),
        Constr::Implies(a, b) => union(
            neg_branches(a, cap, memo)?,
            pos_branches(b, cap, memo)?,
            cap,
        ),
        Constr::Forall(_, _) | Constr::Exists(_, _) => None,
    }
}

/// DNF of `¬c`.
fn neg_branches(c: &Constr, cap: usize, memo: &mut FmMemo) -> Option<Branches> {
    match c {
        Constr::Top => Some(vec![]),
        Constr::Bot => Some(vec![vec![]]),
        // ¬(a = b) splits: a > b or b > a.
        Constr::Eq(a, b) => Some(vec![
            vec![memo.row_of(a, b, true)?],
            vec![memo.row_of(b, a, true)?],
        ]),
        Constr::Leq(a, b) => Some(vec![vec![memo.row_of(a, b, true)?]]),
        Constr::Lt(a, b) => Some(vec![vec![memo.row_of(a, b, false)?]]),
        Constr::And(cs) => {
            let mut acc = vec![];
            for c in cs {
                acc = union(acc, neg_branches(c, cap, memo)?, cap)?;
            }
            Some(acc)
        }
        Constr::Or(cs) => {
            let mut acc = vec![vec![]];
            for c in cs {
                acc = cross(acc, neg_branches(c, cap, memo)?, cap)?;
            }
            Some(acc)
        }
        Constr::Not(c) => pos_branches(c, cap, memo),
        Constr::Implies(a, b) => cross(
            pos_branches(a, cap, memo)?,
            neg_branches(b, cap, memo)?,
            cap,
        ),
        Constr::Forall(_, _) | Constr::Exists(_, _) => None,
    }
}

// ---------------------------------------------------------------------------
// Normalization and integer tightening
// ---------------------------------------------------------------------------

/// Is the atom integer-valued?  ℕ-sorted variables and `⌈·⌉`/`⌊·⌋` atoms
/// are; everything else is treated as real (`2^x`/`log₂ x` would also
/// qualify for natural arguments, but their arguments' sorts are not
/// tracked per-atom, so they stay untightened — sound, merely weaker).
fn is_integer_atom(table: &[AtomInfo], nat_vars: &BTreeSet<IdxVar>, id: AtomId) -> bool {
    let info = &table[id as usize];
    info.always_integer || info.var.as_ref().is_some_and(|v| nat_vars.contains(v))
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Scales a row whose atoms are all integer-valued to coprime integer
/// coefficients and rounds the constant: the floor-based bound tightening
/// that makes strict ℕ-bounds decidable without a grid.  Leaves the row
/// untouched (still sound) when scaling would exceed the magnitude cap.
fn tighten_integer_row(row: &mut Row, table: &[AtomInfo], nat_vars: &BTreeSet<IdxVar>) {
    if row.coeffs.is_empty() {
        return;
    }
    // Precondition for the panic-free scaling below: in-bounds operands.
    // (Out-of-bounds rows are rejected by `normalize_system` right after.)
    if !row.in_bounds() {
        return;
    }
    if !row
        .coeffs
        .iter()
        .all(|(id, _)| is_integer_atom(table, nat_vars, *id))
    {
        return;
    }
    // lcm of the coefficient denominators.
    let mut lcm: i128 = 1;
    for (_, q) in &row.coeffs {
        let den = q.denominator() as i128;
        lcm = lcm / gcd_i128(lcm, den) * den;
        if lcm > MAX_MAGNITUDE as i128 {
            return;
        }
    }
    let scale = Rational::from_int(lcm as i64);
    let mut coeffs = Vec::with_capacity(row.coeffs.len());
    for (id, q) in &row.coeffs {
        match rat_mul(*q, scale) {
            Some(scaled) => coeffs.push((*id, scaled)),
            None => return,
        }
    }
    let Some(mut constant) = rat_mul(row.constant, scale) else {
        return;
    };
    // Divide through by the gcd of the (now integral) coefficients.
    let mut g: i128 = 0;
    for (_, q) in &coeffs {
        debug_assert!(q.is_integer());
        g = gcd_i128(g, q.numerator() as i128);
    }
    if g > 1 && g <= MAX_MAGNITUDE as i128 {
        let shrink = Rational::new(1, g as i64);
        for (_, q) in coeffs.iter_mut() {
            match rat_mul(*q, shrink) {
                Some(v) => *q = v,
                None => return,
            }
        }
        constant = match rat_mul(constant, shrink) {
            Some(v) => v,
            None => return,
        };
    }
    // Σ + c > 0  ⟺  Σ ≥ ⌊-c⌋ + 1;  Σ + c ≥ 0  ⟺  Σ ≥ ⌈-c⌉  (Σ integral).
    let tightened = if row.strict {
        Rational::ZERO - ((Rational::ZERO - constant).floor() + Rational::ONE)
    } else {
        constant.floor()
    };
    let candidate = Row {
        coeffs,
        constant: tightened,
        strict: false,
    };
    if candidate.in_bounds() {
        *row = candidate;
    }
}

enum RowStatus {
    /// Trivially satisfied — drop.
    Trivial,
    /// Ground contradiction — the whole branch is infeasible.
    Contradiction,
    /// Keep (possibly tightened).
    Keep,
}

fn classify(row: &mut Row, table: &[AtomInfo], nat_vars: &BTreeSet<IdxVar>) -> RowStatus {
    tighten_integer_row(row, table, nat_vars);
    if row.coeffs.is_empty() {
        let c = row.constant;
        let sat = if row.strict {
            !c.is_negative() && !c.is_zero()
        } else {
            !c.is_negative()
        };
        return if sat {
            RowStatus::Trivial
        } else {
            RowStatus::Contradiction
        };
    }
    RowStatus::Keep
}

/// Normalizes a system into canonical form: tightens and classifies every
/// row, detects ground contradictions, sorts the rows, and keeps only the
/// tightest bound per coefficient vector (base facts recur in every branch,
/// and combination steps produce duplicates; over id vectors the dedup is
/// cheap enough to run unconditionally).  The canonical output doubles as
/// the subproblem-memo key.  `Ok(None)` means a ground contradiction (the
/// branch is infeasible); `Err(())` means a magnitude blow-up (abstain).
fn normalize_system(
    rows: Vec<Row>,
    table: &[AtomInfo],
    nat_vars: &BTreeSet<IdxVar>,
) -> Result<Option<Vec<Row>>, ()> {
    let mut kept: Vec<Row> = Vec::with_capacity(rows.len());
    for mut row in rows {
        match classify(&mut row, table, nat_vars) {
            RowStatus::Trivial => continue,
            RowStatus::Contradiction => return Ok(None),
            RowStatus::Keep => {}
        }
        if !row.in_bounds() {
            return Err(());
        }
        kept.push(row);
    }
    canonical_merge(&mut kept);
    Ok(Some(kept))
}

/// Sorts rows into canonical order — by coefficient vector, then tightest
/// first (smaller constant is tighter; at equal constants strict is
/// tighter) — and keeps only the tightest bound per coefficient vector (a
/// looser bound over the same coefficients is implied by it).
fn canonical_merge(rows: &mut Vec<Row>) {
    rows.sort_unstable_by(|a, b| {
        a.coeffs
            .cmp(&b.coeffs)
            .then_with(|| a.constant.cmp(&b.constant))
            .then_with(|| b.strict.cmp(&a.strict))
    });
    rows.dedup_by(|a, b| a.coeffs == b.coeffs);
}

/// The (process-local) hash and integer signature of a canonical system —
/// bucket selection for [`FmMemo`]; the stored entry carries the full
/// system for verification.  The signature records which system atoms are
/// integer-valued under the query's ℕ-sorted variables: two queries with
/// identical rows but different sorts must not share a decision.  The atom
/// set is closed under product *factors*: a factor variable never appears
/// as a row atom of the system, yet `concretize`'s sort check consults its
/// integrality when it solves `P = x·y` for `x` — replaying a witness
/// across a sort flip there would smuggle a fractional value past the
/// ℕ-domain check.
fn system_sig(
    rows: &[Row],
    table: &[AtomInfo],
    nat_vars: &BTreeSet<IdxVar>,
) -> (u64, Vec<(AtomId, bool)>) {
    let mut ids: Vec<AtomId> = rows
        .iter()
        .flat_map(|r| r.coeffs.iter().map(|(id, _)| *id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    // Close over product factors (chains of products terminate: factors
    // were interned before the product that mentions them).
    let mut queue: Vec<AtomId> = ids.clone();
    while let Some(id) = queue.pop() {
        if let Some((fx, fy)) = table[id as usize].factors {
            for f in [fx, fy] {
                if let Err(pos) = ids.binary_search(&f) {
                    ids.insert(pos, f);
                    queue.push(f);
                }
            }
        }
    }
    let ints: Vec<(AtomId, bool)> = ids
        .into_iter()
        .map(|id| (id, is_integer_atom(table, nat_vars, id)))
        .collect();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for row in rows {
        row.strict.hash(&mut h);
        row.constant.hash(&mut h);
        row.coeffs.hash(&mut h);
    }
    ints.hash(&mut h);
    (h.finish(), ints)
}

// ---------------------------------------------------------------------------
// Elimination
// ---------------------------------------------------------------------------

enum ElimResult {
    /// The system is infeasible.
    Unsat,
    /// All atoms eliminated without contradiction: feasible (in the
    /// abstraction).
    Sat,
    /// Limits exceeded; the payload names the cap that fired (row/magnitude
    /// overflows map to `RowCap`, the distinct-atom ceiling to `BranchCap`).
    Abstain(SearchExhaustedReason),
}

/// The bound rows a pivot was eliminated under, kept for witness
/// back-substitution: each entry is the row with the pivot's column removed,
/// paired with the pivot coefficient.
struct ElimStep {
    atom: AtomId,
    /// Rows with a positive pivot coefficient: `pivot ≥ -eval(row)/a`.
    lower: Vec<(Row, Rational)>,
    /// Rows with a negative pivot coefficient: `pivot ≤ eval(row)/(-b)`.
    upper: Vec<(Row, Rational)>,
}

/// Runs the full elimination, recording the order atoms were projected and
/// (for witness extraction) the bound rows each pivot was eliminated under.
fn eliminate(
    mut rows: Vec<Row>,
    table: &[AtomInfo],
    nat_vars: &BTreeSet<IdxVar>,
    limits: &FmLimits,
    order: &mut Vec<String>,
    steps: &mut Vec<ElimStep>,
) -> ElimResult {
    // The input system arrives normalized (callers canonicalize it as the
    // memo key); inside the loop only freshly *combined* rows need
    // tightening and classification — everything else is already in normal
    // form, so re-normalizing the whole system per round would triple the
    // elimination cost for nothing.
    let mut fresh_from = rows.len();
    loop {
        let mut kept: Vec<Row> = Vec::with_capacity(rows.len());
        for (i, row) in rows.into_iter().enumerate() {
            let mut row = row;
            if i >= fresh_from {
                match classify(&mut row, table, nat_vars) {
                    RowStatus::Trivial => continue,
                    RowStatus::Contradiction => return ElimResult::Unsat,
                    RowStatus::Keep => {}
                }
                if !row.in_bounds() {
                    return ElimResult::Abstain(SearchExhaustedReason::RowCap);
                }
            }
            kept.push(row);
        }
        rows = kept;
        // Combination grows systems quadratically; prune implied duplicates
        // once a system gets large (on small systems the sort costs more
        // than the duplicates it removes).
        if rows.len() > 48 {
            canonical_merge(&mut rows);
        }
        if rows.len() > limits.max_rows {
            return ElimResult::Abstain(SearchExhaustedReason::RowCap);
        }
        // Count atom occurrences, split by sign, to pick the cheapest pivot.
        let mut signs: BTreeMap<AtomId, (usize, usize)> = BTreeMap::new();
        for row in &rows {
            for (id, q) in &row.coeffs {
                let entry = signs.entry(*id).or_insert((0, 0));
                if q.is_negative() {
                    entry.1 += 1;
                } else {
                    entry.0 += 1;
                }
            }
        }
        if signs.is_empty() {
            return ElimResult::Sat;
        }
        if signs.len() > limits.max_atoms {
            return ElimResult::Abstain(SearchExhaustedReason::BranchCap);
        }
        // Cheapest pivot by (p·n, p+n); ties broken by the atoms'
        // *structural* order, so the elimination order is independent of
        // the id-assignment history of the solver's atom table.
        let pivot = signs
            .iter()
            .map(|(id, &(p, n))| (*id, (p * n, p + n)))
            .min_by(|(ia, ka), (ib, kb)| {
                ka.cmp(kb)
                    .then_with(|| table[*ia as usize].atom.cmp(&table[*ib as usize].atom))
            })
            .map(|(id, _)| id)
            .expect("non-empty sign map");
        order.push(table[pivot as usize].atom.to_string());

        let mut kept = Vec::new();
        let mut lower = Vec::new(); // positive coefficient: pivot bounded below
        let mut upper = Vec::new(); // negative coefficient: pivot bounded above
        for mut row in rows {
            let c = row.remove_atom(pivot);
            if c.is_zero() {
                kept.push(row);
            } else if c.is_negative() {
                upper.push((row, c));
            } else {
                lower.push((row, c));
            }
        }
        // Fresh rows start where the carried-over (pivot-free, already
        // normalized) rows end.
        let carried = kept.len();
        // One-sided bounds project away with their rows.
        if !lower.is_empty() && !upper.is_empty() {
            if carried + lower.len() * upper.len() > limits.max_rows {
                return ElimResult::Abstain(SearchExhaustedReason::RowCap);
            }
            for (lo, a) in &lower {
                for (up, b) in &upper {
                    // lo: a·x + e ≥ 0 (a > 0) gives x ≥ -e/a;
                    // up: b·x + f ≥ 0 (b < 0) gives x ≤ -f/b.
                    // Feasible together iff  -e/a ≤ -f/b, i.e. e/a + f/(-b) ≥ 0.
                    let Some(combined) = combine_rows(lo, *a, up, *b) else {
                        return ElimResult::Abstain(SearchExhaustedReason::RowCap);
                    };
                    kept.push(combined);
                }
            }
        }
        steps.push(ElimStep {
            atom: pivot,
            lower,
            upper,
        });
        fresh_from = carried;
        rows = kept;
    }
}

/// Back-substitutes a satisfying assignment through the elimination steps.
/// ℕ-sorted variables (and `⌈·⌉`/`⌊·⌋` atoms) get integer values; when no
/// integer fits the interval, extraction gives up (`None`) — the refutation
/// stays a candidate and the caller falls through to the grid.
///
/// `prefer_positive` lists atoms that occur as *factors* of product atoms:
/// within its interval, such an atom is nudged to ≥ 1, which is what lets
/// the concretizer later solve `P = x·y` for the remaining factor (a zero
/// factor makes the product inseparable).
fn extract_witness(
    steps: &[ElimStep],
    table: &[AtomInfo],
    nat_vars: &BTreeSet<IdxVar>,
    prefer_positive: &BTreeSet<AtomId>,
) -> Option<BTreeMap<AtomId, Rational>> {
    let mut assignment: BTreeMap<AtomId, Rational> = BTreeMap::new();
    for step in steps.iter().rev() {
        // Tightest bounds under the values chosen so far.
        let mut lo: Option<(Rational, bool)> = None;
        for (row, a) in &step.lower {
            let v = rat_div(Rational::ZERO - row.eval(&assignment)?, *a)?;
            let replace = match &lo {
                None => true,
                Some((cur, cur_strict)) => v > *cur || (v == *cur && row.strict && !*cur_strict),
            };
            if replace {
                lo = Some((v, row.strict));
            }
        }
        let mut hi: Option<(Rational, bool)> = None;
        for (row, b) in &step.upper {
            let v = rat_div(row.eval(&assignment)?, Rational::ZERO - *b)?;
            let replace = match &hi {
                None => true,
                Some((cur, cur_strict)) => v < *cur || (v == *cur && row.strict && !*cur_strict),
            };
            if replace {
                hi = Some((v, row.strict));
            }
        }
        let integral = is_integer_atom(table, nat_vars, step.atom);
        let mut value = match (lo, hi) {
            (None, None) => Rational::ZERO,
            (Some((l, l_strict)), None) => {
                if integral {
                    let c = l.ceil();
                    if l_strict && c == l {
                        rat_add(c, Rational::ONE)?
                    } else {
                        c
                    }
                } else if l_strict {
                    rat_add(l, Rational::ONE)?
                } else {
                    l
                }
            }
            (None, Some((h, h_strict))) => {
                // Every atom carries a non-negativity lower bound while it is
                // still in the system, but a pivot can lose it to earlier
                // eliminations; clamp at zero.
                let base = Rational::ZERO.min(h);
                if h_strict && base == h {
                    return None;
                }
                base
            }
            (Some((l, l_strict)), Some((h, h_strict))) => {
                if integral {
                    let mut c = l.ceil();
                    if l_strict && c == l {
                        c = rat_add(c, Rational::ONE)?;
                    }
                    if c > h || (h_strict && c == h) {
                        return None;
                    }
                    c
                } else if l_strict || h_strict {
                    if l >= h {
                        return None;
                    }
                    rat_div(rat_add(l, h)?, Rational::from_int(2))?
                } else {
                    if l > h {
                        return None;
                    }
                    l
                }
            }
        };
        // Nudge product factors off zero when the interval allows: the
        // bounds only constrain the abstraction, but a strictly positive
        // factor is what makes `P = x·y` solvable for the other factor.
        if value < Rational::ONE && prefer_positive.contains(&step.atom) {
            let one_fits = match hi {
                None => true,
                Some((h, h_strict)) => Rational::ONE < h || (Rational::ONE == h && !h_strict),
            };
            if one_fits {
                value = Rational::ONE;
            }
        }
        // Defensive re-check against every bound row of this step.
        for (row, a) in &step.lower {
            let bound = rat_div(Rational::ZERO - row.eval(&assignment)?, *a)?;
            if value < bound || (row.strict && value == bound) {
                return None;
            }
        }
        for (row, b) in &step.upper {
            let bound = rat_div(row.eval(&assignment)?, Rational::ZERO - *b)?;
            if value > bound || (row.strict && value == bound) {
                return None;
            }
        }
        assignment.insert(step.atom, value);
    }
    Some(assignment)
}

// ---------------------------------------------------------------------------
// Entailment
// ---------------------------------------------------------------------------

/// The `atom ≥ 0` side row: RelCost index terms (sizes, difference counts,
/// costs and every operation over them) denote non-negative quantities —
/// the same invariant `is_syntactically_nonneg` and the greedy layer
/// already rely on.
fn nonneg_row(id: AtomId) -> Row {
    Row {
        coeffs: vec![(id, Rational::ONE)],
        constant: Rational::ZERO,
        strict: false,
    }
}

/// Turns an *atom* assignment into a *variable* assignment: plain-variable
/// atoms bind directly, and product atoms `P = x · y` are solved for a
/// still-unbound variable factor by dividing `P`'s value by the other
/// factor (iterated to a fixed point, so chains of products resolve).
/// Remaining compound atoms are simply dropped — the caller re-verifies the
/// point by direct evaluation, which is the actual soundness gate; a
/// dropped constraint can only make that verification fail (falling back
/// to the grid), never let a wrong counterexample through.
///
/// Gives up (`None`) when a binding would violate its variable's sort —
/// a fractional or negative value for an ℕ-sorted variable is not a point
/// of the concrete domain, so "refuting" there would wrongly reject
/// obligations that hold over the naturals.
fn concretize(
    assignment: &BTreeMap<AtomId, Rational>,
    table: &[AtomInfo],
    universals: &[(IdxVar, Sort)],
) -> Option<Vec<(IdxVar, Rational)>> {
    let mut vars: BTreeMap<IdxVar, Rational> = BTreeMap::new();
    for (id, value) in assignment {
        if let Some(v) = &table[*id as usize].var {
            vars.insert(v.clone(), *value);
        }
    }
    loop {
        let mut changed = false;
        for (id, value) in assignment {
            let Some((fx, fy)) = table[*id as usize].factors else {
                continue;
            };
            for (target, other) in [(fx, fy), (fy, fx)] {
                let Some(v) = &table[target as usize].var else {
                    continue;
                };
                if vars.contains_key(v) {
                    continue;
                }
                let env = rel_index::IdxEnv::from_pairs(
                    vars.iter().map(|(w, q)| (w.clone(), Extended::Finite(*q))),
                );
                let Ok(Extended::Finite(q)) = table[other as usize].atom.0.eval(&env) else {
                    continue;
                };
                if q.is_zero() {
                    continue;
                }
                let Some(solved) = rat_div(*value, q) else {
                    continue;
                };
                vars.insert(v.clone(), solved);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Sort check: every bound universal must hold a point of its domain.
    for (v, sort) in universals {
        if let Some(q) = vars.get(v) {
            if q.is_negative() || (*sort == Sort::Nat && !q.is_integer()) {
                return None;
            }
        }
    }
    if vars.values().any(|q| q.is_negative()) {
        return None;
    }
    Some(vars.into_iter().collect())
}

fn nat_var_set(universals: &[(IdxVar, Sort)]) -> BTreeSet<IdxVar> {
    universals
        .iter()
        .filter(|(_, s)| *s == Sort::Nat)
        .map(|(v, _)| v.clone())
        .collect()
}

/// Decides `facts ⟹ goal` by refuting `facts ∧ ¬goal`, branch by branch.
///
/// `Proved` is sound unconditionally.  `CandidateRefuted` and `Abstained`
/// are inconclusive: the caller falls through to the numeric layer.
///
/// The branch-invariant work is hoisted out of the branch loop: the fact
/// rows come from the memo's per-fact conversion cache, their
/// atom-nonnegativity side rows are derived once per query (branches only
/// contribute their own goal atoms on top), and each branch system is
/// normalized into canonical form and answered through the subproblem memo
/// — structurally identical branches are eliminated once per solver.
pub fn prove(
    universals: &[(IdxVar, Sort)],
    facts: &[&Constr],
    goal: &Constr,
    limits: &FmLimits,
    memo: &mut FmMemo,
) -> FmOutcome {
    let nat_vars = nat_var_set(universals);
    // Each fact is hashed once into two independently seeded streams; the
    // per-fact pairs verify the fact-row cache, their combination (plus the
    // sorts) keys the base cache, and folding in the goal keys the query
    // memo — one pass over the inputs serves every memo layer.
    let mut primary = Fnv1a::default();
    let mut verify = Fnv1a::default();
    verify.write_u64(FM_VERIFY_SALT);
    let hashed_facts: Vec<(&Constr, u64, u64)> = facts
        .iter()
        .map(|fact| {
            let mut h1 = Fnv1a::default();
            fact.hash(&mut h1);
            let mut h2 = Fnv1a::default();
            h2.write_u64(FM_VERIFY_SALT);
            fact.hash(&mut h2);
            let (fh, fv) = (h1.finish(), h2.finish());
            primary.write_u64(fh);
            verify.write_u64(fv);
            (*fact, fh, fv)
        })
        .collect();
    nat_vars.hash(&mut primary);
    nat_vars.hash(&mut verify);
    let (base_hash, base_verify) = (primary.finish(), verify.finish());
    goal.hash(&mut primary);
    goal.hash(&mut verify);
    let (query_hash, query_verify) = (primary.finish(), verify.finish());
    if let Some(bucket) = memo.queries.get(&query_hash) {
        if let Some(e) = bucket.iter().find(|e| e.verify == query_verify) {
            return FmOutcome {
                verdict: e.verdict,
                eliminated: e.eliminated.clone(),
                witness: e.witness.clone(),
                memo_hits: 1,
                memo_misses: 0,
            };
        }
    }
    let Some(branches) = memo.neg_branches_cached(goal, limits.max_branches) else {
        rel_obs::event_with(
            SearchExhaustedReason::BranchCap.fm_event_name(),
            limits.max_branches as u64,
        );
        return FmOutcome::abstained();
    };
    // Hoisted *and memoized* once per hypothesis (satellite of the FM perf
    // pass): the base facts' rows, their atom-nonnegativity side rows and
    // the whole normalization (tightening) of the base system are
    // branch-invariant and identical across every sub-goal sharing the
    // hypothesis — branches only contribute their own goal rows, normalized
    // separately and merged below.
    let (base_rows, base_atoms, contradictory) =
        memo.base_cached(base_hash, base_verify, &hashed_facts, &nat_vars);
    let base_norm = match base_rows {
        Some(rows) => rows,
        // Contradictory hypotheses: every branch is infeasible outright.
        None if contradictory => {
            return FmOutcome {
                verdict: FmVerdict::Proved,
                eliminated: Vec::new(),
                witness: None,
                memo_hits: 0,
                memo_misses: 0,
            }
        }
        None => return FmOutcome::abstained(),
    };

    let mut eliminated = Vec::new();
    let mut memo_hits = 0;
    let mut memo_misses = 0;
    let outcome = |verdict, eliminated, witness, memo_hits, memo_misses| FmOutcome {
        verdict,
        eliminated,
        witness,
        memo_hits,
        memo_misses,
    };
    let mut early: Option<FmOutcome> = None;
    for branch in branches.iter() {
        let mut branch = branch.clone();
        // Side rows for the branch's own atoms (those outside the base set).
        let mut branch_atoms: BTreeSet<AtomId> = BTreeSet::new();
        for row in &branch {
            branch_atoms.extend(row.coeffs.iter().map(|(id, _)| *id));
        }
        for id in branch_atoms {
            if !base_atoms.contains(&id) {
                branch.push(nonneg_row(id));
            }
        }
        // Normalize the branch's own rows, merge with the pre-normalized
        // base (tightening is row-local, so normalizing the parts equals
        // normalizing the whole), and canonicalize: ground contradictions
        // close the branch before the memo is consulted, and the canonical
        // system is the memo key.
        let rows = match normalize_system(branch, &memo.atoms, &nat_vars) {
            Err(()) => {
                early = Some(outcome(
                    FmVerdict::Abstained,
                    Vec::new(),
                    None,
                    memo_hits,
                    memo_misses,
                ));
                break;
            }
            Ok(None) => {
                eliminated = Vec::new();
                continue;
            }
            Ok(Some(mut rows)) => {
                rows.extend(base_norm.iter().cloned());
                canonical_merge(&mut rows);
                rows
            }
        };
        let (hash, ints) = system_sig(&rows, &memo.atoms, &nat_vars);
        let decision = match memo.lookup(hash, &rows, &ints) {
            Some(decision) => {
                memo_hits += 1;
                decision
            }
            None => {
                memo_misses += 1;
                let decision =
                    decide_branch(rows.clone(), universals, &memo.atoms, &nat_vars, limits);
                memo.store(hash, rows, ints, decision.clone());
                decision
            }
        };
        match decision {
            BranchDecision::Infeasible { order } => eliminated = order,
            BranchDecision::Feasible { order, witness } => {
                early = Some(outcome(
                    FmVerdict::CandidateRefuted,
                    order,
                    witness,
                    memo_hits,
                    memo_misses,
                ));
                break;
            }
            BranchDecision::Abstained { order, cause } => {
                rel_obs::event(cause.fm_event_name());
                early = Some(outcome(
                    FmVerdict::Abstained,
                    order,
                    None,
                    memo_hits,
                    memo_misses,
                ));
                break;
            }
        }
    }
    let out = early
        .unwrap_or_else(|| outcome(FmVerdict::Proved, eliminated, None, memo_hits, memo_misses));
    memo.store_query(query_hash, query_verify, &out);
    out
}

/// Runs the elimination core on one normalized branch system and packages
/// the result as the memoized [`BranchDecision`].
fn decide_branch(
    rows: Vec<Row>,
    universals: &[(IdxVar, Sort)],
    table: &[AtomInfo],
    nat_vars: &BTreeSet<IdxVar>,
    limits: &FmLimits,
) -> BranchDecision {
    // Atoms occurring as factors of product atoms in this system: steer
    // them positive so the concretizer can divide the product value back
    // out.
    let mut prefer_positive: BTreeSet<AtomId> = BTreeSet::new();
    for row in &rows {
        for (id, _) in &row.coeffs {
            if let Some((fx, fy)) = table[*id as usize].factors {
                prefer_positive.insert(fx);
                prefer_positive.insert(fy);
            }
        }
    }
    let mut order = Vec::new();
    let mut steps = Vec::new();
    match eliminate(rows, table, nat_vars, limits, &mut order, &mut steps) {
        ElimResult::Unsat => BranchDecision::Infeasible { order },
        ElimResult::Sat => {
            let witness = extract_witness(&steps, table, nat_vars, &prefer_positive)
                .and_then(|assignment| concretize(&assignment, table, universals));
            BranchDecision::Feasible { order, witness }
        }
        ElimResult::Abstain(cause) => BranchDecision::Abstained { order, cause },
    }
}

// ---------------------------------------------------------------------------
// ∃-projection (exelim reuse)
// ---------------------------------------------------------------------------

/// Rebuilds the index-term form of a row's expression (projection output).
fn row_to_idx(row: &Row, table: &[AtomInfo]) -> Idx {
    let mut lin = LinExpr::constant(Extended::Finite(row.constant));
    for (id, q) in &row.coeffs {
        lin = lin.add(&LinExpr::atom(table[*id as usize].atom.clone()).scale(*q));
    }
    lin.to_idx()
}

/// Projects real-sorted existential variables out of a *conjunctive* matrix
/// by Fourier–Motzkin elimination, returning an equivalent ∃-free
/// constraint over the remaining atoms.
///
/// Exactness: over ℝ, `∃v. conjunction-of-linear-rows` is *equivalent* to
/// the projected system (this is the textbook property of FM projection),
/// so replacing the goal `∃v. M` by the projection neither weakens nor
/// strengthens it.  The variables' sort bound is respected by adding
/// `v ≥ 0` before projecting (RelCost's ℝ sort is the non-negative reals —
/// costs).  ℕ-sorted variables are **not** projected this way: rational
/// projection over-approximates integer satisfiability (the Omega test's
/// dark shadow would be needed), and an over-approximated goal would be
/// unsound to prove.
///
/// Returns `None` when the matrix is not a conjunction of finite-linear
/// comparisons, a variable occurs inside an opaque atom, or limits are
/// exceeded.
pub fn project_reals(matrix: &Constr, vars: &[IdxVar], limits: &FmLimits) -> Option<Constr> {
    let mut abort = None;
    project_reals_with(matrix, vars, limits, &mut abort)
}

/// [`project_reals`] with cap attribution: when the projection fails on a
/// *limit* (rather than a fragment mismatch), `abort` is set to the cap
/// that fired and its configured value, so exelim can report why its last
/// complete move died instead of a generic "no candidate worked".
pub fn project_reals_with(
    matrix: &Constr,
    vars: &[IdxVar],
    limits: &FmLimits,
    abort: &mut Option<(SearchExhaustedReason, u64)>,
) -> Option<Constr> {
    // A throwaway atom table: projection is the cold path (once per failed
    // candidate search over an all-ℝ component).
    let mut memo = FmMemo::default();
    // The matrix must be one conjunctive branch of comparisons.
    let mut branches = pos_branches(matrix, limits.max_branches, &mut memo)?;
    if branches.len() != 1 {
        return None;
    }
    let mut rows = branches.pop().expect("length checked");
    if rows.len() > limits.max_rows {
        *abort = Some((SearchExhaustedReason::RowCap, limits.max_rows as u64));
        return None;
    }
    let nat_vars = BTreeSet::new(); // no integer tightening during projection
    for v in vars {
        let vid = memo.intern(&Atom(Idx::Var(v.clone())));
        // The variable must occur only as its own plain atom.
        if rows.iter().any(|r| {
            r.coeffs
                .iter()
                .any(|(id, _)| *id != vid && memo.atoms[*id as usize].atom.0.mentions(v))
        }) {
            return None;
        }
        // Domain bound of the ℝ (cost) sort.
        rows.push(nonneg_row(vid));
        rows = match normalize_system(rows, &memo.atoms, &nat_vars) {
            Err(()) => return None,
            // Infeasible matrix: ∃v. M is equivalent to ff.
            Ok(None) => return Some(Constr::Bot),
            Ok(Some(rows)) => rows,
        };
        let mut kept = Vec::new();
        let mut lower = Vec::new();
        let mut upper = Vec::new();
        for mut row in rows {
            let c = row.remove_atom(vid);
            if c.is_zero() {
                kept.push(row);
            } else if c.is_negative() {
                upper.push((row, c));
            } else {
                lower.push((row, c));
            }
        }
        if !lower.is_empty() && !upper.is_empty() {
            if kept.len() + lower.len() * upper.len() > limits.max_rows {
                *abort = Some((SearchExhaustedReason::RowCap, limits.max_rows as u64));
                return None;
            }
            for (lo, a) in &lower {
                for (up, b) in &upper {
                    let Some(combined) = combine_rows(lo, *a, up, *b) else {
                        // Coefficient magnitude overflow: same cap family.
                        *abort = Some((SearchExhaustedReason::RowCap, limits.max_rows as u64));
                        return None;
                    };
                    kept.push(combined);
                }
            }
        }
        rows = kept;
    }
    let rows = match normalize_system(rows, &memo.atoms, &nat_vars) {
        Err(()) => return None,
        Ok(None) => return Some(Constr::Bot),
        Ok(Some(rows)) => rows,
    };
    Some(Constr::conj(rows.into_iter().map(|row| {
        let idx = row_to_idx(&row, &memo.atoms);
        if row.strict {
            Constr::Lt(Idx::zero(), idx)
        } else {
            Constr::Leq(Idx::zero(), idx)
        }
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nats(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    fn prove_default(universals: &[(IdxVar, Sort)], facts: &[&Constr], goal: &Constr) -> FmVerdict {
        prove(
            universals,
            facts,
            goal,
            &FmLimits::default(),
            &mut FmMemo::default(),
        )
        .verdict
    }

    #[test]
    fn transitivity_chains_are_proved() {
        // a ≤ b ∧ b ≤ c ∧ c ≤ d  ⟹  a ≤ d
        let u = nats(&["a", "b", "c", "d"]);
        let f1 = Constr::leq(Idx::var("a"), Idx::var("b"));
        let f2 = Constr::leq(Idx::var("b"), Idx::var("c"));
        let f3 = Constr::leq(Idx::var("c"), Idx::var("d"));
        let goal = Constr::leq(Idx::var("a"), Idx::var("d"));
        assert_eq!(
            prove_default(&u, &[&f1, &f2, &f3], &goal),
            FmVerdict::Proved
        );
    }

    #[test]
    fn upper_bounds_on_goal_atoms_are_used() {
        // The greedy layer cannot do this one: proving a + b ≤ 20 from
        // a ≤ 10 ∧ b ≤ 10 needs *upper* bounds on the goal's positive
        // atoms, not cancellations of negative ones.
        let u = nats(&["a", "b"]);
        let f1 = Constr::leq(Idx::var("a"), Idx::nat(10));
        let f2 = Constr::leq(Idx::var("b"), Idx::nat(10));
        let goal = Constr::leq(Idx::var("a") + Idx::var("b"), Idx::nat(20));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
        // And the bound is exact: 19 is refutable in the abstraction.
        let goal = Constr::leq(Idx::var("a") + Idx::var("b"), Idx::nat(19));
        assert_eq!(
            prove_default(&u, &[&f1, &f2], &goal),
            FmVerdict::CandidateRefuted
        );
    }

    #[test]
    fn strict_nat_bounds_need_integer_tightening() {
        // 3 ≤ n ⟹ 1 < n holds over ℕ by rounding; over ℝ it already holds,
        // but 0 < 2n − 1 for a *real* n ≥ 1/2 shows rational reasoning alone
        // cannot tighten n ≥ 1/2 to n ≥ 1:
        let u = nats(&["n"]);
        let hyp = Constr::leq(Idx::nat(3), Idx::var("n"));
        let goal = Constr::lt(Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &goal), FmVerdict::Proved);
        // 2n ≥ 1 ⟹ n ≥ 1 — true over ℕ only via the floor rounding.
        let hyp = Constr::leq(Idx::one(), Idx::nat(2) * Idx::var("n"));
        let goal = Constr::leq(Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &goal), FmVerdict::Proved);
    }

    #[test]
    fn pointwise_disjunctions_are_proved_by_case_split() {
        // n ≤ 8 ∨ n ≥ 5 — neither disjunct is valid alone; the negation
        // n > 8 ∧ n < 5 is a ground contradiction after one elimination.
        let u = nats(&["n"]);
        let goal =
            Constr::leq(Idx::var("n"), Idx::nat(8)).or(Constr::geq(Idx::var("n"), Idx::nat(5)));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::Proved);
    }

    #[test]
    fn contradictory_facts_prove_bot() {
        let u = nats(&["n"]);
        let hyp = Constr::leq(Idx::var("n") + Idx::one(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[&hyp], &Constr::Bot), FmVerdict::Proved);
        // And consistent facts cannot prove Bot.
        let hyp = Constr::leq(Idx::var("n"), Idx::var("n") + Idx::one());
        assert_eq!(
            prove_default(&u, &[&hyp], &Constr::Bot),
            FmVerdict::CandidateRefuted
        );
    }

    #[test]
    fn opaque_atom_refutations_are_only_candidates() {
        // ⌈n/2⌉ ≤ n is true (lemma facts supply it) but *without* those
        // facts the abstraction can set ⌈n/2⌉ and n independently: FM must
        // answer CandidateRefuted, never Proved and never a hard Invalid.
        let u = nats(&["n"]);
        let goal = Constr::leq(Idx::half_ceil(Idx::var("n")), Idx::var("n"));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::CandidateRefuted);
    }

    #[test]
    fn infinity_makes_the_run_abstain_or_skip_facts() {
        let u = nats(&["n"]);
        // ∞ in the goal: outside the fragment.
        let goal = Constr::leq(Idx::infty(), Idx::var("n"));
        assert_eq!(prove_default(&u, &[], &goal), FmVerdict::Abstained);
        // ∞ in a fact: the fact is skipped, the rest still proves.
        let f1 = Constr::leq(Idx::var("n"), Idx::infty());
        let f2 = Constr::leq(Idx::var("n"), Idx::nat(3));
        let goal = Constr::leq(Idx::var("n"), Idx::nat(4));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
    }

    #[test]
    fn equality_goals_split_into_two_branches() {
        // a = b ∧ b = c ⟹ a = c.
        let u = nats(&["a", "b", "c"]);
        let f1 = Constr::eq(Idx::var("a"), Idx::var("b"));
        let f2 = Constr::eq(Idx::var("b"), Idx::var("c"));
        let goal = Constr::eq(Idx::var("a"), Idx::var("c"));
        assert_eq!(prove_default(&u, &[&f1, &f2], &goal), FmVerdict::Proved);
    }

    #[test]
    fn coefficient_blowups_abstain_instead_of_panicking() {
        // Coefficients near the magnitude cap with coprime denominators:
        // combining rows multiplies them, and the *reduced* result exceeds
        // what `Rational`'s panicking operators accept.  The checked
        // arithmetic must abstain (fall through to the grid) instead of
        // aborting the process.  Any verdict is acceptable; the property
        // under test is "returns".
        let u = nats(&["x", "y", "z"]);
        let big = (1i64 << 29) + 1;
        let c = |n: i64, d: i64| Idx::Const(Rational::new(n, d));
        let f1 = Constr::leq(
            c(big, big - 2) * Idx::var("x"),
            c(big - 4, big - 6) * Idx::var("y"),
        );
        let f2 = Constr::leq(
            c(big - 8, big - 10) * Idx::var("y"),
            c(big - 12, big - 14) * Idx::var("z"),
        );
        let goal = Constr::leq(c(big - 16, big - 18) * Idx::var("x"), Idx::var("z"));
        let _ = prove(
            &u,
            &[&f1, &f2],
            &goal,
            &FmLimits::default(),
            &mut FmMemo::default(),
        );
    }

    #[test]
    fn elimination_order_is_reported() {
        let u = nats(&["a", "b"]);
        let f = Constr::leq(Idx::var("a"), Idx::var("b"));
        let goal = Constr::leq(Idx::var("a"), Idx::var("b") + Idx::one());
        let out = prove(
            &u,
            &[&f],
            &goal,
            &FmLimits::default(),
            &mut FmMemo::default(),
        );
        assert_eq!(out.verdict, FmVerdict::Proved);
        assert!(!out.eliminated.is_empty());
    }

    #[test]
    fn identical_branch_systems_hit_the_memo() {
        // ¬(a = b) Eq-splits into two branches whose systems are decided
        // separately on the cold call; re-proving the same goal is answered
        // by the whole-query memo (one hit, zero eliminations), and two
        // *different* goals with structurally identical branch systems
        // share at the branch level.
        let u = nats(&["a", "b", "c"]);
        let f1 = Constr::eq(Idx::var("a"), Idx::var("b"));
        let f2 = Constr::eq(Idx::var("b"), Idx::var("c"));
        let goal = Constr::eq(Idx::var("a"), Idx::var("c"));
        let mut memo = FmMemo::default();
        let cold = prove(&u, &[&f1, &f2], &goal, &FmLimits::default(), &mut memo);
        assert_eq!(cold.verdict, FmVerdict::Proved);
        assert_eq!(cold.memo_hits, 0);
        assert!(cold.memo_misses > 0);
        assert_eq!(memo.len(), cold.memo_misses);
        let warm = prove(&u, &[&f1, &f2], &goal, &FmLimits::default(), &mut memo);
        assert_eq!(warm.verdict, FmVerdict::Proved);
        assert_eq!(warm.memo_misses, 0);
        assert_eq!(warm.memo_hits, 1, "whole-query memo answers the repeat");
        // A goal whose negation produces one of the same branch systems
        // (a ≤ c is one of ¬(a = c)'s two Eq-split branches… the converse
        // inequality) is answered at the *branch* level without a fresh
        // elimination.
        let half = Constr::leq(Idx::var("a"), Idx::var("c"));
        let len_before = memo.len();
        let shared = prove(&u, &[&f1, &f2], &half, &FmLimits::default(), &mut memo);
        assert_eq!(shared.verdict, FmVerdict::Proved);
        assert_eq!(shared.memo_hits, 1, "the Eq-split twin system is reused");
        assert_eq!(memo.len(), len_before);
        // Memoization must not change the verdict on a feasible branch
        // either (witness included).
        let refutable = Constr::leq(Idx::var("a") + Idx::one(), Idx::var("c"));
        let mut memo = FmMemo::default();
        let first = prove(&u, &[&f1, &f2], &refutable, &FmLimits::default(), &mut memo);
        let second = prove(&u, &[&f1, &f2], &refutable, &FmLimits::default(), &mut memo);
        assert_eq!(first.verdict, FmVerdict::CandidateRefuted);
        assert_eq!(second.verdict, first.verdict);
        assert_eq!(second.witness, first.witness);
        assert!(second.memo_hits > 0);
    }

    #[test]
    fn branch_memo_never_replays_witnesses_across_sort_flips() {
        // `t` occurs only as a *factor* of the product atom t·a — never as
        // a row atom — so the branch systems under t::Real and t::Nat are
        // canonically identical.  A memo replay across the sort flip would
        // smuggle the Real run's fractional witness past `concretize`'s
        // ℕ-domain check; the integer signature closes over factors to
        // keep the two decisions apart.
        let hyp = Constr::leq(Idx::one(), Idx::var("a"));
        let goal = Constr::leq(Idx::nat(2) * (Idx::var("t") * Idx::var("a")), Idx::one());
        let mut memo = FmMemo::default();
        let real = vec![
            (IdxVar::new("t"), Sort::Real),
            (IdxVar::new("a"), Sort::Nat),
        ];
        let first = prove(&real, &[&hyp], &goal, &FmLimits::default(), &mut memo);
        assert_eq!(first.verdict, FmVerdict::CandidateRefuted);
        let fractional = first.witness.as_ref().is_some_and(|w| {
            w.iter()
                .any(|(v, q)| v == &IdxVar::new("t") && !q.is_integer())
        });
        assert!(fractional, "the Real run should pick a fractional t");
        let nat = vec![(IdxVar::new("t"), Sort::Nat), (IdxVar::new("a"), Sort::Nat)];
        let second = prove(&nat, &[&hyp], &goal, &FmLimits::default(), &mut memo);
        if let Some(w) = &second.witness {
            for (v, q) in w {
                assert!(
                    q.is_integer(),
                    "ℕ-sorted {v} got non-integral witness value {q} via memo replay"
                );
            }
        }
    }

    #[test]
    fn projection_of_real_costs_is_exact() {
        // ∃t. c ≤ t ∧ t + 1 ≤ d  projects to  c + 1 ≤ d (plus c, d ≥ 0 noise
        // that normalization keeps only if non-trivial).
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::var("c"), Idx::var("t"))
            .and(Constr::leq(Idx::var("t") + Idx::one(), Idx::var("d")));
        let projected = project_reals(&matrix, &[t], &FmLimits::default()).expect("projectable");
        // The projection must be implied by c + 1 ≤ d and imply it: check a
        // few ground points on both sides.
        for (c, d, expect) in [(0, 1, true), (2, 3, true), (3, 3, false), (5, 2, false)] {
            let env =
                rel_index::IdxEnv::from_pairs([("c", Extended::from(c)), ("d", Extended::from(d))]);
            assert_eq!(
                projected.eval_bounded(&env, 8),
                expect,
                "projection wrong at c={c}, d={d}: {projected}"
            );
        }
    }

    #[test]
    fn projection_refuses_nonlinear_occurrences() {
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::half_ceil(Idx::var("t")), Idx::var("n"));
        assert!(project_reals(&matrix, &[t], &FmLimits::default()).is_none());
    }

    #[test]
    fn infeasible_matrices_project_to_bot() {
        let t = IdxVar::new("t");
        let matrix = Constr::leq(Idx::var("t") + Idx::one(), Idx::var("t"));
        assert_eq!(
            project_reals(&matrix, &[t], &FmLimits::default()),
            Some(Constr::Bot)
        );
    }
}
