//! Existential-variable elimination by candidate substitution.
//!
//! Constraints produced by the bidirectional rules contain existentially
//! quantified variables: sizes of list tails (`alg-r-consC-↓`) and costs of
//! checked arguments (`alg-r-app-↑`).  Off-the-shelf SMT solvers handle such
//! variables poorly, so the paper's implementation runs a pre-processing pass
//! that *guesses* substitutions for them: for an existential variable `v`, any
//! constraint of the form `v = I`, `v ≤ I` or `I ≤ v` syntactically present in
//! the formula makes `I` a candidate.  Candidates are tried lazily — generate
//! one, substitute, ask the solver; on failure move on to the next — exactly
//! as described in §6.
//!
//! **The indexed search.**  The seed implementation scanned the whole matrix
//! once per variable to collect candidates, then enumerated the *cross
//! product* of every variable's candidate list, re-checking the whole matrix
//! per assignment.  For the divide-and-conquer benchmarks (`merge`, `msort`)
//! that product is what dominated checking.  The search now works off a
//! [`MatrixIndex`] built in one pass: the matrix's top-level conjuncts, each
//! with its (sorted) existential-variable footprint, candidates collected per
//! conjunct.  Because `∃x⃗.(A ∧ B) ⟺ (∃x⃗₁.A) ∧ (∃x⃗₂.B)` when `A` and `B`
//! mention disjoint variable sets, the conjuncts partition into **connected
//! components** solved independently — the cross product of candidate lists
//! collapses into a sum of small per-component searches, each checking only
//! its own conjuncts.  Within a component, **memoized rejection** skips any
//! assignment whose instantiated goal was already refuted under an earlier
//! assignment (distinct candidate tuples frequently resolve to the same
//! instantiation), counted as `exelim_candidates_pruned`.  All-ℝ components
//! that candidate search cannot close fall back to the exact Fourier–Motzkin
//! projection per component (previously only attempted for the whole
//! matrix).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use rel_index::{Idx, IdxVar, Sort};

use crate::constr::{Constr, Quantified};
use crate::cpool;
use crate::fm;
use crate::solver::{Provenance, SearchExhaustedReason, Solver, Validity};

/// Statistics from one elimination run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExElimStats {
    /// Number of existential variables eliminated.
    pub variables: usize,
    /// Number of complete candidate assignments tried.
    pub attempts: usize,
    /// When the search gave up: which cap ended it, with the configured
    /// limit value (`None` on success, and also when the candidate pool
    /// simply ran dry without any cap firing).
    pub exhausted: Option<(SearchExhaustedReason, u64)>,
}

/// Result of eliminating the existentials of one goal.
#[derive(Debug, Clone)]
pub struct ExElimOutcome {
    /// `Some(Valid)` when a candidate assignment made the goal provable,
    /// `Some(Invalid)`/`Some(Unknown)` never (failed candidates simply move
    /// on), `None` when no assignment worked.
    pub validity: Option<Validity>,
    /// The substitution that worked, if any.
    pub witness: Option<BTreeMap<IdxVar, Idx>>,
    /// Statistics.
    pub stats: ExElimStats,
}

/// Strips existential quantifiers from a constraint, returning the matrix and
/// the list of stripped variables (prefix order).
fn strip_existentials(c: &Constr) -> (Constr, Vec<Quantified>) {
    match c {
        Constr::Exists(q, body) => {
            let (inner, mut vars) = strip_existentials(body);
            vars.insert(0, q.clone());
            (inner, vars)
        }
        Constr::And(cs) => {
            let mut vars = Vec::new();
            let mut parts = Vec::new();
            for c in cs {
                let (inner, vs) = strip_existentials(c);
                vars.extend(vs);
                parts.push(inner);
            }
            (Constr::conj(parts), vars)
        }
        Constr::Implies(a, b) => {
            // Existentials under the conclusion of an implication can be
            // hoisted (the antecedent never binds them); existentials in the
            // antecedent are left untouched (they are really universals).
            let (inner, vars) = strip_existentials(b);
            (Constr::Implies(a.clone(), Box::new(inner)), vars)
        }
        Constr::Forall(q, body) => {
            let (inner, vars) = strip_existentials(body);
            (Constr::Forall(q.clone(), Box::new(inner)), vars)
        }
        other => (other.clone(), Vec::new()),
    }
}

/// Collects candidate substitutions for `v` from atomic comparisons in the
/// formula: `v = I`, `v ≤ I` and `I ≤ v` each contribute `I` (paper §6,
/// "Constraint solving").  The variable may occur *linearly inside* the
/// comparison (the consC rule produces `n ≐ i + 1` for existential `i`), in
/// which case the comparison is solved for `v`.  Candidates mentioning `v`
/// itself are skipped.
fn candidates_for(v: &IdxVar, c: &Constr, acc: &mut Vec<Idx>) {
    match c {
        Constr::Eq(a, b) | Constr::Leq(a, b) | Constr::Lt(a, b) => {
            if let Some(solution) = solve_linear_for(v, a, b) {
                push_unique(acc, solution);
            }
        }
        Constr::And(cs) | Constr::Or(cs) => {
            for c in cs {
                candidates_for(v, c, acc);
            }
        }
        Constr::Not(c) => candidates_for(v, c, acc),
        Constr::Implies(a, b) => {
            candidates_for(v, a, acc);
            candidates_for(v, b, acc);
        }
        Constr::Forall(_, c) | Constr::Exists(_, c) => candidates_for(v, c, acc),
        Constr::Top | Constr::Bot => {}
    }
}

fn push_unique(acc: &mut Vec<Idx>, idx: Idx) {
    let idx = rel_index::normalize(&idx);
    if !acc.contains(&idx) {
        acc.push(idx);
    }
}

/// Solves the comparison `a ⋈ b` for `v` when `v` occurs linearly (as the
/// plain atom `v`) on exactly one "side" of the linear normal form of
/// `a − b`: returns the boundary value of `v`, i.e. the term `I` such that the
/// comparison instantiated with `v := I` makes the two sides equal.
fn solve_linear_for(v: &IdxVar, a: &Idx, b: &Idx) -> Option<Idx> {
    use rel_index::{Atom, LinExpr};
    let diff = LinExpr::of_idx(a).sub(&LinExpr::of_idx(b));
    let v_atom = Atom(Idx::Var(v.clone()));
    let coeff = *diff.coeffs.get(&v_atom)?;
    if coeff.is_zero() {
        return None;
    }
    // The variable must not be buried inside any other (non-linear) atom.
    if diff
        .coeffs
        .keys()
        .any(|atom| *atom != v_atom && atom.0.mentions(v))
    {
        return None;
    }
    // diff = coeff·v + rest = 0  ⟹  v = −rest / coeff.
    let mut rest = diff.clone();
    rest.coeffs.remove(&v_atom);
    let solution = rest
        .scale(rel_index::Rational::from_int(-1) / coeff)
        .to_idx();
    if solution.mentions(v) {
        None
    } else {
        Some(solution)
    }
}

/// The matrix, indexed: top-level conjuncts with their existential-variable
/// footprints, and per-variable candidate lists collected in one pass.
struct MatrixIndex {
    /// Top-level conjuncts of the matrix (flattened `And` spine).
    conjuncts: Vec<Constr>,
    /// Indices of the conjuncts that mention each existential variable
    /// (position-aligned with the `ex_vars` list handed to `build`).
    var_conjuncts: Vec<Vec<usize>>,
    /// Candidate substitutions per variable, sorted small-first (same
    /// position alignment).
    candidates: Vec<Vec<Idx>>,
}

impl MatrixIndex {
    /// One pass over the matrix: flatten the conjunctive spine, compute each
    /// conjunct's existential footprint from its free variables, and collect
    /// candidates conjunct by conjunct (the seed re-scanned the *whole*
    /// matrix once per variable — quadratic in practice, since every
    /// divide-and-conquer obligation has dozens of conjuncts and a dozen
    /// existentials).
    fn build(matrix: &Constr, hyp: &Constr, ex_vars: &[Quantified]) -> MatrixIndex {
        let mut conjuncts = Vec::new();
        flatten_conjuncts(matrix, &mut conjuncts);
        let positions: BTreeMap<&IdxVar, usize> = ex_vars
            .iter()
            .enumerate()
            .map(|(i, q)| (&q.var, i))
            .collect();
        let mut var_conjuncts: Vec<Vec<usize>> = vec![Vec::new(); ex_vars.len()];
        let mut candidates: Vec<Vec<Idx>> = vec![Vec::new(); ex_vars.len()];
        for (ci, conjunct) in conjuncts.iter().enumerate() {
            let fv = conjunct.free_vars();
            for v in &fv {
                if let Some(&vi) = positions.get(v) {
                    var_conjuncts[vi].push(ci);
                    candidates_for(v, conjunct, &mut candidates[vi]);
                }
            }
        }
        // Hypothesis candidates (the bidirectional rules never leak
        // existentials into the context, but direct callers can) and the
        // zero default — a frequent witness for cost variables (synchronous
        // executions).
        let hyp_fv = hyp.free_vars();
        for (vi, q) in ex_vars.iter().enumerate() {
            if hyp_fv.contains(&q.var) {
                candidates_for(&q.var, hyp, &mut candidates[vi]);
            }
            push_unique(&mut candidates[vi], Idx::zero());
            // Prefer syntactically small candidates (ground constants
            // resolve most size variables immediately; the lazy search then
            // rarely needs to move past the first assignment).
            candidates[vi].sort_by_key(Idx::size);
        }
        MatrixIndex {
            conjuncts,
            var_conjuncts,
            candidates,
        }
    }

    /// Partitions the variables into connected components (two variables
    /// connect when some conjunct mentions both), returning per component
    /// the variable positions and the union of their conjunct indices.
    /// Conjuncts mentioning no existential variable are the residual,
    /// returned separately.
    #[allow(clippy::type_complexity)]
    fn components(&self, ex_vars: &[Quantified]) -> (Vec<(Vec<usize>, Vec<usize>)>, Vec<usize>) {
        // Union-find over variable positions.
        let mut parent: Vec<usize> = (0..ex_vars.len()).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let mut conjunct_vars: Vec<Vec<usize>> = vec![Vec::new(); self.conjuncts.len()];
        for (vi, cis) in self.var_conjuncts.iter().enumerate() {
            for &ci in cis {
                conjunct_vars[ci].push(vi);
            }
        }
        for vars in &conjunct_vars {
            for w in vars.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        // Group variable positions and conjuncts by root, preserving order.
        let mut order: Vec<usize> = Vec::new();
        let mut groups: BTreeMap<usize, (Vec<usize>, BTreeSet<usize>)> = BTreeMap::new();
        for vi in 0..ex_vars.len() {
            let root = find(&mut parent, vi);
            let entry = groups.entry(root).or_insert_with(|| {
                order.push(root);
                (Vec::new(), BTreeSet::new())
            });
            entry.0.push(vi);
            entry.1.extend(self.var_conjuncts[vi].iter().copied());
        }
        let components = order
            .into_iter()
            .map(|root| {
                let (vars, conjuncts) = groups.remove(&root).expect("grouped above");
                (vars, conjuncts.into_iter().collect())
            })
            .collect();
        let residual = conjunct_vars
            .iter()
            .enumerate()
            .filter(|(_, vars)| vars.is_empty())
            .map(|(ci, _)| ci)
            .collect();
        (components, residual)
    }
}

/// Flattens the conjunctive spine of a constraint (dropping `Top` units,
/// exactly like the solver's hypothesis flattening).
fn flatten_conjuncts(c: &Constr, out: &mut Vec<Constr>) {
    match c {
        Constr::Top => {}
        Constr::And(cs) => {
            for c in cs {
                flatten_conjuncts(c, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Eliminates the existentials of `goal` by lazily trying candidate
/// substitutions and asking `solver` to validate each resulting
/// existential-free constraint.  The search runs per connected component of
/// the matrix's conjunct/variable graph (see the module docs); the attempt
/// budget (`max_exelim_attempts`) is shared across components.
pub fn eliminate_existentials(
    solver: &mut Solver,
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    goal: &Constr,
) -> ExElimOutcome {
    let (matrix, ex_vars) = strip_existentials(goal);
    let _span = rel_obs::span_with("exelim.eliminate", ex_vars.len() as u64);
    let mut stats = ExElimStats {
        variables: ex_vars.len(),
        attempts: 0,
        exhausted: None,
    };
    if ex_vars.is_empty() {
        let v = solver.entails_no_exists(universals, hyp, &matrix);
        return ExElimOutcome {
            validity: Some(v),
            witness: Some(BTreeMap::new()),
            stats,
        };
    }

    let index = MatrixIndex::build(&matrix, hyp, &ex_vars);
    let (components, residual) = index.components(&ex_vars);

    // The existential-free conjuncts must hold regardless of any witness;
    // check them once instead of re-checking them under every assignment.
    let mut provenance = Provenance::Proved;
    if !residual.is_empty() {
        let residual_goal = Constr::conj(residual.iter().map(|&ci| index.conjuncts[ci].clone()));
        match solver.entails_no_exists(universals, hyp, &residual_goal) {
            Validity::Valid(p) => provenance = provenance.and(p),
            _ => {
                // No assignment can rescue an invalid residual: the seed
                // search would have exhausted its budget against it.
                return ExElimOutcome {
                    validity: None,
                    witness: None,
                    stats,
                };
            }
        }
    }

    let max_attempts = solver.config().max_exelim_attempts;
    let mut combined_witness: Option<BTreeMap<IdxVar, Idx>> = Some(BTreeMap::new());
    for (var_positions, conjunct_indices) in components {
        let comp_goal = Constr::conj(
            conjunct_indices
                .iter()
                .map(|&ci| index.conjuncts[ci].clone()),
        );
        let comp_candidates: Vec<(&Quantified, &[Idx])> = var_positions
            .iter()
            .map(|&vi| (&ex_vars[vi], index.candidates[vi].as_slice()))
            .collect();
        let _comp_span = rel_obs::span_with("exelim.component", var_positions.len() as u64);
        match search_component(
            solver,
            universals,
            hyp,
            &comp_goal,
            &comp_candidates,
            &ex_vars,
            &mut stats,
            max_attempts,
        ) {
            Some((witness, Validity::Valid(p))) => {
                provenance = provenance.and(p);
                if let Some(map) = combined_witness.as_mut() {
                    map.extend(witness);
                }
            }
            Some((_, _)) => unreachable!("search_component only returns Valid"),
            None => {
                // Candidate substitution is out of ideas for this component.
                // Real-sorted (cost) existentials have one more complete
                // move: Fourier–Motzkin projection is *exact* for ∃ over the
                // non-negative reals, so the projected, ∃-free component can
                // be handed back to the solver pipeline.
                let comp_vars: Vec<&Quantified> =
                    var_positions.iter().map(|&vi| &ex_vars[vi]).collect();
                match fm_projection(solver, universals, hyp, &comp_goal, &comp_vars, &mut stats) {
                    Some(Validity::Valid(p)) => {
                        provenance = provenance.and(p);
                        // A projected component has no syntactic witness.
                        combined_witness = None;
                    }
                    _ => {
                        return ExElimOutcome {
                            validity: None,
                            witness: None,
                            stats,
                        }
                    }
                }
            }
        }
    }

    ExElimOutcome {
        // The provenance of the instantiated checks carries over: witnesses
        // validated symbolically are a *proof*.
        validity: Some(Validity::Valid(provenance)),
        witness: combined_witness,
        stats,
    }
}

/// Lazily searches one component's candidate cross product.  Returns the
/// resolved substitution and its (valid) verdict, or `None` when the budget
/// is exhausted or no assignment works.
#[allow(clippy::too_many_arguments)]
fn search_component(
    solver: &mut Solver,
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    comp_goal: &Constr,
    candidates: &[(&Quantified, &[Idx])],
    all_ex_vars: &[Quantified],
    stats: &mut ExElimStats,
    max_attempts: usize,
) -> Option<(BTreeMap<IdxVar, Idx>, Validity)> {
    let mut assignment: Vec<usize> = vec![0; candidates.len()];
    // Memoized rejection: instantiated goals already refuted under an
    // earlier assignment (distinct candidate tuples routinely resolve to
    // the same instantiation once mutual references are substituted out).
    let mut rejected: HashMap<u64, Vec<Constr>> = HashMap::new();
    // Unresolvable candidates and memo-pruned repeats do not spend the
    // attempt budget (screen rejections do: a screened candidate was a
    // genuine try, just a cheap one) — but budget-free assignments must
    // not let the odometer walk an astronomically large cross product
    // either, so exploration itself is capped at a multiple of the budget.
    let max_explored = max_attempts.saturating_mul(64);
    let mut explored = 0usize;
    let screen_bound = solver.config().inner_quantifier_bound;
    let mut screen_env = rel_index::IdxEnv::new();
    loop {
        explored += 1;
        if stats.attempts >= max_attempts || explored > max_explored {
            let (reason, limit) = if stats.attempts >= max_attempts {
                (SearchExhaustedReason::AttemptBudget, max_attempts as u64)
            } else {
                (SearchExhaustedReason::ComponentBlowup, max_explored as u64)
            };
            stats.exhausted = stats.exhausted.or(Some((reason, limit)));
            rel_obs::event_with(reason.event_name(), limit);
            return None;
        }
        // Build the substitution for the current assignment, resolving
        // candidates that mention other existential variables by iterating
        // substitution until a fixed point (or giving up on that
        // assignment).
        let mut subst: BTreeMap<IdxVar, Idx> = BTreeMap::new();
        for (i, (q, cands)) in candidates.iter().enumerate() {
            subst.insert(q.var.clone(), cands[assignment[i]].clone());
        }
        if let Some(resolved) = resolve_mutual(&subst, all_ex_vars) {
            // One shared-subtree traversal for the whole assignment —
            // `resolve_mutual` guarantees the replacements mention no
            // existential variables, which is exactly `subst_all`'s
            // precondition.  Routed through the hash-consed pool, so only
            // the subtrees that actually mention a substituted variable are
            // rebuilt.
            let instantiated = cpool::subst_all_cached(comp_goal, &resolved);
            let hash = constr_hash(&instantiated);
            let seen = rejected
                .get(&hash)
                .is_some_and(|bucket| bucket.contains(&instantiated));
            if seen {
                solver.note_exelim_pruned();
            } else {
                stats.attempts += 1;
                solver.note_exelim_attempt();
                if screen_rejects(
                    universals,
                    hyp,
                    &instantiated,
                    screen_bound,
                    &mut screen_env,
                ) {
                    // A concrete on-grid counterexample: the full pipeline
                    // could only have said `Invalid` here, at far greater
                    // cost.  Memoize the rejection like any other.
                    solver.note_exelim_pruned();
                    rejected.entry(hash).or_default().push(instantiated);
                } else {
                    let verdict = solver.entails_no_exists(universals, hyp, &instantiated);
                    if verdict.is_valid() {
                        return Some((resolved, verdict));
                    }
                    rejected.entry(hash).or_default().push(instantiated);
                }
            }
        }

        // Advance the candidate odometer.
        let mut i = 0;
        loop {
            if i == assignment.len() {
                // The candidate pool ran dry without hitting any cap: not a
                // budget failure, so no `SearchExhaustedReason` — but the
                // trace still records that the search ended empty-handed.
                rel_obs::event_with("exelim.exhausted.candidates", stats.attempts as u64);
                return None;
            }
            assignment[i] += 1;
            if assignment[i] < candidates[i].1.len() {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

fn constr_hash(c: &Constr) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    c.hash(&mut h);
    h.finish()
}

/// Diagonal probe values for the candidate screen.  Every value is below
/// the solver's minimum per-variable grid size (`per_var_grid` never drops
/// under 3), which is what makes a screen rejection *verdict-preserving*:
/// the falsifying point lies on the exhaustive grid the full numeric layer
/// would sweep anyway, so the full pipeline could only have reported
/// `Invalid` too — never `Valid` (the symbolic layers are sound) and never
/// a different boolean.
const SCREEN_DIAGONAL: [u64; 3] = [0, 1, 2];

/// Cheap rejection screen for one instantiated candidate: evaluates
/// `hyp ⟹ goal` at a handful of small grid points and returns `true` when
/// one falsifies it.  Most candidate assignments are wrong, and refuting a
/// wrong one through the full pipeline is expensive in exactly the case the
/// symbolic path is supposed to win (prepared facts, lemma saturation and a
/// Fourier–Motzkin run spent on a goal a single evaluation kills).  The
/// screen rejects those candidates at tree-evaluation cost; candidates that
/// survive go through the full solver unchanged.
fn screen_rejects(
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    goal: &Constr,
    bound: u64,
    env: &mut rel_index::IdxEnv,
) -> bool {
    use rel_index::Extended;
    for k in SCREEN_DIAGONAL {
        for (v, _) in universals {
            env.bind(v.clone(), Extended::from(k));
        }
        if hyp.eval_bounded(env, bound) && !goal.eval_bounded(env, bound) {
            return true;
        }
    }
    false
}

/// Replaces `∃ v₁…vₖ :: ℝ. component` by its FM projection and re-checks;
/// only a `Valid` outcome is forwarded (anything else falls back to the
/// caller's bounded numeric search).  ℕ-sorted existentials are left alone:
/// rational projection over-approximates integer satisfiability, and proving
/// an over-approximated goal would be unsound.
fn fm_projection(
    solver: &mut Solver,
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    matrix: &Constr,
    ex_vars: &[&Quantified],
    stats: &mut ExElimStats,
) -> Option<Validity> {
    if !solver.config().use_fm || ex_vars.is_empty() {
        return None;
    }
    if ex_vars.iter().any(|q| q.sort != Sort::Real) {
        return None;
    }
    // The projection treats the existentials as goal-local; a hypothesis
    // mentioning one (never produced by the bidirectional rules) would
    // change its meaning.
    if ex_vars.iter().any(|q| hyp.mentions(&q.var)) {
        return None;
    }
    let vars: Vec<IdxVar> = ex_vars.iter().map(|q| q.var.clone()).collect();
    let limits = solver.fm_limits().clone();
    let mut abort = None;
    let projected = match fm::project_reals_with(matrix, &vars, &limits, &mut abort) {
        Some(p) => p,
        None => {
            // A capped projection is the search's last complete move dying
            // to a limit, not to a missing candidate: record which one.
            if let Some((reason, limit)) = abort {
                stats.exhausted = stats.exhausted.or(Some((reason, limit)));
                rel_obs::event_with(reason.event_name(), limit);
            }
            return None;
        }
    };
    let verdict = solver.entails_no_exists(universals, hyp, &projected);
    if verdict.is_valid() {
        solver.note_fm_projection();
        Some(verdict)
    } else {
        None
    }
}

/// Resolves candidates that mention other existential variables by repeated
/// substitution; returns `None` if a cyclic dependency prevents resolution.
fn resolve_mutual(
    subst: &BTreeMap<IdxVar, Idx>,
    ex_vars: &[Quantified],
) -> Option<BTreeMap<IdxVar, Idx>> {
    let ex_names: Vec<&IdxVar> = ex_vars.iter().map(|q| &q.var).collect();
    let mut out = subst.clone();
    for _ in 0..=ex_vars.len() {
        let mut changed = false;
        let snapshot = out.clone();
        for (_v, idx) in out.iter_mut() {
            for w in &ex_names {
                if idx.mentions(w) {
                    let replacement = snapshot.get(*w)?.clone();
                    if replacement.mentions(w) {
                        // Self-referential candidate: unusable.
                        return None;
                    }
                    *idx = idx.subst(w, &replacement);
                    changed = true;
                }
            }
        }
        if !changed {
            // Verify no existential variable remains anywhere.
            if out
                .values()
                .all(|i| ex_names.iter().all(|w| !i.mentions(w)))
            {
                return Some(out);
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveConfig;

    fn nat_universals(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    #[test]
    fn strip_collects_nested_existentials() {
        let c = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n")).and(Constr::exists(
                "b",
                Sort::Nat,
                Constr::leq(Idx::var("b"), Idx::var("i")),
            )),
        );
        let (matrix, vars) = strip_existentials(&c);
        assert_eq!(vars.len(), 2);
        assert!(matrix.existential_vars().is_empty());
    }

    #[test]
    fn equality_candidates_are_found_and_used() {
        let mut s = Solver::new();
        let u = nat_universals(&["n", "alpha"]);
        // The archetypal consC constraint: ∃ i, β. n = i + 1 ∧ α = β + 1 ∧ i ≤ n ∧ β ≤ α
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::exists(
                "beta",
                Sort::Nat,
                Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one())
                    .and(Constr::eq(Idx::var("alpha"), Idx::var("beta") + Idx::one()))
                    .and(Constr::leq(Idx::var("i"), Idx::var("n")))
                    .and(Constr::leq(Idx::var("beta"), Idx::var("alpha"))),
            ),
        );
        let hyp =
            Constr::leq(Idx::one(), Idx::var("n")).and(Constr::leq(Idx::one(), Idx::var("alpha")));
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        let w = out.witness.unwrap();
        assert_eq!(
            rel_index::LinExpr::of_idx(&w[&IdxVar::new("i")]),
            rel_index::LinExpr::of_idx(&(Idx::var("n") - Idx::one()))
        );
    }

    #[test]
    fn upper_bound_candidates_work_for_cost_variables() {
        let mut s = Solver::new();
        let u = nat_universals(&["t"]);
        // ∃ t2. t2 ≤ t ∧ 0 ≤ t2  — witness t2 := 0 (default candidate) or t.
        let goal = Constr::exists(
            "t2",
            Sort::Real,
            Constr::leq(Idx::var("t2"), Idx::var("t"))
                .and(Constr::leq(Idx::zero(), Idx::var("t2"))),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
    }

    #[test]
    fn lower_bound_candidates_work_for_inferred_costs() {
        let mut s = Solver::new();
        let u = nat_universals(&["c", "t"]);
        // ∃ t2. c ≤ t2 ∧ t2 + 1 ≤ t, given c + 1 ≤ t.  Witness t2 := c.
        let hyp = Constr::leq(Idx::var("c") + Idx::one(), Idx::var("t"));
        let goal = Constr::exists(
            "t2",
            Sort::Real,
            Constr::leq(Idx::var("c"), Idx::var("t2"))
                .and(Constr::leq(Idx::var("t2") + Idx::one(), Idx::var("t"))),
        );
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        assert_eq!(out.witness.unwrap()[&IdxVar::new("t2")], Idx::var("c"));
    }

    #[test]
    fn chained_candidates_resolve_mutually() {
        let mut s = Solver::new();
        let u = nat_universals(&["n"]);
        // ∃ a b. a = b + 1 ∧ b = n ∧ a ≤ n + 1
        let goal = Constr::exists(
            "a",
            Sort::Nat,
            Constr::exists(
                "b",
                Sort::Nat,
                Constr::eq(Idx::var("a"), Idx::var("b") + Idx::one())
                    .and(Constr::eq(Idx::var("b"), Idx::var("n")))
                    .and(Constr::leq(Idx::var("a"), Idx::var("n") + Idx::one())),
            ),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
    }

    #[test]
    fn unsatisfiable_existentials_report_no_witness() {
        let mut s = Solver::with_config(SolveConfig {
            max_exelim_attempts: 32,
            ..SolveConfig::default()
        });
        let u = nat_universals(&["n"]);
        // ∃ i. i = n ∧ i = n + 1  — no candidate can satisfy both.
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n"))
                .and(Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(out.validity.is_none());
        assert!(out.stats.attempts >= 2);
        // The pool ran dry without hitting a cap: no reason is reported.
        assert_eq!(out.stats.exhausted, None);
    }

    #[test]
    fn attempt_budget_exhaustion_is_tagged_with_its_cap() {
        let mut s = Solver::with_config(SolveConfig {
            max_exelim_attempts: 0,
            ..SolveConfig::default()
        });
        let u = nat_universals(&["n"]);
        // Solvable (i := n), but the zero budget exhausts the component
        // search before the first candidate is tried.
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n")).and(Constr::leq(Idx::var("i"), Idx::var("n"))),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(out.validity.is_none());
        assert_eq!(
            out.stats.exhausted,
            Some((SearchExhaustedReason::AttemptBudget, 0))
        );
    }

    #[test]
    fn independent_components_are_searched_separately() {
        // Two disjoint existential groups: the joint search would enumerate
        // the cross product of their candidate lists; the component search
        // adds them.
        let mut s = Solver::new();
        let u = nat_universals(&["n", "m"]);
        let hyp =
            Constr::leq(Idx::one(), Idx::var("n")).and(Constr::leq(Idx::nat(2), Idx::var("m")));
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::exists(
                "b",
                Sort::Nat,
                Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one())
                    .and(Constr::eq(Idx::var("m"), Idx::var("b") + Idx::nat(2))),
            ),
        );
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        let w = out.witness.unwrap();
        assert_eq!(w.len(), 2);
        // Sum, not product: each component resolves within its own list.
        assert!(out.stats.attempts <= 4, "attempts: {}", out.stats.attempts);
    }

    #[test]
    fn screen_rejects_doomed_candidates_without_solver_calls() {
        // Every candidate for `i` instantiates the goal to something false
        // at a small grid point (i = n forces n + 1 <= n), so the screen
        // rejects them at evaluation cost and the pruned counter records it.
        let mut s = Solver::new();
        let u = nat_universals(&["n"]);
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n"))
                .and(Constr::leq(Idx::var("i") + Idx::one(), Idx::var("n"))),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(out.validity.is_none(), "no candidate can work");
        assert!(
            s.stats().exelim_candidates_pruned >= 1,
            "screen rejections must be counted: {:?}",
            s.stats()
        );
    }

    #[test]
    fn real_component_projects_even_next_to_a_nat_component() {
        // A ℕ component (solved by candidate substitution) alongside an
        // all-ℝ component that only Fourier–Motzkin projection can close:
        // the seed's whole-matrix fallback required *every* existential to
        // be real-sorted, so this goal used to fall through to the bounded
        // numeric search.
        let mut s = Solver::new();
        let u = vec![
            (IdxVar::new("n"), Sort::Nat),
            (IdxVar::new("c"), Sort::Real),
            (IdxVar::new("d"), Sort::Real),
        ];
        let hyp = Constr::leq(Idx::one(), Idx::var("n"))
            .and(Constr::lt(Idx::var("c") + Idx::one(), Idx::var("d")));
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::exists(
                "t",
                Sort::Real,
                Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one())
                    .and(Constr::lt(Idx::var("c"), Idx::var("t")))
                    .and(Constr::lt(Idx::var("t"), Idx::var("d"))),
            ),
        );
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        assert!(s.stats().fm_projections >= 1);
        assert_eq!(s.stats().points_evaluated, 0);
        // The projected component has no syntactic witness, so none is
        // reported for the combined goal.
        assert!(out.witness.is_none());
    }

    #[test]
    fn solver_entry_point_integrates_elimination() {
        let mut s = Solver::new();
        let u = nat_universals(&["n"]);
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one()),
        );
        // Valid only when n ≥ 1.
        let hyp = Constr::leq(Idx::one(), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }
}
