//! Existential-variable elimination by candidate substitution.
//!
//! Constraints produced by the bidirectional rules contain existentially
//! quantified variables: sizes of list tails (`alg-r-consC-↓`) and costs of
//! checked arguments (`alg-r-app-↑`).  Off-the-shelf SMT solvers handle such
//! variables poorly, so the paper's implementation runs a pre-processing pass
//! that *guesses* substitutions for them: for an existential variable `v`, any
//! constraint of the form `v = I`, `v ≤ I` or `I ≤ v` syntactically present in
//! the formula makes `I` a candidate.  Candidates are tried lazily — generate
//! one, substitute, ask the solver; on failure move on to the next — exactly
//! as described in §6.

use std::collections::BTreeMap;

use rel_index::{Idx, IdxVar, Sort};

use crate::constr::{Constr, Quantified};
use crate::fm;
use crate::solver::{Solver, Validity};

/// Statistics from one elimination run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExElimStats {
    /// Number of existential variables eliminated.
    pub variables: usize,
    /// Number of complete candidate assignments tried.
    pub attempts: usize,
}

/// Result of eliminating the existentials of one goal.
#[derive(Debug, Clone)]
pub struct ExElimOutcome {
    /// `Some(Valid)` when a candidate assignment made the goal provable,
    /// `Some(Invalid)`/`Some(Unknown)` never (failed candidates simply move
    /// on), `None` when no assignment worked.
    pub validity: Option<Validity>,
    /// The substitution that worked, if any.
    pub witness: Option<BTreeMap<IdxVar, Idx>>,
    /// Statistics.
    pub stats: ExElimStats,
}

/// Strips existential quantifiers from a constraint, returning the matrix and
/// the list of stripped variables (prefix order).
fn strip_existentials(c: &Constr) -> (Constr, Vec<Quantified>) {
    match c {
        Constr::Exists(q, body) => {
            let (inner, mut vars) = strip_existentials(body);
            vars.insert(0, q.clone());
            (inner, vars)
        }
        Constr::And(cs) => {
            let mut vars = Vec::new();
            let mut parts = Vec::new();
            for c in cs {
                let (inner, vs) = strip_existentials(c);
                vars.extend(vs);
                parts.push(inner);
            }
            (Constr::conj(parts), vars)
        }
        Constr::Implies(a, b) => {
            // Existentials under the conclusion of an implication can be
            // hoisted (the antecedent never binds them); existentials in the
            // antecedent are left untouched (they are really universals).
            let (inner, vars) = strip_existentials(b);
            (Constr::Implies(a.clone(), Box::new(inner)), vars)
        }
        Constr::Forall(q, body) => {
            let (inner, vars) = strip_existentials(body);
            (Constr::Forall(q.clone(), Box::new(inner)), vars)
        }
        other => (other.clone(), Vec::new()),
    }
}

/// Collects candidate substitutions for `v` from atomic comparisons in the
/// formula: `v = I`, `v ≤ I` and `I ≤ v` each contribute `I` (paper §6,
/// "Constraint solving").  The variable may occur *linearly inside* the
/// comparison (the consC rule produces `n ≐ i + 1` for existential `i`), in
/// which case the comparison is solved for `v`.  Candidates mentioning `v`
/// itself are skipped.
fn candidates_for(v: &IdxVar, c: &Constr, acc: &mut Vec<Idx>) {
    match c {
        Constr::Eq(a, b) | Constr::Leq(a, b) | Constr::Lt(a, b) => {
            if let Some(solution) = solve_linear_for(v, a, b) {
                push_unique(acc, solution);
            }
        }
        Constr::And(cs) | Constr::Or(cs) => {
            for c in cs {
                candidates_for(v, c, acc);
            }
        }
        Constr::Not(c) => candidates_for(v, c, acc),
        Constr::Implies(a, b) => {
            candidates_for(v, a, acc);
            candidates_for(v, b, acc);
        }
        Constr::Forall(_, c) | Constr::Exists(_, c) => candidates_for(v, c, acc),
        Constr::Top | Constr::Bot => {}
    }
}

fn push_unique(acc: &mut Vec<Idx>, idx: Idx) {
    let idx = rel_index::normalize(&idx);
    if !acc.contains(&idx) {
        acc.push(idx);
    }
}

/// Solves the comparison `a ⋈ b` for `v` when `v` occurs linearly (as the
/// plain atom `v`) on exactly one "side" of the linear normal form of
/// `a − b`: returns the boundary value of `v`, i.e. the term `I` such that the
/// comparison instantiated with `v := I` makes the two sides equal.
fn solve_linear_for(v: &IdxVar, a: &Idx, b: &Idx) -> Option<Idx> {
    use rel_index::{Atom, LinExpr};
    let diff = LinExpr::of_idx(a).sub(&LinExpr::of_idx(b));
    let v_atom = Atom(Idx::Var(v.clone()));
    let coeff = *diff.coeffs.get(&v_atom)?;
    if coeff.is_zero() {
        return None;
    }
    // The variable must not be buried inside any other (non-linear) atom.
    if diff
        .coeffs
        .keys()
        .any(|atom| *atom != v_atom && atom.0.mentions(v))
    {
        return None;
    }
    // diff = coeff·v + rest = 0  ⟹  v = −rest / coeff.
    let mut rest = diff.clone();
    rest.coeffs.remove(&v_atom);
    let solution = rest
        .scale(rel_index::Rational::from_int(-1) / coeff)
        .to_idx();
    if solution.mentions(v) {
        None
    } else {
        Some(solution)
    }
}

/// Eliminates the existentials of `goal` by lazily trying candidate
/// substitutions and asking `solver` to validate each resulting
/// existential-free constraint.
pub fn eliminate_existentials(
    solver: &mut Solver,
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    goal: &Constr,
) -> ExElimOutcome {
    let (matrix, ex_vars) = strip_existentials(goal);
    let mut stats = ExElimStats {
        variables: ex_vars.len(),
        attempts: 0,
    };
    if ex_vars.is_empty() {
        let v = solver.entails_no_exists(universals, hyp, &matrix);
        return ExElimOutcome {
            validity: Some(v),
            witness: Some(BTreeMap::new()),
            stats,
        };
    }

    // Gather candidates per variable: from the matrix first, then defaults.
    let mut all_candidates: Vec<(Quantified, Vec<Idx>)> = Vec::new();
    for q in &ex_vars {
        let mut cands = Vec::new();
        candidates_for(&q.var, &matrix, &mut cands);
        candidates_for(&q.var, hyp, &mut cands);
        // Defaults: zero is a frequent witness for cost variables (synchronous
        // executions).
        push_unique(&mut cands, Idx::zero());
        // Prefer syntactically small candidates (ground constants resolve
        // most size variables immediately; the lazy search then rarely needs
        // to move past the first assignment).
        cands.sort_by_key(Idx::size);
        all_candidates.push((q.clone(), cands));
    }

    let max_attempts = solver.config().max_exelim_attempts;
    let mut assignment: Vec<usize> = vec![0; all_candidates.len()];

    'search: loop {
        if stats.attempts >= max_attempts {
            break 'search;
        }
        // Build the substitution for the current assignment, resolving
        // candidates that mention other existential variables by iterating
        // substitution until a fixed point (or giving up on that assignment).
        let mut subst: BTreeMap<IdxVar, Idx> = BTreeMap::new();
        for (i, (q, cands)) in all_candidates.iter().enumerate() {
            subst.insert(q.var.clone(), cands[assignment[i]].clone());
        }
        let resolved = resolve_mutual(&subst, &ex_vars);

        if let Some(resolved) = resolved {
            stats.attempts += 1;
            solver.note_exelim_attempt();
            // One traversal for the whole assignment — `resolve_mutual`
            // guarantees the replacements mention no existential variables,
            // which is exactly `subst_all`'s precondition.
            let instantiated = matrix.subst_all(&resolved);
            let verdict = solver.entails_no_exists(universals, hyp, &instantiated);
            if verdict.is_valid() {
                return ExElimOutcome {
                    // The provenance of the instantiated check carries over:
                    // a witness validated symbolically is a *proof*.
                    validity: Some(verdict),
                    witness: Some(resolved),
                    stats,
                };
            }
        }

        // Advance the candidate odometer.
        let mut i = 0;
        'odometer: loop {
            if i == assignment.len() {
                break 'search;
            }
            assignment[i] += 1;
            if assignment[i] < all_candidates[i].1.len() {
                break 'odometer;
            }
            assignment[i] = 0;
            i += 1;
        }
    }

    // Candidate substitution is out of ideas.  Real-sorted (cost)
    // existentials have one more complete move: Fourier–Motzkin projection
    // is *exact* for ∃ over the non-negative reals, so the projected,
    // ∃-free goal can be handed back to the solver pipeline.
    ExElimOutcome {
        validity: fm_projection_fallback(solver, universals, hyp, &matrix, &ex_vars),
        witness: None,
        stats,
    }
}

/// Replaces `∃ v₁…vₖ :: ℝ. matrix` by its FM projection and re-checks; only
/// a `Valid` outcome is forwarded (anything else falls back to the caller's
/// bounded numeric search).  ℕ-sorted existentials are left alone: rational
/// projection over-approximates integer satisfiability, and proving an
/// over-approximated goal would be unsound.
fn fm_projection_fallback(
    solver: &mut Solver,
    universals: &[(IdxVar, Sort)],
    hyp: &Constr,
    matrix: &Constr,
    ex_vars: &[Quantified],
) -> Option<Validity> {
    if !solver.config().use_fm || ex_vars.is_empty() {
        return None;
    }
    if ex_vars.iter().any(|q| q.sort != Sort::Real) {
        return None;
    }
    // The projection treats the existentials as goal-local; a hypothesis
    // mentioning one (never produced by the bidirectional rules) would
    // change its meaning.
    if ex_vars.iter().any(|q| hyp.mentions(&q.var)) {
        return None;
    }
    let vars: Vec<IdxVar> = ex_vars.iter().map(|q| q.var.clone()).collect();
    let limits = solver.fm_limits().clone();
    let projected = fm::project_reals(matrix, &vars, &limits)?;
    let verdict = solver.entails_no_exists(universals, hyp, &projected);
    if verdict.is_valid() {
        solver.note_fm_projection();
        Some(verdict)
    } else {
        None
    }
}

/// Resolves candidates that mention other existential variables by repeated
/// substitution; returns `None` if a cyclic dependency prevents resolution.
fn resolve_mutual(
    subst: &BTreeMap<IdxVar, Idx>,
    ex_vars: &[Quantified],
) -> Option<BTreeMap<IdxVar, Idx>> {
    let ex_names: Vec<&IdxVar> = ex_vars.iter().map(|q| &q.var).collect();
    let mut out = subst.clone();
    for _ in 0..=ex_vars.len() {
        let mut changed = false;
        let snapshot = out.clone();
        for (_v, idx) in out.iter_mut() {
            for w in &ex_names {
                if idx.mentions(w) {
                    let replacement = snapshot.get(*w)?.clone();
                    if replacement.mentions(w) {
                        // Self-referential candidate: unusable.
                        return None;
                    }
                    *idx = idx.subst(w, &replacement);
                    changed = true;
                }
            }
        }
        if !changed {
            // Verify no existential variable remains anywhere.
            if out
                .values()
                .all(|i| ex_names.iter().all(|w| !i.mentions(w)))
            {
                return Some(out);
            }
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveConfig;

    fn nat_universals(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    #[test]
    fn strip_collects_nested_existentials() {
        let c = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n")).and(Constr::exists(
                "b",
                Sort::Nat,
                Constr::leq(Idx::var("b"), Idx::var("i")),
            )),
        );
        let (matrix, vars) = strip_existentials(&c);
        assert_eq!(vars.len(), 2);
        assert!(matrix.existential_vars().is_empty());
    }

    #[test]
    fn equality_candidates_are_found_and_used() {
        let mut s = Solver::new();
        let u = nat_universals(&["n", "alpha"]);
        // The archetypal consC constraint: ∃ i, β. n = i + 1 ∧ α = β + 1 ∧ i ≤ n ∧ β ≤ α
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::exists(
                "beta",
                Sort::Nat,
                Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one())
                    .and(Constr::eq(Idx::var("alpha"), Idx::var("beta") + Idx::one()))
                    .and(Constr::leq(Idx::var("i"), Idx::var("n")))
                    .and(Constr::leq(Idx::var("beta"), Idx::var("alpha"))),
            ),
        );
        let hyp =
            Constr::leq(Idx::one(), Idx::var("n")).and(Constr::leq(Idx::one(), Idx::var("alpha")));
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        let w = out.witness.unwrap();
        assert_eq!(
            rel_index::LinExpr::of_idx(&w[&IdxVar::new("i")]),
            rel_index::LinExpr::of_idx(&(Idx::var("n") - Idx::one()))
        );
    }

    #[test]
    fn upper_bound_candidates_work_for_cost_variables() {
        let mut s = Solver::new();
        let u = nat_universals(&["t"]);
        // ∃ t2. t2 ≤ t ∧ 0 ≤ t2  — witness t2 := 0 (default candidate) or t.
        let goal = Constr::exists(
            "t2",
            Sort::Real,
            Constr::leq(Idx::var("t2"), Idx::var("t"))
                .and(Constr::leq(Idx::zero(), Idx::var("t2"))),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
    }

    #[test]
    fn lower_bound_candidates_work_for_inferred_costs() {
        let mut s = Solver::new();
        let u = nat_universals(&["c", "t"]);
        // ∃ t2. c ≤ t2 ∧ t2 + 1 ≤ t, given c + 1 ≤ t.  Witness t2 := c.
        let hyp = Constr::leq(Idx::var("c") + Idx::one(), Idx::var("t"));
        let goal = Constr::exists(
            "t2",
            Sort::Real,
            Constr::leq(Idx::var("c"), Idx::var("t2"))
                .and(Constr::leq(Idx::var("t2") + Idx::one(), Idx::var("t"))),
        );
        let out = eliminate_existentials(&mut s, &u, &hyp, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
        assert_eq!(out.witness.unwrap()[&IdxVar::new("t2")], Idx::var("c"));
    }

    #[test]
    fn chained_candidates_resolve_mutually() {
        let mut s = Solver::new();
        let u = nat_universals(&["n"]);
        // ∃ a b. a = b + 1 ∧ b = n ∧ a ≤ n + 1
        let goal = Constr::exists(
            "a",
            Sort::Nat,
            Constr::exists(
                "b",
                Sort::Nat,
                Constr::eq(Idx::var("a"), Idx::var("b") + Idx::one())
                    .and(Constr::eq(Idx::var("b"), Idx::var("n")))
                    .and(Constr::leq(Idx::var("a"), Idx::var("n") + Idx::one())),
            ),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(matches!(out.validity, Some(Validity::Valid(_))));
    }

    #[test]
    fn unsatisfiable_existentials_report_no_witness() {
        let mut s = Solver::with_config(SolveConfig {
            max_exelim_attempts: 32,
            ..SolveConfig::default()
        });
        let u = nat_universals(&["n"]);
        // ∃ i. i = n ∧ i = n + 1  — no candidate can satisfy both.
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n"))
                .and(Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one())),
        );
        let out = eliminate_existentials(&mut s, &u, &Constr::Top, &goal);
        assert!(out.validity.is_none());
        assert!(out.stats.attempts >= 2);
    }

    #[test]
    fn solver_entry_point_integrates_elimination() {
        let mut s = Solver::new();
        let u = nat_universals(&["n"]);
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("n"), Idx::var("i") + Idx::one()),
        );
        // Valid only when n ≥ 1.
        let hyp = Constr::leq(Idx::one(), Idx::var("n"));
        assert!(s.entails(&u, &hyp, &goal).is_valid());
    }
}
