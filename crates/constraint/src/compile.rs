//! Compilation of numeric queries to a flat stack bytecode.
//!
//! The solver's numeric layer evaluates one implication `Φₐ ⟹ Φ` at up to
//! `max_grid_points + random_points` ground points.  Interpreting the
//! `Box`-tree [`Constr`]/[`Idx`] AST per point re-walks the heap-scattered
//! tree and pays a `BTreeMap` lookup per variable occurrence.  This module
//! lowers the query **once** into a [`CompiledQuery`]:
//!
//! * a flat `Vec<Op>` stack program (cache-friendly, no pointer chasing),
//! * **slot-indexed variables** — the evaluation frame is a `Vec<Val>`
//!   indexed by compile-time slot numbers instead of a name-keyed map,
//! * **short-circuit jumps** for `∧` / `∨` / `⟹` / quantifier loops,
//! * an **`i64` fast path** for arithmetic that falls back to exact
//!   [`Rational`]/[`Extended`] values on overflow, non-integer division or
//!   `∞`, so results are bit-identical to the tree evaluator.
//!
//! Semantics are *exactly* [`Constr::eval_bounded`] (including the treatment
//! of evaluation errors — an atomic comparison whose operand fails to
//! evaluate is `false` — the `bound.min(8)` cap on existential search, and
//! the summation guards of [`rel_index::EvalError`]).  The differential
//! property tests in `tests/compile_differential.rs` pin the two evaluators
//! together.

use std::collections::HashMap;

use rel_index::{Extended, Idx, IdxEnv, IdxVar, Rational, Sort, MAX_SUM_TERMS};

use crate::constr::{Constr, EXISTS_SEARCH_CAP};

/// A numeric value on the evaluation stack: a flat 16-byte normalized
/// rational with sentinel denominators.
///
/// * `den > 0` — the finite value `num / den` in lowest terms (so `den == 1`
///   is the integer fast path);
/// * `den == 0` — `+∞`;
/// * `den < 0` — the poison value standing in for the tree evaluator's
///   `Result::Err`: it propagates through arithmetic and makes the enclosing
///   comparison evaluate to `false`.
///
/// The flat layout (vs a `Val(Extended)` enum nest) halves stack traffic in
/// the interpreter loop and turns the integer fast-path check into a single
/// compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Val {
    num: i64,
    den: i64,
}

impl Val {
    /// The poison value.
    pub const ERR: Val = Val { num: 0, den: -1 };
    /// Positive infinity.
    pub const INFINITY: Val = Val { num: 0, den: 0 };

    /// An integer value (the fast path).
    #[inline]
    pub fn int(n: i64) -> Val {
        Val { num: n, den: 1 }
    }

    /// `true` for the poison value.
    #[inline]
    pub fn is_err(self) -> bool {
        self.den < 0
    }

    #[inline]
    fn is_int(self) -> bool {
        self.den == 1
    }

    /// The integer value; only meaningful when [`Val::is_int`] holds.
    #[inline]
    fn int_value(self) -> i64 {
        debug_assert!(self.is_int());
        self.num
    }

    /// Wraps an [`Extended`] (integers land on the fast path by virtue of
    /// `Rational`'s normalized representation).
    pub fn from_ext(e: Extended) -> Val {
        match e {
            Extended::Finite(q) => Val {
                num: q.numerator(),
                den: q.denominator(),
            },
            Extended::Infinity => Val::INFINITY,
        }
    }

    /// The exact value, or `None` for the poison value.
    pub fn to_ext(self) -> Option<Extended> {
        if self.den > 0 {
            // The invariant keeps `num/den` normalized, so `Rational::new`
            // only re-runs a trivial gcd.
            Some(Extended::Finite(Rational::new(self.num, self.den)))
        } else if self.den == 0 {
            Some(Extended::Infinity)
        } else {
            None
        }
    }
}

macro_rules! ext_binop {
    ($a:expr, $b:expr, $op:expr) => {
        match ($a.to_ext(), $b.to_ext()) {
            (Some(x), Some(y)) => Val::from_ext($op(x, y)),
            _ => Val::ERR,
        }
    };
}

#[inline]
fn val_add(a: Val, b: Val) -> Val {
    if a.is_int() && b.is_int() {
        if let Some(z) = a.num.checked_add(b.num) {
            return Val::int(z);
        }
    }
    ext_binop!(a, b, |x: Extended, y| x + y)
}

#[inline]
fn val_sub(a: Val, b: Val) -> Val {
    if a.is_int() && b.is_int() {
        if let Some(z) = a.num.checked_sub(b.num) {
            return Val::int(z);
        }
    }
    ext_binop!(a, b, |x: Extended, y| x - y)
}

#[inline]
fn val_mul(a: Val, b: Val) -> Val {
    if a.is_int() && b.is_int() {
        if let Some(z) = a.num.checked_mul(b.num) {
            return Val::int(z);
        }
    }
    ext_binop!(a, b, |x: Extended, y| x * y)
}

#[inline]
fn val_div(a: Val, b: Val) -> Val {
    // Exact integer division stays on the fast path; everything else
    // (remainders, zero divisors, ∞) goes through `Extended::div`, which
    // defines division by zero as ∞.
    if a.is_int() && b.is_int() {
        let (x, y) = (a.num, b.num);
        if y != 0 && x % y == 0 && !(x == i64::MIN && y == -1) {
            return Val::int(x / y);
        }
    }
    ext_binop!(a, b, |x: Extended, y| x / y)
}

#[inline]
fn val_min(a: Val, b: Val) -> Val {
    match val_cmp(a, b) {
        Some(std::cmp::Ordering::Greater) => b,
        Some(_) => a,
        None => Val::ERR,
    }
}

#[inline]
fn val_max(a: Val, b: Val) -> Val {
    match val_cmp(a, b) {
        Some(std::cmp::Ordering::Less) => b,
        Some(_) => a,
        None => Val::ERR,
    }
}

fn val_unary(a: Val, op: fn(Extended) -> Extended) -> Val {
    match a.to_ext() {
        Some(x) => Val::from_ext(op(x)),
        None => Val::ERR,
    }
}

#[inline]
fn val_ceil(a: Val) -> Val {
    if a.is_int() {
        return a;
    }
    val_unary(a, Extended::ceil)
}

#[inline]
fn val_floor(a: Val) -> Val {
    if a.is_int() {
        return a;
    }
    val_unary(a, Extended::floor)
}

#[inline]
fn val_pow2(a: Val) -> Val {
    // The branch `pow2_total` takes for integer exponents in 0..62, without
    // the round-trip through `Rational`.
    if a.is_int() && (0..62).contains(&a.num) {
        return Val::int(1i64 << a.num);
    }
    val_unary(a, Extended::pow2_total)
}

/// Three-way comparison; `None` when either side is the poison value (the
/// enclosing comparison is then `false`, as in `eval_bounded`).
#[inline]
fn val_cmp(a: Val, b: Val) -> Option<std::cmp::Ordering> {
    if a.is_int() && b.is_int() {
        return Some(a.num.cmp(&b.num));
    }
    if a.is_err() || b.is_err() {
        return None;
    }
    match (a.den == 0, b.den == 0) {
        (true, true) => return Some(std::cmp::Ordering::Equal),
        (true, false) => return Some(std::cmp::Ordering::Greater),
        (false, true) => return Some(std::cmp::Ordering::Less),
        (false, false) => {}
    }
    // Finite rationals with positive denominators: cross-multiply exactly.
    let lhs = a.num as i128 * b.den as i128;
    let rhs = b.num as i128 * a.den as i128;
    Some(lhs.cmp(&rhs))
}

/// Binary arithmetic selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Unary arithmetic selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    /// Ceiling.
    Ceil,
    /// Floor.
    Floor,
    /// Totalized base-2 logarithm.
    Log2,
    /// Totalized power of two.
    Pow2,
}

/// Comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// Equality.
    Eq,
    /// Non-strict inequality.
    Leq,
    /// Strict inequality.
    Lt,
}

/// An encoded leaf operand: the top two bits select frame slot (`0`),
/// constant-pool index (`1`) or the poison value (`2`); the rest is the
/// index.  Leaf operands let the compiler fuse `Load/Load/op` triples into
/// one instruction — interpreter dispatch is the dominant cost of the inner
/// loop, so halving the instruction count per atom is a direct win.
pub type Operand = u32;

const OPERAND_TAG_SHIFT: u32 = 30;
const OPERAND_INDEX_MASK: u32 = (1 << OPERAND_TAG_SHIFT) - 1;
const OPERAND_SLOT: u32 = 0;
const OPERAND_CONST: u32 = 1;
const OPERAND_ERR: u32 = 2;

/// One bytecode instruction.  Jump operands are absolute instruction
/// indices; `body` operands point back to the first instruction of a loop
/// body.  `SS`/`SP`/`PS` suffixes name the operand sources: encoded leaf
/// (`S`) or popped from the value stack (`P`), left-to-right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push an encoded operand.
    Push(Operand),
    /// Pop 2 (rhs first), push the result.
    Alu(AluKind),
    /// Both operands encoded: push `kind(lhs, rhs)`.
    AluSS(AluKind, Operand, Operand),
    /// Left operand encoded, right popped.
    AluSP(AluKind, Operand),
    /// Left popped, right operand encoded.
    AluPS(AluKind, Operand),
    /// Pop 1, push the unary result.
    Un(UnKind),
    /// Unary on an encoded operand.
    UnS(UnKind, Operand),
    /// Pop 2 (rhs first), set the flag to the comparison result.
    Cmp(CmpKind),
    /// Both comparison operands encoded.
    CmpSS(CmpKind, Operand, Operand),
    /// Left operand encoded, right popped.
    CmpSP(CmpKind, Operand),
    /// Left popped, right operand encoded.
    CmpPS(CmpKind, Operand),
    /// Invert the flag.
    NotFlag,
    /// Set the flag to a constant.
    SetFlag(bool),
    /// Unconditional jump.
    Jmp(u32),
    /// Jump when the flag is `false`.
    JmpIfFalse(u32),
    /// Jump when the flag is `true`.
    JmpIfTrue(u32),
    /// Open a bounded quantifier loop over `frame[slot] = 0, 1, …`.
    QuantInit {
        /// Frame slot of the bound variable.
        slot: u32,
        /// Existential (`any`, capped at 8) or universal (`all`).
        exists: bool,
    },
    /// Close a quantifier loop: consume the flag, advance or exit.
    QuantStep {
        /// Frame slot of the bound variable.
        slot: u32,
        /// Existential or universal.
        exists: bool,
        /// First instruction of the loop body.
        body: u32,
    },
    /// Open a summation loop: pops `hi` then `lo`, validates the range.
    SumInit {
        /// Frame slot of the summation variable.
        slot: u32,
        /// Instruction just past the matching [`Op::SumStep`].
        end: u32,
    },
    /// Close a summation loop: pops the body value, accumulates.
    SumStep {
        /// Frame slot of the summation variable.
        slot: u32,
        /// First instruction of the loop body.
        body: u32,
    },
}

#[inline]
fn alu(kind: AluKind, a: Val, b: Val) -> Val {
    match kind {
        AluKind::Add => val_add(a, b),
        AluKind::Sub => val_sub(a, b),
        AluKind::Mul => val_mul(a, b),
        AluKind::Div => val_div(a, b),
        AluKind::Min => val_min(a, b),
        AluKind::Max => val_max(a, b),
    }
}

#[inline]
fn unary(kind: UnKind, a: Val) -> Val {
    match kind {
        UnKind::Ceil => val_ceil(a),
        UnKind::Floor => val_floor(a),
        UnKind::Log2 => val_unary(a, Extended::log2_total),
        UnKind::Pow2 => val_pow2(a),
    }
}

#[inline]
fn compare(kind: CmpKind, a: Val, b: Val) -> bool {
    match kind {
        CmpKind::Eq => val_cmp(a, b) == Some(std::cmp::Ordering::Equal),
        CmpKind::Leq => matches!(
            val_cmp(a, b),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ),
        CmpKind::Lt => val_cmp(a, b) == Some(std::cmp::Ordering::Less),
    }
}

/// An active loop record on the evaluation frame.
#[derive(Debug, Clone, Copy)]
enum LoopRec {
    Quant { k: u64, cap: u64 },
    Sum { k: i64, hi: i64, acc: Val },
}

/// A numeric query compiled to bytecode.
///
/// Immutable and `Sync`: one compiled program can be shared across grid
/// chunks evaluated by different worker threads, each with its own
/// [`EvalFrame`].
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    ops: Vec<Op>,
    /// Literal pool, pre-narrowed to [`Val`] so `Op::Const` is a plain copy.
    consts: Vec<Val>,
    /// Slot → variable (universals first, then binders), for diagnostics and
    /// counterexample reconstruction.
    slots: Vec<IdxVar>,
    /// For each entry of the `universals` list passed to [`compile_query`],
    /// the frame slot it binds.  Duplicate names share a slot; writing
    /// point coordinates in list order reproduces the tree evaluator's
    /// last-binding-wins environment semantics.
    universal_slots: Vec<u32>,
    /// `true` for the entry that owns its slot (the *last* entry of each
    /// name).  Incremental sweeps may skip writes for non-owners: their
    /// values are shadowed and semantically dead.
    universal_owner: Vec<bool>,
}

impl CompiledQuery {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the program is empty (never produced by the compiler).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of variable slots in the evaluation frame.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The frame slot bound by the `i`-th entry of the universals list.
    pub fn universal_slot(&self, i: usize) -> u32 {
        self.universal_slots[i]
    }

    /// Whether the `i`-th universal entry owns its slot (is not shadowed by
    /// a later entry of the same name).
    pub fn universal_owner(&self, i: usize) -> bool {
        self.universal_owner[i]
    }

    /// A fresh evaluation frame sized for this program.
    pub fn new_frame(&self) -> EvalFrame {
        EvalFrame {
            vals: vec![Val::ERR; self.slots.len()],
            stack: Vec::with_capacity(16),
            loops: Vec::with_capacity(4),
        }
    }

    /// Decodes a leaf operand against the current frame.
    #[inline]
    fn operand(&self, frame: &EvalFrame, enc: Operand) -> Val {
        let index = (enc & OPERAND_INDEX_MASK) as usize;
        match enc >> OPERAND_TAG_SHIFT {
            OPERAND_SLOT => frame.vals[index],
            OPERAND_CONST => self.consts[index],
            _ => Val::ERR,
        }
    }

    /// Evaluates the program in `frame` (universal slots must have been set
    /// by the caller) with quantifier bound `bound`.
    pub fn eval(&self, frame: &mut EvalFrame, bound: u64) -> bool {
        frame.stack.clear();
        frame.loops.clear();
        let mut flag = false;
        let mut ip = 0usize;
        let ops = &self.ops;
        while let Some(&op) = ops.get(ip) {
            match op {
                Op::Push(x) => {
                    let v = self.operand(frame, x);
                    frame.stack.push(v);
                }
                Op::Alu(k) => {
                    let (a, b) = frame.pop2();
                    frame.stack.push(alu(k, a, b));
                }
                Op::AluSS(k, x, y) => {
                    let v = alu(k, self.operand(frame, x), self.operand(frame, y));
                    frame.stack.push(v);
                }
                Op::AluSP(k, x) => {
                    let b = frame.pop1();
                    let v = alu(k, self.operand(frame, x), b);
                    frame.stack.push(v);
                }
                Op::AluPS(k, y) => {
                    let a = frame.pop1();
                    let v = alu(k, a, self.operand(frame, y));
                    frame.stack.push(v);
                }
                Op::Un(k) => {
                    let a = frame.pop1();
                    frame.stack.push(unary(k, a));
                }
                Op::UnS(k, x) => {
                    let v = unary(k, self.operand(frame, x));
                    frame.stack.push(v);
                }
                Op::Cmp(k) => {
                    let (a, b) = frame.pop2();
                    flag = compare(k, a, b);
                }
                Op::CmpSS(k, x, y) => {
                    flag = compare(k, self.operand(frame, x), self.operand(frame, y));
                }
                Op::CmpSP(k, x) => {
                    let b = frame.pop1();
                    flag = compare(k, self.operand(frame, x), b);
                }
                Op::CmpPS(k, y) => {
                    let a = frame.pop1();
                    flag = compare(k, a, self.operand(frame, y));
                }
                Op::NotFlag => flag = !flag,
                Op::SetFlag(v) => flag = v,
                Op::Jmp(t) => {
                    ip = t as usize;
                    continue;
                }
                Op::JmpIfFalse(t) => {
                    if !flag {
                        ip = t as usize;
                        continue;
                    }
                }
                Op::JmpIfTrue(t) => {
                    if flag {
                        ip = t as usize;
                        continue;
                    }
                }
                Op::QuantInit { slot, exists } => {
                    let cap = if exists {
                        bound.min(EXISTS_SEARCH_CAP)
                    } else {
                        bound
                    };
                    frame.loops.push(LoopRec::Quant { k: 0, cap });
                    frame.vals[slot as usize] = Val::int(0);
                }
                Op::QuantStep { slot, exists, body } => {
                    let Some(LoopRec::Quant { k, cap }) = frame.loops.last_mut() else {
                        unreachable!("QuantStep without a matching QuantInit");
                    };
                    // `any` exits on the first true, `all` on the first false.
                    let done = if exists { flag } else { !flag };
                    if done || *k == *cap {
                        // Exhausting an `all` loop means every instance held.
                        flag = if exists { done } else { !done };
                        frame.loops.pop();
                    } else {
                        *k += 1;
                        frame.vals[slot as usize] = Val::int(*k as i64);
                        ip = body as usize;
                        continue;
                    }
                }
                Op::SumInit { slot, end } => {
                    let (lo, hi) = frame.pop2();
                    match sum_range(lo, hi) {
                        SumRange::Err => {
                            frame.stack.push(Val::ERR);
                            ip = end as usize;
                            continue;
                        }
                        SumRange::Empty => {
                            frame.stack.push(Val::int(0));
                            ip = end as usize;
                            continue;
                        }
                        SumRange::Run { lo, hi } => {
                            frame.loops.push(LoopRec::Sum {
                                k: lo,
                                hi,
                                acc: Val::int(0),
                            });
                            frame.vals[slot as usize] = Val::int(lo);
                        }
                    }
                }
                Op::SumStep { slot, body } => {
                    let v = frame.stack.pop().expect("sum body left no value");
                    let Some(LoopRec::Sum { k, hi, acc }) = frame.loops.last_mut() else {
                        unreachable!("SumStep without a matching SumInit");
                    };
                    if v.is_err() {
                        frame.loops.pop();
                        frame.stack.push(Val::ERR);
                    } else {
                        *acc = val_add(*acc, v);
                        if *k == *hi {
                            let acc = *acc;
                            frame.loops.pop();
                            frame.stack.push(acc);
                        } else {
                            *k += 1;
                            frame.vals[slot as usize] = Val::int(*k);
                            ip = body as usize;
                            continue;
                        }
                    }
                }
            }
            ip += 1;
        }
        debug_assert!(frame.stack.is_empty(), "value stack not consumed");
        flag
    }

    /// Evaluates with universal slots taken from `point` (one value per
    /// entry of the original universals list, in list order).
    pub fn eval_point(&self, frame: &mut EvalFrame, point: &[Val], bound: u64) -> bool {
        debug_assert_eq!(point.len(), self.universal_slots.len());
        for (slot, v) in self.universal_slots.iter().zip(point) {
            frame.vals[*slot as usize] = *v;
        }
        self.eval(frame, bound)
    }

    /// Reconstructs the (universals-only) environment of a point, for
    /// counterexample reporting.
    pub fn point_env(&self, universals: &[(IdxVar, Sort)], point: &[Val]) -> IdxEnv {
        IdxEnv::from_pairs(
            universals
                .iter()
                .zip(point)
                .filter_map(|((v, _), val)| val.to_ext().map(|e| (v.clone(), e))),
        )
    }
}

enum SumRange {
    Err,
    Empty,
    Run { lo: i64, hi: i64 },
}

/// Validates summation bounds exactly as the tree evaluator does: infinite
/// or erroneous bounds poison the sum, the inclusive integer range runs from
/// `⌈lo⌉` to `⌊hi⌋`, and over-long ranges are rejected.
fn sum_range(lo: Val, hi: Val) -> SumRange {
    if lo.is_int() && hi.is_int() {
        // Integer bounds skip the ceil/floor round-trip.
        let (lo, hi) = (lo.int_value(), hi.int_value());
        if hi < lo {
            return SumRange::Empty;
        }
        if (hi - lo + 1) as u64 > MAX_SUM_TERMS {
            return SumRange::Err;
        }
        return SumRange::Run { lo, hi };
    }
    let (Some(lo), Some(hi)) = (lo.to_ext(), hi.to_ext()) else {
        return SumRange::Err;
    };
    let (Some(lo), Some(hi)) = (lo.finite(), hi.finite()) else {
        return SumRange::Err;
    };
    let lo = lo.ceil().numerator();
    let hi = hi.floor().numerator();
    if hi < lo {
        return SumRange::Empty;
    }
    let count = (hi - lo + 1) as u64;
    if count > MAX_SUM_TERMS {
        return SumRange::Err;
    }
    SumRange::Run { lo, hi }
}

/// A reusable evaluation frame: variable slots, the value stack and the loop
/// stack.  One frame serves every grid point of a query (and is reused
/// across queries of the same shape), so the steady-state inner loop
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct EvalFrame {
    vals: Vec<Val>,
    stack: Vec<Val>,
    loops: Vec<LoopRec>,
}

impl EvalFrame {
    /// Writes a slot directly (used by tests; production goes through
    /// [`CompiledQuery::eval_point`]).
    pub fn set_slot(&mut self, slot: u32, v: Val) {
        self.vals[slot as usize] = v;
    }

    #[inline]
    fn pop1(&mut self) -> Val {
        self.stack.pop().expect("stack underflow")
    }

    #[inline]
    fn pop2(&mut self) -> (Val, Val) {
        let b = self.stack.pop().expect("stack underflow");
        let a = self.stack.pop().expect("stack underflow");
        (a, b)
    }
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct Compiler {
    ops: Vec<Op>,
    consts: Vec<Val>,
    const_ids: HashMap<Extended, u32>,
    slots: Vec<IdxVar>,
    /// Universal bindings by name (later entries of the list overwrite
    /// earlier ones, mirroring the tree evaluator's environment).
    universal_by_name: HashMap<IdxVar, u32>,
    /// Scoped binders (quantifiers, summation variables), innermost last.
    scope: Vec<(IdxVar, u32)>,
}

impl Compiler {
    fn alloc_slot(&mut self, var: &IdxVar) -> u32 {
        let slot = u32::try_from(self.slots.len()).expect("slot overflow");
        self.slots.push(var.clone());
        slot
    }

    fn const_id(&mut self, e: Extended) -> u32 {
        if let Some(&i) = self.const_ids.get(&e) {
            return i;
        }
        let i = u32::try_from(self.consts.len()).expect("constant-pool overflow");
        self.consts.push(Val::from_ext(e));
        self.const_ids.insert(e, i);
        i
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    /// Emits a jump with a dummy target, returning its index for patching.
    fn emit_jump(&mut self, op: fn(u32) -> Op) -> usize {
        self.ops.push(op(u32::MAX));
        self.ops.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        match &mut self.ops[at] {
            Op::Jmp(t) | Op::JmpIfFalse(t) | Op::JmpIfTrue(t) => *t = target,
            Op::SumInit { end, .. } => *end = target,
            other => unreachable!("patching a non-jump op {other:?}"),
        }
    }

    fn lookup_slot(&self, v: &IdxVar) -> Option<u32> {
        self.scope
            .iter()
            .rev()
            .find(|(w, _)| w == v)
            .map(|(_, s)| *s)
            .or_else(|| self.universal_by_name.get(v).copied())
    }

    /// Encodes a leaf term as an operand, enabling fused instructions.
    fn leaf_operand(&mut self, idx: &Idx) -> Option<Operand> {
        match idx {
            Idx::Var(v) => Some(match self.lookup_slot(v) {
                Some(slot) => (OPERAND_SLOT << OPERAND_TAG_SHIFT) | slot,
                // A variable bound nowhere: the tree evaluator fails the
                // enclosing comparison; the poison operand does the same.
                None => OPERAND_ERR << OPERAND_TAG_SHIFT,
            }),
            Idx::Const(q) => {
                let i = self.const_id(Extended::Finite(*q));
                Some((OPERAND_CONST << OPERAND_TAG_SHIFT) | i)
            }
            Idx::Infty => {
                let i = self.const_id(Extended::Infinity);
                Some((OPERAND_CONST << OPERAND_TAG_SHIFT) | i)
            }
            _ => None,
        }
    }

    fn compile_idx(&mut self, idx: &Idx) {
        if let Some(x) = self.leaf_operand(idx) {
            self.ops.push(Op::Push(x));
            return;
        }
        match idx {
            Idx::Var(_) | Idx::Const(_) | Idx::Infty => unreachable!("leaves handled above"),
            Idx::Add(a, b) => self.binary(a, b, AluKind::Add),
            Idx::Sub(a, b) => self.binary(a, b, AluKind::Sub),
            Idx::Mul(a, b) => self.binary(a, b, AluKind::Mul),
            Idx::Div(a, b) => self.binary(a, b, AluKind::Div),
            Idx::Min(a, b) => self.binary(a, b, AluKind::Min),
            Idx::Max(a, b) => self.binary(a, b, AluKind::Max),
            Idx::Ceil(a) => self.unary(a, UnKind::Ceil),
            Idx::Floor(a) => self.unary(a, UnKind::Floor),
            Idx::Log2(a) => self.unary(a, UnKind::Log2),
            Idx::Pow2(a) => self.unary(a, UnKind::Pow2),
            Idx::Sum { var, lo, hi, body } => {
                self.compile_idx(lo);
                self.compile_idx(hi);
                let slot = self.alloc_slot(var);
                let init = self.ops.len();
                self.ops.push(Op::SumInit {
                    slot,
                    end: u32::MAX,
                });
                let body_pc = self.here();
                self.scope.push((var.clone(), slot));
                self.compile_idx(body);
                self.scope.pop();
                self.ops.push(Op::SumStep {
                    slot,
                    body: body_pc,
                });
                self.patch(init);
            }
        }
    }

    fn binary(&mut self, a: &Idx, b: &Idx, kind: AluKind) {
        match (self.leaf_operand(a), self.leaf_operand(b)) {
            (Some(x), Some(y)) => self.ops.push(Op::AluSS(kind, x, y)),
            (Some(x), None) => {
                self.compile_idx(b);
                self.ops.push(Op::AluSP(kind, x));
            }
            (None, Some(y)) => {
                self.compile_idx(a);
                self.ops.push(Op::AluPS(kind, y));
            }
            (None, None) => {
                self.compile_idx(a);
                self.compile_idx(b);
                self.ops.push(Op::Alu(kind));
            }
        }
    }

    fn unary(&mut self, a: &Idx, kind: UnKind) {
        match self.leaf_operand(a) {
            Some(x) => self.ops.push(Op::UnS(kind, x)),
            None => {
                self.compile_idx(a);
                self.ops.push(Op::Un(kind));
            }
        }
    }

    fn compile_constr(&mut self, c: &Constr) {
        match c {
            Constr::Top => self.ops.push(Op::SetFlag(true)),
            Constr::Bot => self.ops.push(Op::SetFlag(false)),
            Constr::Eq(a, b) => self.comparison(a, b, CmpKind::Eq),
            Constr::Leq(a, b) => self.comparison(a, b, CmpKind::Leq),
            Constr::Lt(a, b) => self.comparison(a, b, CmpKind::Lt),
            Constr::And(cs) => {
                if cs.is_empty() {
                    self.ops.push(Op::SetFlag(true));
                    return;
                }
                let mut exits = Vec::with_capacity(cs.len() - 1);
                for (i, c) in cs.iter().enumerate() {
                    self.compile_constr(c);
                    if i + 1 < cs.len() {
                        exits.push(self.emit_jump(Op::JmpIfFalse));
                    }
                }
                for at in exits {
                    self.patch(at);
                }
            }
            Constr::Or(cs) => {
                if cs.is_empty() {
                    self.ops.push(Op::SetFlag(false));
                    return;
                }
                let mut exits = Vec::with_capacity(cs.len() - 1);
                for (i, c) in cs.iter().enumerate() {
                    self.compile_constr(c);
                    if i + 1 < cs.len() {
                        exits.push(self.emit_jump(Op::JmpIfTrue));
                    }
                }
                for at in exits {
                    self.patch(at);
                }
            }
            Constr::Not(c) => {
                self.compile_constr(c);
                self.ops.push(Op::NotFlag);
            }
            Constr::Implies(a, b) => {
                self.compile_constr(a);
                let vacuous = self.emit_jump(Op::JmpIfFalse);
                self.compile_constr(b);
                let done = self.emit_jump(Op::Jmp);
                self.patch(vacuous);
                self.ops.push(Op::SetFlag(true));
                self.patch(done);
            }
            Constr::Forall(q, c) => self.quantifier(&q.var, c, false),
            Constr::Exists(q, c) => self.quantifier(&q.var, c, true),
        }
    }

    fn quantifier(&mut self, var: &IdxVar, body: &Constr, exists: bool) {
        let slot = self.alloc_slot(var);
        self.ops.push(Op::QuantInit { slot, exists });
        let body_pc = self.here();
        self.scope.push((var.clone(), slot));
        self.compile_constr(body);
        self.scope.pop();
        self.ops.push(Op::QuantStep {
            slot,
            exists,
            body: body_pc,
        });
    }

    fn comparison(&mut self, a: &Idx, b: &Idx, kind: CmpKind) {
        match (self.leaf_operand(a), self.leaf_operand(b)) {
            (Some(x), Some(y)) => self.ops.push(Op::CmpSS(kind, x, y)),
            (Some(x), None) => {
                self.compile_idx(b);
                self.ops.push(Op::CmpSP(kind, x));
            }
            (None, Some(y)) => {
                self.compile_idx(a);
                self.ops.push(Op::CmpPS(kind, y));
            }
            (None, None) => {
                self.compile_idx(a);
                self.compile_idx(b);
                self.ops.push(Op::Cmp(kind));
            }
        }
    }
}

/// Compiles the implication `hyp ⟹ goal` under the given universally
/// quantified prefix.  The hypothesis short-circuits: points where it fails
/// never evaluate the goal.
pub fn compile_query(universals: &[(IdxVar, Sort)], hyp: &Constr, goal: &Constr) -> CompiledQuery {
    let mut c = Compiler {
        ops: Vec::new(),
        consts: Vec::new(),
        const_ids: HashMap::new(),
        slots: Vec::new(),
        universal_by_name: HashMap::new(),
        scope: Vec::new(),
    };
    // One slot per distinct universal name; duplicate names share a slot so
    // writing the point vector in list order is last-binding-wins.
    let mut universal_slots = Vec::with_capacity(universals.len());
    for (v, _) in universals {
        let slot = match c.universal_by_name.get(v) {
            Some(&slot) => slot,
            None => {
                let slot = c.alloc_slot(v);
                c.universal_by_name.insert(v.clone(), slot);
                slot
            }
        };
        universal_slots.push(slot);
    }
    let universal_owner: Vec<bool> = universal_slots
        .iter()
        .enumerate()
        .map(|(i, slot)| !universal_slots[i + 1..].contains(slot))
        .collect();

    if hyp.is_top() {
        c.compile_constr(goal);
    } else {
        c.compile_constr(hyp);
        let vacuous = c.emit_jump(Op::JmpIfFalse);
        c.compile_constr(goal);
        let done = c.emit_jump(Op::Jmp);
        c.patch(vacuous);
        c.ops.push(Op::SetFlag(true));
        c.patch(done);
    }

    CompiledQuery {
        ops: c.ops,
        consts: c.consts,
        slots: c.slots,
        universal_slots,
        universal_owner,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_index::Idx;

    fn nat_universals(names: &[&str]) -> Vec<(IdxVar, Sort)> {
        names.iter().map(|n| (IdxVar::new(*n), Sort::Nat)).collect()
    }

    /// Evaluates a compiled query at integer-valued universals and checks it
    /// against the tree evaluator at the same point.
    fn check_parity(
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
        point: &[i64],
        bound: u64,
    ) -> bool {
        let q = compile_query(universals, hyp, goal);
        let mut frame = q.new_frame();
        let vals: Vec<Val> = point.iter().map(|n| Val::int(*n)).collect();
        let compiled = q.eval_point(&mut frame, &vals, bound);
        let env = IdxEnv::from_pairs(
            universals
                .iter()
                .zip(point)
                .map(|((v, _), n)| (v.clone(), Extended::from(*n))),
        );
        let tree = hyp.clone().implies(goal.clone()).eval_bounded(&env, bound);
        assert_eq!(compiled, tree, "divergence at point {point:?}");
        compiled
    }

    #[test]
    fn atomic_comparisons() {
        let u = nat_universals(&["n", "a"]);
        let goal = Constr::leq(Idx::var("n"), Idx::var("a") + Idx::nat(2));
        assert!(check_parity(&u, &Constr::Top, &goal, &[5, 3], 8));
        assert!(!check_parity(&u, &Constr::Top, &goal, &[6, 3], 8));
        let goal = Constr::eq(Idx::var("n") * Idx::var("a"), Idx::nat(12));
        assert!(check_parity(&u, &Constr::Top, &goal, &[3, 4], 8));
        assert!(!check_parity(&u, &Constr::Top, &goal, &[3, 5], 8));
        let goal = Constr::lt(Idx::var("n"), Idx::var("n"));
        assert!(!check_parity(&u, &Constr::Top, &goal, &[3, 0], 8));
    }

    #[test]
    fn hypothesis_short_circuits() {
        let u = nat_universals(&["n"]);
        let hyp = Constr::leq(Idx::nat(5), Idx::var("n"));
        let goal = Constr::leq(Idx::nat(1), Idx::var("n"));
        // Vacuous at n = 0, real at n = 7.
        assert!(check_parity(&u, &hyp, &goal, &[0], 8));
        assert!(check_parity(&u, &hyp, &goal, &[7], 8));
    }

    #[test]
    fn connectives_and_quantifiers() {
        let u = nat_universals(&["n"]);
        let goal = Constr::leq(Idx::var("n"), Idx::nat(3))
            .or(Constr::geq(Idx::var("n"), Idx::nat(2)))
            .and(Constr::forall(
                "m",
                Sort::Nat,
                Constr::leq(Idx::var("m"), Idx::var("m") + Idx::var("n")),
            ));
        for n in 0..6 {
            assert!(check_parity(&u, &Constr::Top, &goal, &[n], 6));
        }
        let exists = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(Idx::var("i"), Idx::var("n") + Idx::one()),
        );
        // Witness exists only while n + 1 ≤ min(bound, 8).
        for n in 0..12 {
            check_parity(&u, &Constr::Top, &exists, &[n], 20);
        }
    }

    #[test]
    fn nested_negation_and_implication() {
        let u = nat_universals(&["n"]);
        let goal = Constr::Not(Box::new(
            Constr::leq(Idx::var("n"), Idx::nat(4)).implies(Constr::lt(Idx::var("n"), Idx::nat(2))),
        ));
        for n in 0..8 {
            check_parity(&u, &Constr::Top, &goal, &[n], 8);
        }
    }

    #[test]
    fn summations_match_the_tree_evaluator() {
        let u = nat_universals(&["n", "a"]);
        // Σ_{i=0}^{n} min(a, 2^i) with the msort-style shape.
        let s = Idx::sum(
            "i",
            Idx::zero(),
            Idx::var("n"),
            Idx::min(Idx::var("a"), Idx::pow2(Idx::var("i"))),
        );
        let goal = Constr::leq(s, Idx::var("n") * Idx::var("a") + Idx::nat(1));
        for n in 0..6 {
            for a in 0..4 {
                check_parity(&u, &Constr::Top, &goal, &[n, a], 8);
            }
        }
        // Empty range sums to zero.
        let empty = Idx::sum("i", Idx::nat(3), Idx::nat(2), Idx::var("i"));
        let goal = Constr::eq(empty, Idx::zero());
        assert!(check_parity(&u, &Constr::Top, &goal, &[0, 0], 8));
        // Infinite bound poisons the comparison (false), like the tree's Err.
        let bad = Idx::sum("i", Idx::zero(), Idx::infty(), Idx::var("i"));
        let goal = Constr::eq(bad.clone(), bad);
        assert!(!check_parity(&u, &Constr::Top, &goal, &[0, 0], 8));
    }

    #[test]
    fn unbound_variables_poison_their_comparison() {
        let u = nat_universals(&["n"]);
        let goal = Constr::leq(Idx::var("mystery"), Idx::nat(100));
        assert!(!check_parity(&u, &Constr::Top, &goal, &[0], 8));
        // …and Not flips it, exactly like eval_bounded.
        let goal = Constr::Not(Box::new(Constr::leq(Idx::var("mystery"), Idx::nat(100))));
        assert!(check_parity(&u, &Constr::Top, &goal, &[0], 8));
    }

    #[test]
    fn rationals_and_infinity() {
        let u = nat_universals(&["n"]);
        // n / 2 exercises the exact fallback at odd n, the fast path at even.
        let goal = Constr::leq(Idx::var("n") / Idx::nat(2), Idx::half_ceil(Idx::var("n")));
        for n in 0..8 {
            assert!(check_parity(&u, &Constr::Top, &goal, &[n], 8));
        }
        // Division by zero is ∞.
        let goal = Constr::eq(Idx::var("n") / Idx::zero(), Idx::infty());
        assert!(check_parity(&u, &Constr::Top, &goal, &[1], 8));
        // log2/pow2 parity, including the dyadic approximation path.
        let goal = Constr::leq(
            Idx::log2(Idx::var("n") + Idx::nat(3)),
            Idx::pow2(Idx::var("n")),
        );
        for n in 0..6 {
            check_parity(&u, &Constr::Top, &goal, &[n], 8);
        }
    }

    #[test]
    fn exact_fallback_for_non_integer_arithmetic() {
        // Thirds never hit the i64 fast path; the Rational fallback is exact.
        let goal = Constr::eq(
            Idx::nat(1) / Idx::nat(3) + Idx::nat(2) / Idx::nat(3),
            Idx::one(),
        );
        assert!(check_parity(&[], &Constr::Top, &goal, &[], 8));
        // pow2 saturates to ∞ outside 0..62, matching pow2_total.
        let goal = Constr::eq(Idx::pow2(Idx::nat(62)), Idx::infty());
        assert!(check_parity(&[], &Constr::Top, &goal, &[], 8));
        // ∞ is absorbing through the fallback, and large powers stay on the
        // fast path right up to the i64 edge.
        let goal = Constr::leq(
            Idx::pow2(Idx::nat(61)) + Idx::pow2(Idx::nat(61)),
            Idx::infty(),
        );
        assert!(check_parity(&[], &Constr::Top, &goal, &[], 8));
    }

    #[test]
    fn duplicate_universals_are_last_binding_wins() {
        let u = vec![(IdxVar::new("n"), Sort::Nat), (IdxVar::new("n"), Sort::Nat)];
        let goal = Constr::eq(Idx::var("n"), Idx::nat(7));
        // The tree env binds in list order, so the second value wins.
        assert!(check_parity(&u, &Constr::Top, &goal, &[3, 7], 8));
        assert!(!check_parity(&u, &Constr::Top, &goal, &[7, 3], 8));
    }

    #[test]
    fn frame_reuse_is_clean_across_points() {
        let u = nat_universals(&["n"]);
        let goal = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(
                Idx::var("i") + Idx::sum("j", Idx::zero(), Idx::var("n"), Idx::var("j")),
                Idx::var("n") * Idx::nat(2),
            ),
        );
        let q = compile_query(&u, &Constr::Top, &goal);
        let mut frame = q.new_frame();
        let env_result = |n: i64| {
            let env = IdxEnv::from_pairs([("n", Extended::from(n))]);
            goal.eval_bounded(&env, 8)
        };
        for n in 0..8 {
            let got = q.eval_point(&mut frame, &[Val::int(n)], 8);
            assert_eq!(got, env_result(n), "n = {n}");
        }
        // And in reverse order, exercising stale-state hazards.
        for n in (0..8).rev() {
            let got = q.eval_point(&mut frame, &[Val::int(n)], 8);
            assert_eq!(got, env_result(n), "n = {n} (reverse)");
        }
    }
}
