//! A sharded, thread-safe constraint-validity cache.
//!
//! The expensive step of the BiRelCost pipeline is discharging entailments
//! `∀ ∆. Φₐ ⟹ Φ` (the judgement the paper ships to Why3 + Alt-Ergo).  Those
//! queries are pure functions of the solver configuration, the universally
//! quantified context, the hypothesis constraint and the goal — and under
//! batch traffic the same sub-entailments recur constantly: identical
//! definitions submitted by different requests, shared library functions
//! re-checked per program, and repeated structural sub-goals within one
//! derivation.  Memoizing verdicts is therefore sound (the solver is
//! deterministic: its randomized numeric layer uses a fixed seed) and highly
//! effective.
//!
//! Lookups go through [`QueryRef`], a *borrowed* view of the query: the hot
//! path (a cache hit) hashes and compares in place and never clones the
//! hypothesis or goal.  An owned [`QueryKey`] is materialized only when a
//! computed verdict is stored.  Hashing is a stable FNV-1a over the canonical
//! structure (sorted, deduplicated universals; the simplified constraints the
//! solver works on) so shard selection is reproducible across processes; the
//! full key lives in the shard map, so hash collisions can never corrupt a
//! verdict.  Shards are bounded: when one fills up it is wholesale-cleared
//! (epoch eviction), which bounds daemon memory without LRU bookkeeping.
//! See DESIGN.md §5.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rel_index::{IdxVar, Sort};

use crate::constr::Constr;
use crate::solver::Validity;

/// A borrowed view of one entailment query `∀ universals. hyp ⟹ goal`,
/// bound to the fingerprint of the solver configuration answering it.
///
/// This is what the solver hands to [`ValidityCache::lookup`]: building it
/// allocates at most one small vec of references (for canonicalizing the
/// universals), never cloning constraints.
pub struct QueryRef<'a> {
    config_fingerprint: u64,
    /// Canonical universals: sorted by (name, sort), deduplicated.
    canonical_universals: Vec<&'a (IdxVar, Sort)>,
    hyp: &'a Constr,
    goal: &'a Constr,
}

impl<'a> QueryRef<'a> {
    /// Builds the canonical borrowed query.  For each variable *name* only
    /// the **last** binding is kept — the list is a prenex prefix built
    /// outermost-first, so a later binding of the same name shadows the
    /// earlier one completely (the solver's numeric layer binds its
    /// environment in list order, last wins).  The surviving bindings are
    /// then sorted: with every name unique, their order is semantically
    /// irrelevant.  `config_fingerprint` (see `SolveConfig::fingerprint`)
    /// keys the verdict to the configuration that produced it — solvers with
    /// different grids, seeds or decisiveness must not exchange verdicts
    /// even when they share a cache.
    pub fn new(
        config_fingerprint: u64,
        universals: &'a [(IdxVar, Sort)],
        hyp: &'a Constr,
        goal: &'a Constr,
    ) -> QueryRef<'a> {
        let mut canonical_universals: Vec<&(IdxVar, Sort)> = Vec::with_capacity(universals.len());
        for u in universals.iter().rev() {
            if !canonical_universals.iter().any(|kept| kept.0 == u.0) {
                canonical_universals.push(u);
            }
        }
        canonical_universals.sort();
        QueryRef {
            config_fingerprint,
            canonical_universals,
            hyp,
            goal,
        }
    }

    /// The stable 64-bit structural hash used for shard and bucket selection.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv1a::default();
        self.config_fingerprint.hash(&mut h);
        for u in &self.canonical_universals {
            u.hash(&mut h);
        }
        self.hyp.hash(&mut h);
        self.goal.hash(&mut h);
        h.finish()
    }

    pub(crate) fn matches(&self, key: &QueryKey) -> bool {
        self.config_fingerprint == key.config_fingerprint
            && self
                .canonical_universals
                .iter()
                .copied()
                .eq(key.universals.iter())
            && *self.hyp == key.hyp
            && *self.goal == key.goal
    }

    /// Materializes the owned key (done once per miss, on store).
    pub fn to_key(&self) -> QueryKey {
        QueryKey {
            config_fingerprint: self.config_fingerprint,
            universals: self
                .canonical_universals
                .iter()
                .map(|u| (*u).clone())
                .collect(),
            hyp: self.hyp.clone(),
            goal: self.goal.clone(),
        }
    }
}

impl fmt::Debug for QueryRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryRef(#{:016x})", self.stable_hash())
    }
}

/// The owned, canonical key of a memoized entailment query.
#[derive(Clone, PartialEq, Eq)]
pub struct QueryKey {
    config_fingerprint: u64,
    universals: Vec<(IdxVar, Sort)>,
    hyp: Constr,
    goal: Constr,
}

impl QueryKey {
    /// Builds the owned canonical key directly (tests and out-of-band
    /// cache population; the solver goes through [`QueryRef`]).
    pub fn new(
        config_fingerprint: u64,
        universals: &[(IdxVar, Sort)],
        hyp: &Constr,
        goal: &Constr,
    ) -> QueryKey {
        QueryRef::new(config_fingerprint, universals, hyp, goal).to_key()
    }

    /// Reassembles a key from decoded parts (snapshot loading).  The
    /// universals are re-canonicalized, so a key decoded from a well-formed
    /// snapshot is byte-for-byte the key that was serialized, and a key from
    /// a hand-built snapshot still upholds the canonical-form invariant.
    pub fn from_parts(
        config_fingerprint: u64,
        universals: Vec<(IdxVar, Sort)>,
        hyp: Constr,
        goal: Constr,
    ) -> QueryKey {
        QueryKey::new(config_fingerprint, &universals, &hyp, &goal)
    }

    /// The fingerprint of the solver configuration the verdict is keyed to.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// The canonical universally quantified context.
    pub fn universals(&self) -> &[(IdxVar, Sort)] {
        &self.universals
    }

    /// The hypothesis constraint.
    pub fn hyp(&self) -> &Constr {
        &self.hyp
    }

    /// The goal constraint.
    pub fn goal(&self) -> &Constr {
        &self.goal
    }

    /// The stable 64-bit structural hash (agrees with the borrowed view's).
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv1a::default();
        self.config_fingerprint.hash(&mut h);
        for u in &self.universals {
            u.hash(&mut h);
        }
        self.hyp.hash(&mut h);
        self.goal.hash(&mut h);
        h.finish()
    }

    #[cfg(test)]
    fn as_ref(&self) -> QueryRef<'_> {
        QueryRef {
            config_fingerprint: self.config_fingerprint,
            canonical_universals: self.universals.iter().collect(),
            hyp: &self.hyp,
            goal: &self.goal,
        }
    }
}

impl fmt::Debug for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryKey(#{:016x})", self.stable_hash())
    }
}

/// FNV-1a: a stable hasher, unlike `DefaultHasher` whose keys are
/// unspecified.  Shared by the cache, `SolveConfig::fingerprint`, the
/// engine's per-definition input hashes and the snapshot checksum of
/// `rel-persist` — every hash that must be reproducible across processes.
#[derive(Default)]
pub struct Fnv1a {
    state: u64,
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        // An unseeded FNV state of 0 would map the empty input to 0; start
        // from the standard offset basis.
        self.state ^ 0xcbf2_9ce4_8422_2325
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.state ^ 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.state = h ^ 0xcbf2_9ce4_8422_2325;
    }
}

/// Counters describing cache effectiveness (monotone, process-wide).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a memoized verdict.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Number of verdicts currently stored.
    pub entries: u64,
    /// Shard-clear evictions triggered by the per-shard capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `0` when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The interface the solver consults before running an entailment query.
///
/// Implementations must be thread-safe: one cache instance is shared across
/// all workers of a batch run.
pub trait ValidityCache: Send + Sync + fmt::Debug {
    /// Returns the memoized verdict for the query, if any, updating hit/miss
    /// counters.  Must not clone the query's constraints on the hit path.
    fn lookup(&self, query: &QueryRef<'_>) -> Option<Validity>;

    /// Memoizes a verdict.
    fn store(&self, query: &QueryRef<'_>, verdict: Validity);

    /// Current effectiveness counters.
    fn stats(&self) -> CacheStats;
}

type Bucket = Vec<(QueryKey, Validity)>;

/// One lockable shard: hash-bucketed verdicts plus a maintained entry count
/// (so the capacity check on store is O(1), not a scan over all buckets).
#[derive(Default)]
struct Shard {
    buckets: HashMap<u64, Bucket>,
    len: usize,
}

/// The default [`ValidityCache`]: N independently locked shards selected by
/// the query's stable hash, each a hash-bucketed map with a capacity bound.
///
/// When a shard reaches its per-shard entry cap it is wholesale-cleared
/// before the insert (epoch eviction): O(1) amortized, no recency
/// bookkeeping, and memory stays bounded for long-running daemons.  Under
/// the bound, a working set that fits is never evicted.
pub struct ShardedValidityCache {
    shards: Vec<Mutex<Shard>>,
    max_entries_per_shard: usize,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Store notification hook (WAL durability): called on every store,
    /// *before* the shard lock is taken, so the observer may itself inspect
    /// the cache or take unrelated locks without deadlocking.
    observer: std::sync::RwLock<Option<StoreObserver>>,
}

/// A callback notified of every verdict store (key + verdict).  Attached by
/// the persistence layer so each freshly computed verdict can be appended
/// to a write-ahead log the moment it is memoized.
pub type StoreObserver = std::sync::Arc<dyn Fn(&QueryKey, &Validity) + Send + Sync>;

impl ShardedValidityCache {
    /// Default shard count (16) and per-shard capacity (16 384 verdicts,
    /// i.e. at most ~262 k memoized verdicts before epoch eviction).
    pub fn new() -> ShardedValidityCache {
        ShardedValidityCache::with_shards(16)
    }

    /// A cache with an explicit shard count and the default capacity.
    pub fn with_shards(n: usize) -> ShardedValidityCache {
        ShardedValidityCache::with_shards_and_capacity(n, 16_384)
    }

    /// A cache with explicit shard count and per-shard entry cap (both
    /// rounded up to at least 1).
    pub fn with_shards_and_capacity(
        n: usize,
        max_entries_per_shard: usize,
    ) -> ShardedValidityCache {
        let n = n.max(1);
        ShardedValidityCache {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            max_entries_per_shard: max_entries_per_shard.max(1),
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            observer: std::sync::RwLock::new(None),
        }
    }

    /// Attaches (or with `None`, detaches) the store-notification hook.
    /// Callers restoring persisted state into the cache must attach the
    /// observer *after* the restore, or every replayed verdict re-enters
    /// the log it came from.
    pub fn set_store_observer(&self, observer: Option<StoreObserver>) {
        *self.observer.write().expect("cache observer poisoned") = observer;
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Drops every memoized verdict (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.buckets.clear();
            self.entries.fetch_sub(shard.len as u64, Ordering::Relaxed);
            shard.len = 0;
        }
    }

    /// Clones out every memoized verdict (snapshot saving).  Entries are
    /// returned in a deterministic order — shards in index order, buckets by
    /// hash, entries in insertion order — so two exports of the same cache
    /// contents serialize identically.
    pub fn export_entries(&self) -> Vec<(QueryKey, Validity)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut hashes: Vec<u64> = shard.buckets.keys().copied().collect();
            hashes.sort_unstable();
            for h in hashes {
                for (k, v) in &shard.buckets[&h] {
                    out.push((k.clone(), v.clone()));
                }
            }
        }
        out
    }

    /// Whether a verdict is memoized under `key`, without touching the
    /// hit/miss counters (replication dedup: an already-present key is a
    /// duplicate to drop, not a cache miss to report).
    pub fn contains_key(&self, key: &QueryKey) -> bool {
        let hash = key.stable_hash();
        let shard = self.shard(hash).lock().expect("cache shard poisoned");
        shard
            .buckets
            .get(&hash)
            .is_some_and(|bucket| bucket.iter().any(|(k, _)| k == key))
    }

    /// Stores a verdict under an owned key (out-of-band population; the
    /// solver path goes through [`ValidityCache::store`]).
    pub fn store_key(&self, key: QueryKey, verdict: Validity) {
        // Notify before the insert, with no shard lock held: the observer
        // (a WAL append) may block on I/O, and a durability log written
        // before the in-memory store can at worst carry a verdict the
        // memory never served — harmless, since replay is idempotent and
        // the verdict itself is correct either way.
        if let Some(observer) = self
            .observer
            .read()
            .expect("cache observer poisoned")
            .clone()
        {
            observer(&key, &verdict);
        }
        let hash = key.stable_hash();
        let mut shard = self.shard(hash).lock().expect("cache shard poisoned");
        if shard.len >= self.max_entries_per_shard {
            shard.buckets.clear();
            self.entries.fetch_sub(shard.len as u64, Ordering::Relaxed);
            shard.len = 0;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = shard.buckets.entry(hash).or_default();
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = verdict,
            None => {
                bucket.push((key, verdict));
                shard.len += 1;
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Default for ShardedValidityCache {
    fn default() -> Self {
        ShardedValidityCache::new()
    }
}

impl fmt::Debug for ShardedValidityCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("ShardedValidityCache")
            .field("shards", &self.shards.len())
            .field("max_entries_per_shard", &self.max_entries_per_shard)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

impl ValidityCache for ShardedValidityCache {
    fn lookup(&self, query: &QueryRef<'_>) -> Option<Validity> {
        let hash = query.stable_hash();
        let shard = self.shard(hash).lock().expect("cache shard poisoned");
        let found = shard
            .buckets
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|(k, _)| query.matches(k)))
            .map(|(_, v)| v.clone());
        drop(shard);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, query: &QueryRef<'_>, verdict: Validity) {
        self.store_key(query.to_key(), verdict);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_index::Idx;
    use std::sync::Arc;

    const CFG: u64 = 0x5EED;

    fn goal(rhs: u64) -> Constr {
        Constr::leq(Idx::var("n"), Idx::nat(rhs))
    }

    fn key(goal_rhs: u64) -> QueryKey {
        QueryKey::new(
            CFG,
            &[(IdxVar::new("n"), Sort::Nat)],
            &Constr::Top,
            &goal(goal_rhs),
        )
    }

    fn lookup_key(cache: &ShardedValidityCache, key: &QueryKey) -> Option<Validity> {
        cache.lookup(&key.as_ref())
    }

    #[test]
    fn canonicalization_ignores_universal_order_and_duplicates() {
        let a = QueryKey::new(
            CFG,
            &[
                (IdxVar::new("n"), Sort::Nat),
                (IdxVar::new("a"), Sort::Nat),
                (IdxVar::new("n"), Sort::Nat),
            ],
            &Constr::Top,
            &Constr::Top,
        );
        let b = QueryKey::new(
            CFG,
            &[(IdxVar::new("a"), Sort::Nat), (IdxVar::new("n"), Sort::Nat)],
            &Constr::Top,
            &Constr::Top,
        );
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn borrowed_and_owned_views_agree() {
        let universals = [
            (IdxVar::new("n"), Sort::Nat),
            (IdxVar::new("a"), Sort::Nat),
            (IdxVar::new("n"), Sort::Nat),
        ];
        let hyp = Constr::Top;
        let g = goal(4);
        let q = QueryRef::new(CFG, &universals, &hyp, &g);
        let k = q.to_key();
        assert_eq!(q.stable_hash(), k.stable_hash());
        assert!(q.matches(&k));
    }

    #[test]
    fn shadowed_quantifiers_keep_only_the_innermost_binding() {
        let g = goal(3);
        // ∀ n::Nat. ∀ n::Real — the inner Real binding shadows the Nat one…
        let nat_then_real = [
            (IdxVar::new("n"), Sort::Nat),
            (IdxVar::new("n"), Sort::Real),
        ];
        // …and the reverse nesting shadows the other way round.
        let real_then_nat = [
            (IdxVar::new("n"), Sort::Real),
            (IdxVar::new("n"), Sort::Nat),
        ];
        let a = QueryKey::new(CFG, &nat_then_real, &Constr::Top, &g);
        let b = QueryKey::new(CFG, &real_then_nat, &Constr::Top, &g);
        assert_ne!(a, b, "different innermost sorts must not share a key");
        // Each agrees with the single-binding form of its innermost sort.
        let real_only = [(IdxVar::new("n"), Sort::Real)];
        assert_eq!(a, QueryKey::new(CFG, &real_only, &Constr::Top, &g));
        let cache = ShardedValidityCache::new();
        cache.store_key(a, Validity::proved());
        assert!(lookup_key(&cache, &b).is_none());
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        assert_ne!(key(1), key(2));
        assert_ne!(key(1).stable_hash(), key(2).stable_hash());
    }

    #[test]
    fn different_solver_configs_do_not_share_verdicts() {
        let a = QueryKey::new(1, &[], &Constr::Top, &Constr::Bot);
        let b = QueryKey::new(2, &[], &Constr::Top, &Constr::Bot);
        assert_ne!(a, b);
        let cache = ShardedValidityCache::new();
        cache.store_key(a, Validity::proved());
        assert!(lookup_key(&cache, &b).is_none());
    }

    #[test]
    fn lookup_store_roundtrip_and_counters() {
        let cache = ShardedValidityCache::new();
        assert!(lookup_key(&cache, &key(1)).is_none());
        cache.store_key(key(1), Validity::proved());
        assert_eq!(lookup_key(&cache, &key(1)), Some(Validity::proved()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = ShardedValidityCache::with_shards(4);
        cache.store_key(key(1), Validity::proved());
        cache.store_key(key(2), Validity::Invalid(None));
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert!(lookup_key(&cache, &key(1)).is_none());
    }

    #[test]
    fn capacity_bound_evicts_by_clearing_the_full_shard() {
        // One shard, room for 4 verdicts: the 5th insert clears the shard.
        let cache = ShardedValidityCache::with_shards_and_capacity(1, 4);
        for i in 0..5 {
            cache.store_key(key(i), Validity::proved());
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 1, "only the post-eviction insert remains");
        assert_eq!(lookup_key(&cache, &key(4)), Some(Validity::proved()));
        assert!(lookup_key(&cache, &key(0)).is_none());
    }

    #[test]
    fn restore_overwrites_without_duplicating() {
        let cache = ShardedValidityCache::new();
        cache.store_key(key(1), Validity::proved());
        cache.store_key(key(1), Validity::Invalid(None));
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(lookup_key(&cache, &key(1)), Some(Validity::Invalid(None)));
    }

    #[test]
    fn concurrent_writers_and_readers_agree() {
        let cache = Arc::new(ShardedValidityCache::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..64 {
                    let k = key(t * 64 + i);
                    cache.store_key(k.clone(), Validity::proved());
                    assert_eq!(lookup_key(&cache, &k), Some(Validity::proved()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 8 * 64);
    }
}
