//! Hash-consed constraints: an arena interner with `u32` node ids.
//!
//! PR 2 interned *index terms* (`rel_index::IdxPool`) because the solver
//! normalizes the same sub-terms at every decomposition level.  The same
//! argument applies one layer up: the solver simplifies the same *constraint*
//! trees over and over — every candidate substitution in `exelim` re-enters
//! `Solver::entails_no_exists`, which re-simplifies an instantiated matrix
//! whose subtrees are largely unchanged, and structurally identical goals
//! recur across the sub-derivations of one definition.  [`CPool`] stores each
//! distinct constraint exactly once in a flat arena:
//!
//! * **O(1) structural equality** — two constraints are equal iff their
//!   [`CId`]s are equal (interning deduplicates identical subtrees);
//! * **cached free-variable sets** — computed bottom-up once per node at
//!   interning time, shared via `Arc` between nodes (this is what makes the
//!   quantifier-dropping folds and the substitution pruning O(1));
//! * **memoized `simplify`** — the pool mirrors the fold rules of
//!   [`crate::solver::simplify_tree`] exactly, computed once per node and
//!   reused for every later occurrence of the same sub-constraint;
//! * **substitution with sharing** — [`CPool::subst_all`] memoizes per call
//!   and skips (in O(1)) every subtree that mentions no substituted
//!   variable, so re-instantiating a matrix per `exelim` candidate touches
//!   only the nodes that actually change.
//!
//! Index-term leaves are interned in an embedded [`IdxPool`], so comparison
//! normalization inside `simplify` is memoized too.  The differential
//! property tests below pin the pooled implementations to the tree ones
//! node for node.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use rel_index::{Idx, IdxId, IdxPool, IdxVar, Sort};

use crate::constr::Constr;

/// A handle to an interned constraint.  Ids are only meaningful relative to
/// the [`CPool`] that produced them; two ids from the same pool are equal iff
/// the constraints are structurally equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CId(u32);

impl CId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One arena node: the [`Constr`] constructors with children replaced by ids
/// (constraint children by [`CId`], index-term children by [`IdxId`] into
/// the pool's embedded [`IdxPool`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CNode {
    /// `tt`.
    Top,
    /// `ff`.
    Bot,
    /// `a = b`.
    Eq(IdxId, IdxId),
    /// `a ≤ b`.
    Leq(IdxId, IdxId),
    /// `a < b`.
    Lt(IdxId, IdxId),
    /// Conjunction.
    And(Vec<CId>),
    /// Disjunction.
    Or(Vec<CId>),
    /// Negation.
    Not(CId),
    /// Implication.
    Implies(CId, CId),
    /// Universal quantification.
    Forall(IdxVar, Sort, CId),
    /// Existential quantification.
    Exists(IdxVar, Sort, CId),
}

fn node_hash(node: &CNode) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.hash(&mut h);
    h.finish()
}

/// A hash-consing arena for constraints.
#[derive(Debug, Default)]
pub struct CPool {
    /// Interner for the index terms appearing in comparisons.
    idx: IdxPool,
    nodes: Vec<CNode>,
    /// Dedup index: node hash → candidate ids, verified against the arena
    /// (hash collisions cannot alias nodes).
    ids: HashMap<u64, Vec<CId>>,
    free_vars: Vec<Arc<BTreeSet<IdxVar>>>,
    simp_memo: Vec<Option<CId>>,
}

impl CPool {
    /// An empty pool.
    pub fn new() -> CPool {
        CPool::default()
    }

    /// Number of distinct constraint nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no constraints have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total arena footprint (constraint nodes plus embedded index-term
    /// nodes) — the measure the thread-local pool's epoch eviction watches.
    pub fn total_nodes(&self) -> usize {
        self.nodes.len() + self.idx.len()
    }

    /// The node behind an id.
    pub fn node(&self, id: CId) -> &CNode {
        &self.nodes[id.index()]
    }

    /// Interns a node, deduplicating against all earlier nodes.
    pub fn intern_node(&mut self, node: CNode) -> CId {
        let hash = node_hash(&node);
        if let Some(bucket) = self.ids.get(&hash) {
            if let Some(&id) = bucket.iter().find(|id| self.nodes[id.index()] == node) {
                return id;
            }
        }
        let id = CId(u32::try_from(self.nodes.len()).expect("constraint pool overflow"));
        let fv = self.compute_free_vars(&node);
        self.nodes.push(node);
        self.ids.entry(hash).or_default().push(id);
        self.free_vars.push(fv);
        self.simp_memo.push(None);
        id
    }

    /// Interns a tree constraint bottom-up, sharing every duplicated subtree.
    pub fn intern(&mut self, c: &Constr) -> CId {
        let node = match c {
            Constr::Top => CNode::Top,
            Constr::Bot => CNode::Bot,
            Constr::Eq(a, b) => CNode::Eq(self.idx.intern(a), self.idx.intern(b)),
            Constr::Leq(a, b) => CNode::Leq(self.idx.intern(a), self.idx.intern(b)),
            Constr::Lt(a, b) => CNode::Lt(self.idx.intern(a), self.idx.intern(b)),
            Constr::And(cs) => CNode::And(cs.iter().map(|c| self.intern(c)).collect()),
            Constr::Or(cs) => CNode::Or(cs.iter().map(|c| self.intern(c)).collect()),
            Constr::Not(c) => CNode::Not(self.intern(c)),
            Constr::Implies(a, b) => CNode::Implies(self.intern(a), self.intern(b)),
            Constr::Forall(q, c) => CNode::Forall(q.var.clone(), q.sort, self.intern(c)),
            Constr::Exists(q, c) => CNode::Exists(q.var.clone(), q.sort, self.intern(c)),
        };
        self.intern_node(node)
    }

    /// Reconstructs the tree form of an interned constraint.
    pub fn to_constr(&self, id: CId) -> Constr {
        use crate::constr::Quantified;
        match self.node(id).clone() {
            CNode::Top => Constr::Top,
            CNode::Bot => Constr::Bot,
            CNode::Eq(a, b) => Constr::Eq(self.idx.to_idx(a), self.idx.to_idx(b)),
            CNode::Leq(a, b) => Constr::Leq(self.idx.to_idx(a), self.idx.to_idx(b)),
            CNode::Lt(a, b) => Constr::Lt(self.idx.to_idx(a), self.idx.to_idx(b)),
            CNode::And(cs) => Constr::And(cs.iter().map(|&c| self.to_constr(c)).collect()),
            CNode::Or(cs) => Constr::Or(cs.iter().map(|&c| self.to_constr(c)).collect()),
            CNode::Not(c) => Constr::Not(Box::new(self.to_constr(c))),
            CNode::Implies(a, b) => {
                Constr::Implies(Box::new(self.to_constr(a)), Box::new(self.to_constr(b)))
            }
            CNode::Forall(v, s, c) => {
                Constr::Forall(Quantified::new(v, s), Box::new(self.to_constr(c)))
            }
            CNode::Exists(v, s, c) => {
                Constr::Exists(Quantified::new(v, s), Box::new(self.to_constr(c)))
            }
        }
    }

    /// The cached free-variable set of an interned constraint.
    pub fn free_vars(&self, id: CId) -> &Arc<BTreeSet<IdxVar>> {
        &self.free_vars[id.index()]
    }

    fn compute_free_vars(&self, node: &CNode) -> Arc<BTreeSet<IdxVar>> {
        let union2 = |a: &Arc<BTreeSet<IdxVar>>, b: &Arc<BTreeSet<IdxVar>>| {
            if b.is_subset(a) {
                Arc::clone(a)
            } else if a.is_subset(b) {
                Arc::clone(b)
            } else {
                Arc::new(a.union(b).cloned().collect())
            }
        };
        match node {
            CNode::Top | CNode::Bot => Arc::new(BTreeSet::new()),
            CNode::Eq(a, b) | CNode::Leq(a, b) | CNode::Lt(a, b) => {
                union2(self.idx.free_vars(*a), self.idx.free_vars(*b))
            }
            CNode::And(cs) | CNode::Or(cs) => match cs.as_slice() {
                [] => Arc::new(BTreeSet::new()),
                [first, rest @ ..] => {
                    let mut acc = Arc::clone(&self.free_vars[first.index()]);
                    for c in rest {
                        acc = union2(&acc, &self.free_vars[c.index()]);
                    }
                    acc
                }
            },
            CNode::Not(c) => Arc::clone(&self.free_vars[c.index()]),
            CNode::Implies(a, b) => union2(&self.free_vars[a.index()], &self.free_vars[b.index()]),
            CNode::Forall(v, _, c) | CNode::Exists(v, _, c) => {
                let inner = &self.free_vars[c.index()];
                if inner.contains(v) {
                    Arc::new(inner.iter().filter(|w| *w != v).cloned().collect())
                } else {
                    Arc::clone(inner)
                }
            }
        }
    }

    /// Returns `true` when the variable occurs free in the constraint —
    /// O(log n) against the cached set, never a tree walk.
    pub fn mentions(&self, id: CId, v: &IdxVar) -> bool {
        self.free_vars[id.index()].contains(v)
    }

    // ----------------------------------------------------------------------
    // Connective folds (the id-level mirrors of `Constr::and`/`or`/…)
    // ----------------------------------------------------------------------

    fn top(&mut self) -> CId {
        self.intern_node(CNode::Top)
    }

    fn bot(&mut self) -> CId {
        self.intern_node(CNode::Bot)
    }

    /// Conjunction with the exact unit/flattening rules of [`Constr::and`].
    fn and(&mut self, a: CId, b: CId) -> CId {
        match (self.node(a).clone(), self.node(b).clone()) {
            (CNode::Top, _) => b,
            (_, CNode::Top) => a,
            (CNode::Bot, _) | (_, CNode::Bot) => self.bot(),
            (CNode::And(mut xs), CNode::And(ys)) => {
                xs.extend(ys);
                self.intern_node(CNode::And(xs))
            }
            (CNode::And(mut xs), _) => {
                xs.push(b);
                self.intern_node(CNode::And(xs))
            }
            (_, CNode::And(mut ys)) => {
                ys.insert(0, a);
                self.intern_node(CNode::And(ys))
            }
            _ => self.intern_node(CNode::And(vec![a, b])),
        }
    }

    /// Disjunction with the exact unit/flattening rules of [`Constr::or`].
    fn or(&mut self, a: CId, b: CId) -> CId {
        match (self.node(a).clone(), self.node(b).clone()) {
            (CNode::Bot, _) => b,
            (_, CNode::Bot) => a,
            (CNode::Top, _) | (_, CNode::Top) => self.top(),
            (CNode::Or(mut xs), CNode::Or(ys)) => {
                xs.extend(ys);
                self.intern_node(CNode::Or(xs))
            }
            (CNode::Or(mut xs), _) => {
                xs.push(b);
                self.intern_node(CNode::Or(xs))
            }
            (_, CNode::Or(mut ys)) => {
                ys.insert(0, a);
                self.intern_node(CNode::Or(ys))
            }
            _ => self.intern_node(CNode::Or(vec![a, b])),
        }
    }

    /// Negation with the comparison-flipping rules of [`Constr::negate`].
    fn negate(&mut self, id: CId) -> CId {
        match self.node(id).clone() {
            CNode::Top => self.bot(),
            CNode::Bot => self.top(),
            CNode::Not(c) => c,
            CNode::Leq(a, b) => self.intern_node(CNode::Lt(b, a)),
            CNode::Lt(a, b) => self.intern_node(CNode::Leq(b, a)),
            _ => self.intern_node(CNode::Not(id)),
        }
    }

    /// Implication with the unit rules of [`Constr::implies`].
    fn implies(&mut self, a: CId, b: CId) -> CId {
        match (self.node(a), self.node(b)) {
            (CNode::Top, _) => b,
            (CNode::Bot, _) => self.top(),
            (_, CNode::Top) => self.top(),
            _ => self.intern_node(CNode::Implies(a, b)),
        }
    }

    /// Quantification, dropped when the variable does not occur (the
    /// [`Constr::forall`]/[`Constr::exists`] smart constructors) — O(1)
    /// against the cached free-variable set.
    fn quantify(&mut self, forall: bool, v: IdxVar, s: Sort, body: CId) -> CId {
        if !self.mentions(body, &v) {
            return body;
        }
        self.intern_node(if forall {
            CNode::Forall(v, s, body)
        } else {
            CNode::Exists(v, s, body)
        })
    }

    // ----------------------------------------------------------------------
    // Memoized simplification
    // ----------------------------------------------------------------------

    /// Memoized constant-folding simplification, mirroring the fold rules of
    /// [`crate::solver::simplify_tree`] exactly (pinned by the differential
    /// property test below).  Comparison sides normalize through the
    /// embedded [`IdxPool`], so their folds are memoized too.
    pub fn simplify(&mut self, id: CId) -> CId {
        if let Some(s) = self.simp_memo[id.index()] {
            return s;
        }
        let result = match self.node(id).clone() {
            CNode::Top | CNode::Bot => id,
            CNode::Eq(a, b) => {
                let (na, nb) = (self.idx.normalize(a), self.idx.normalize(b));
                match (self.idx.as_const(na), self.idx.as_const(nb)) {
                    (Some(x), Some(y)) => {
                        if x == y {
                            self.top()
                        } else {
                            self.bot()
                        }
                    }
                    _ => {
                        if na == nb {
                            self.top()
                        } else {
                            self.intern_node(CNode::Eq(na, nb))
                        }
                    }
                }
            }
            CNode::Leq(a, b) => {
                let (na, nb) = (self.idx.normalize(a), self.idx.normalize(b));
                match (self.idx.as_const(na), self.idx.as_const(nb)) {
                    (Some(x), Some(y)) => {
                        if x <= y {
                            self.top()
                        } else {
                            self.bot()
                        }
                    }
                    _ => {
                        if na == nb {
                            self.top()
                        } else {
                            self.intern_node(CNode::Leq(na, nb))
                        }
                    }
                }
            }
            CNode::Lt(a, b) => {
                let (na, nb) = (self.idx.normalize(a), self.idx.normalize(b));
                match (self.idx.as_const(na), self.idx.as_const(nb)) {
                    (Some(x), Some(y)) => {
                        if x < y {
                            self.top()
                        } else {
                            self.bot()
                        }
                    }
                    _ => self.intern_node(CNode::Lt(na, nb)),
                }
            }
            CNode::And(cs) => {
                let mut acc = self.top();
                for c in cs {
                    let s = self.simplify(c);
                    acc = self.and(acc, s);
                }
                acc
            }
            CNode::Or(cs) => {
                let mut acc = self.bot();
                for c in cs {
                    let s = self.simplify(c);
                    acc = self.or(acc, s);
                }
                acc
            }
            // Same double-step as the tree version: `negate` flips
            // comparisons without re-folding, so the flipped form is
            // simplified once more; a `Not` result is the opaque case whose
            // operand is already simplified (recursing would loop).
            CNode::Not(c) => {
                let s = self.simplify(c);
                let negated = self.negate(s);
                match self.node(negated) {
                    CNode::Not(_) => negated,
                    _ => self.simplify(negated),
                }
            }
            CNode::Implies(a, b) => {
                let (sa, sb) = (self.simplify(a), self.simplify(b));
                self.implies(sa, sb)
            }
            CNode::Forall(v, s, c) => {
                let body = self.simplify(c);
                self.quantify(true, v, s, body)
            }
            CNode::Exists(v, s, c) => {
                let body = self.simplify(c);
                self.quantify(false, v, s, body)
            }
        };
        self.simp_memo[id.index()] = Some(result);
        // Simplification is idempotent; seed the memo for the result.
        self.simp_memo[result.index()] = Some(result);
        result
    }

    // ----------------------------------------------------------------------
    // Simultaneous substitution
    // ----------------------------------------------------------------------

    /// Simultaneous substitution with the semantics (and precondition) of
    /// [`Constr::subst_all`]: no replacement may mention a substituted
    /// variable.  Memoized per call, and every subtree whose cached
    /// free-variable set is disjoint from the substituted variables is
    /// returned unchanged in O(1) — re-instantiating an `exelim` matrix for
    /// the next candidate touches only the nodes that actually change.
    pub fn subst_all(&mut self, id: CId, map: &BTreeMap<IdxVar, Idx>) -> CId {
        debug_assert!(
            map.values().all(|r| map.keys().all(|k| !r.mentions(k))),
            "subst_all replacements must not mention substituted variables"
        );
        if map.is_empty() {
            return id;
        }
        let mut memo = HashMap::new();
        self.subst_all_inner(id, map, &mut memo)
    }

    fn subst_all_inner(
        &mut self,
        id: CId,
        map: &BTreeMap<IdxVar, Idx>,
        memo: &mut HashMap<CId, CId>,
    ) -> CId {
        if map.keys().all(|v| !self.mentions(id, v)) {
            return id;
        }
        if let Some(&done) = memo.get(&id) {
            return done;
        }
        let result = match self.node(id).clone() {
            CNode::Top | CNode::Bot => id,
            CNode::Eq(a, b) => {
                let (a, b) = (self.subst_idx(a, map), self.subst_idx(b, map));
                self.intern_node(CNode::Eq(a, b))
            }
            CNode::Leq(a, b) => {
                let (a, b) = (self.subst_idx(a, map), self.subst_idx(b, map));
                self.intern_node(CNode::Leq(a, b))
            }
            CNode::Lt(a, b) => {
                let (a, b) = (self.subst_idx(a, map), self.subst_idx(b, map));
                self.intern_node(CNode::Lt(a, b))
            }
            CNode::And(cs) => {
                let cs = cs
                    .into_iter()
                    .map(|c| self.subst_all_inner(c, map, memo))
                    .collect();
                self.intern_node(CNode::And(cs))
            }
            CNode::Or(cs) => {
                let cs = cs
                    .into_iter()
                    .map(|c| self.subst_all_inner(c, map, memo))
                    .collect();
                self.intern_node(CNode::Or(cs))
            }
            CNode::Not(c) => {
                let c = self.subst_all_inner(c, map, memo);
                self.intern_node(CNode::Not(c))
            }
            CNode::Implies(a, b) => {
                let (a, b) = (
                    self.subst_all_inner(a, map, memo),
                    self.subst_all_inner(b, map, memo),
                );
                self.intern_node(CNode::Implies(a, b))
            }
            CNode::Forall(v, _, _) | CNode::Exists(v, _, _) => {
                if map.contains_key(&v) || map.values().any(|r| r.mentions(&v)) {
                    // Shadowing or capture risk: defer to the tree's
                    // capture-avoiding pairwise substitution, exactly as
                    // `Constr::subst_all_inner` does.
                    let tree = self.to_constr(id);
                    let substituted = map.iter().fold(tree, |acc, (var, idx)| acc.subst(var, idx));
                    self.intern(&substituted)
                } else {
                    match self.node(id).clone() {
                        CNode::Forall(v, s, c) => {
                            let c = self.subst_all_inner(c, map, memo);
                            self.intern_node(CNode::Forall(v, s, c))
                        }
                        CNode::Exists(v, s, c) => {
                            let c = self.subst_all_inner(c, map, memo);
                            self.intern_node(CNode::Exists(v, s, c))
                        }
                        _ => unreachable!(),
                    }
                }
            }
        };
        memo.insert(id, result);
        result
    }

    /// Substitution at a comparison leaf: through the tree representation
    /// (index terms are small next to the constraint above them; the
    /// constraint-level memo and free-variable pruning carry the win).
    fn subst_idx(&mut self, id: IdxId, map: &BTreeMap<IdxVar, Idx>) -> IdxId {
        if map.keys().all(|v| !self.idx.free_vars(id).contains(v)) {
            return id;
        }
        let tree = self.idx.to_idx(id).subst_all(map);
        self.idx.intern(&tree)
    }
}

/// Node-count cap for the shared per-thread pool; past it the pool is
/// dropped wholesale (epoch eviction, the same policy as `IdxPool`'s
/// thread-local pool and the validity-cache shards).
const THREAD_CPOOL_MAX_NODES: usize = 1 << 20;

thread_local! {
    static THREAD_CPOOL: std::cell::RefCell<CPool> = std::cell::RefCell::new(CPool::new());
}

fn with_thread_pool<R>(f: impl FnOnce(&mut CPool) -> R) -> R {
    THREAD_CPOOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.total_nodes() > THREAD_CPOOL_MAX_NODES {
            *pool = CPool::new();
        }
        f(&mut pool)
    })
}

/// Simplifies through the calling thread's shared pool: repeated
/// simplification of the same (sub-)constraints — every `entails` entry
/// point canonicalizes its goal, and `exelim` re-enters per candidate —
/// reduces to memo lookups instead of tree rebuilds.  Produces exactly the
/// same constraint as the tree-walking [`crate::solver::simplify_tree`].
pub fn simplify_cached(c: &Constr) -> Constr {
    with_thread_pool(|pool| {
        let id = pool.intern(c);
        let simplified = pool.simplify(id);
        if simplified == id {
            // Already in normal form: share the input instead of rebuilding.
            c.clone()
        } else {
            pool.to_constr(simplified)
        }
    })
}

/// [`Constr::subst_all`] through the thread's shared pool: the matrix is
/// interned once (amortized across `exelim` candidates) and each
/// substitution touches only the subtrees that mention a substituted
/// variable.
pub fn subst_all_cached(c: &Constr, map: &BTreeMap<IdxVar, Idx>) -> Constr {
    with_thread_pool(|pool| {
        let id = pool.intern(c);
        let substituted = pool.subst_all(id, map);
        if substituted == id {
            c.clone()
        } else {
            pool.to_constr(substituted)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constr::Quantified;
    use crate::solver::simplify_tree;
    use proptest::prelude::*;
    use rel_index::Rational;

    fn n(v: &str) -> Idx {
        Idx::var(v)
    }

    #[test]
    fn interning_deduplicates_and_ids_decide_equality() {
        let mut pool = CPool::new();
        let a = Constr::leq(n("a"), n("b") + Idx::one());
        let b = Constr::leq(n("a"), n("b") + Idx::one());
        let c = Constr::leq(n("a"), n("b") + Idx::nat(2));
        assert_eq!(pool.intern(&a), pool.intern(&b));
        assert_ne!(pool.intern(&a), pool.intern(&c));
        // Shared sub-constraints are stored once.
        let before = pool.len();
        pool.intern(&a.clone().and(c.clone()));
        // Only the And node is new: both conjuncts were already interned.
        assert_eq!(pool.len(), before + 1);
    }

    #[test]
    fn round_trip_preserves_constraints() {
        let mut pool = CPool::new();
        let c = Constr::exists(
            "i",
            Sort::Nat,
            Constr::eq(n("i"), n("n") + Idx::one())
                .and(Constr::lt(Idx::zero(), n("i")).or(Constr::Bot))
                .and(Constr::forall(
                    "m",
                    Sort::Real,
                    Constr::leq(n("m"), n("i")).implies(Constr::Top.negate()),
                )),
        );
        let id = pool.intern(&c);
        assert_eq!(pool.to_constr(id), c);
    }

    #[test]
    fn free_vars_match_tree_and_respect_binders() {
        let mut pool = CPool::new();
        let c = Constr::exists(
            "b",
            Sort::Nat,
            Constr::eq(n("b"), n("a") + Idx::one()).and(Constr::leq(n("c"), n("b"))),
        );
        let id = pool.intern(&c);
        assert_eq!(**pool.free_vars(id), c.free_vars());
        assert!(pool.mentions(id, &IdxVar::new("a")));
        assert!(!pool.mentions(id, &IdxVar::new("b")));
    }

    #[test]
    fn subst_all_handles_quantifier_shadowing_like_the_tree() {
        let mut pool = CPool::new();
        // Substituting under a binder of the same name must not touch the
        // bound occurrences; substituting a term mentioning the bound
        // variable must rename (both delegated to the tree's
        // capture-avoiding path, like `Constr::subst_all`).
        let c = Constr::exists("b", Sort::Nat, Constr::eq(n("b"), n("a")));
        let shadow: BTreeMap<IdxVar, Idx> = [(IdxVar::new("b"), Idx::nat(7))].into();
        let id = pool.intern(&c);
        let out = pool.subst_all(id, &shadow);
        assert_eq!(pool.to_constr(out), c.subst_all(&shadow));
        let capture: BTreeMap<IdxVar, Idx> = [(IdxVar::new("a"), n("b") + Idx::one())].into();
        let out = pool.subst_all(id, &capture);
        assert_eq!(pool.to_constr(out), c.subst_all(&capture));
    }

    fn arb_idx() -> impl Strategy<Value = Idx> {
        let leaf = prop_oneof![
            (0u64..5).prop_map(Idx::nat),
            Just(Idx::Const(Rational::new(1, 2))),
            Just(Idx::infty()),
            Just(Idx::var("n")),
            Just(Idx::var("a")),
            Just(Idx::var("b")),
        ];
        leaf.prop_recursive(2, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Idx::min(a, b)),
                inner.clone().prop_map(Idx::ceil),
                inner.clone().prop_map(|a| a / Idx::nat(2)),
            ]
        })
    }

    fn arb_constr() -> impl Strategy<Value = Constr> {
        let cmp = prop_oneof![
            Just(Constr::Top),
            Just(Constr::Bot),
            (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::eq(a, b)),
            (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::leq(a, b)),
            (arb_idx(), arb_idx()).prop_map(|(a, b)| Constr::lt(a, b)),
        ];
        cmp.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), 0usize..3).prop_map(|(a, b, k)| {
                    Constr::And(vec![a, b].into_iter().take(k).collect())
                }),
                (inner.clone(), inner.clone(), 0usize..3)
                    .prop_map(|(a, b, k)| { Constr::Or(vec![a, b].into_iter().take(k).collect()) }),
                inner.clone().prop_map(|c| Constr::Not(Box::new(c))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Constr::Implies(Box::new(a), Box::new(b))),
                inner
                    .clone()
                    .prop_map(|c| Constr::Forall(Quantified::new("a", Sort::Nat), Box::new(c))),
                inner
                    .clone()
                    .prop_map(|c| Constr::Exists(Quantified::new("b", Sort::Real), Box::new(c))),
            ]
        })
    }

    proptest! {
        #[test]
        fn pool_simplify_agrees_with_tree_simplify(c in arb_constr()) {
            let mut pool = CPool::new();
            let id = pool.intern(&c);
            let simplified = pool.simplify(id);
            prop_assert_eq!(pool.to_constr(simplified), simplify_tree(&c));
            // And through the shared thread-local pool (memoized path).
            prop_assert_eq!(simplify_cached(&c), simplify_tree(&c));
        }

        #[test]
        fn pool_free_vars_agree_with_tree_free_vars(c in arb_constr()) {
            let mut pool = CPool::new();
            let id = pool.intern(&c);
            prop_assert_eq!((**pool.free_vars(id)).clone(), c.free_vars());
        }

        #[test]
        fn pool_subst_all_agrees_with_tree_subst_all(c in arb_constr(), k in 0u64..4) {
            // Replacements over fresh variables (the precondition both
            // implementations require): a → n + k, b → k.
            let map: BTreeMap<IdxVar, Idx> = [
                (IdxVar::new("a"), Idx::var("n") + Idx::nat(k)),
                (IdxVar::new("b"), Idx::nat(k)),
            ]
            .into();
            let mut pool = CPool::new();
            let id = pool.intern(&c);
            let out = pool.subst_all(id, &map);
            prop_assert_eq!(pool.to_constr(out), c.subst_all(&map));
            prop_assert_eq!(subst_all_cached(&c, &map), c.subst_all(&map));
        }

        #[test]
        fn pool_id_equality_iff_structural_equality(a in arb_constr(), b in arb_constr()) {
            let mut pool = CPool::new();
            let ia = pool.intern(&a);
            let ib = pool.intern(&b);
            prop_assert_eq!(ia == ib, a == b);
        }
    }
}
