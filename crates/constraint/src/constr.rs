//! The constraint language `Φ` / `C`.
//!
//! Constraints are first-order arithmetic formulas over index terms.  They
//! appear in three roles in the paper:
//!
//! * as *assumptions* `Φₐ` collected by rules such as `rr-caseL` and
//!   `rr-split`,
//! * inside types, as `C & τ` and `C ⊃ τ`,
//! * as the *output* of the bidirectional judgments, including the
//!   existential quantifications introduced for fresh size/cost variables.

use std::collections::BTreeSet;
use std::fmt;

use rel_index::{Extended, Idx, IdxEnv, IdxVar, Sort};

/// Cap on bounded existential search during numeric evaluation: witnesses in
/// practice are small, and nested existentials would otherwise make
/// evaluation exponential.  Shared with the bytecode evaluator of
/// [`crate::compile`] — the two evaluators must agree on it exactly.
pub const EXISTS_SEARCH_CAP: u64 = 8;

/// A quantified variable (existential or universal) with its sort.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Quantified {
    /// The bound variable.
    pub var: IdxVar,
    /// Its sort.
    pub sort: Sort,
}

impl Quantified {
    /// Creates a quantified-variable descriptor.
    pub fn new(var: impl Into<IdxVar>, sort: Sort) -> Quantified {
        Quantified {
            var: var.into(),
            sort,
        }
    }
}

/// A first-order arithmetic constraint over index terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constr {
    /// The trivially true constraint.
    Top,
    /// The trivially false constraint.
    Bot,
    /// Equality of index terms `I₁ = I₂`.
    Eq(Idx, Idx),
    /// Non-strict inequality `I₁ ≤ I₂`.
    Leq(Idx, Idx),
    /// Strict inequality `I₁ < I₂`.
    Lt(Idx, Idx),
    /// Conjunction.
    And(Vec<Constr>),
    /// Disjunction (used by heuristic 1: cons rules joined with ∨).
    Or(Vec<Constr>),
    /// Negation.
    Not(Box<Constr>),
    /// Implication `Φ₁ → Φ₂` (e.g. from `alg-r-split↓`).
    Implies(Box<Constr>, Box<Constr>),
    /// Universal quantification over an index variable.
    Forall(Quantified, Box<Constr>),
    /// Existential quantification over an algorithmically introduced variable.
    Exists(Quantified, Box<Constr>),
}

impl Constr {
    /// `I₁ = I₂`.
    pub fn eq(a: Idx, b: Idx) -> Constr {
        Constr::Eq(a, b)
    }

    /// `I₁ ≤ I₂`.
    pub fn leq(a: Idx, b: Idx) -> Constr {
        Constr::Leq(a, b)
    }

    /// `I₁ < I₂`.
    pub fn lt(a: Idx, b: Idx) -> Constr {
        Constr::Lt(a, b)
    }

    /// `I₁ ≥ I₂`.
    pub fn geq(a: Idx, b: Idx) -> Constr {
        Constr::Leq(b, a)
    }

    /// `I₁ > I₂`.
    pub fn gt(a: Idx, b: Idx) -> Constr {
        Constr::Lt(b, a)
    }

    /// Conjunction of two constraints, flattening nested conjunctions and
    /// dropping `Top` units.
    pub fn and(self, other: Constr) -> Constr {
        match (self, other) {
            (Constr::Top, c) | (c, Constr::Top) => c,
            (Constr::Bot, _) | (_, Constr::Bot) => Constr::Bot,
            (Constr::And(mut xs), Constr::And(ys)) => {
                xs.extend(ys);
                Constr::And(xs)
            }
            (Constr::And(mut xs), c) => {
                xs.push(c);
                Constr::And(xs)
            }
            (c, Constr::And(mut ys)) => {
                ys.insert(0, c);
                Constr::And(ys)
            }
            (a, b) => Constr::And(vec![a, b]),
        }
    }

    /// Conjunction of an iterator of constraints.
    pub fn conj(items: impl IntoIterator<Item = Constr>) -> Constr {
        items.into_iter().fold(Constr::Top, Constr::and)
    }

    /// Disjunction of two constraints, flattening and simplifying units.
    pub fn or(self, other: Constr) -> Constr {
        match (self, other) {
            (Constr::Bot, c) | (c, Constr::Bot) => c,
            (Constr::Top, _) | (_, Constr::Top) => Constr::Top,
            (Constr::Or(mut xs), Constr::Or(ys)) => {
                xs.extend(ys);
                Constr::Or(xs)
            }
            (Constr::Or(mut xs), c) => {
                xs.push(c);
                Constr::Or(xs)
            }
            (c, Constr::Or(mut ys)) => {
                ys.insert(0, c);
                Constr::Or(ys)
            }
            (a, b) => Constr::Or(vec![a, b]),
        }
    }

    /// Disjunction of an iterator of constraints.
    pub fn disj(items: impl IntoIterator<Item = Constr>) -> Constr {
        items.into_iter().fold(Constr::Bot, Constr::or)
    }

    /// Logical negation.
    pub fn negate(self) -> Constr {
        match self {
            Constr::Top => Constr::Bot,
            Constr::Bot => Constr::Top,
            Constr::Not(c) => *c,
            Constr::Leq(a, b) => Constr::Lt(b, a),
            Constr::Lt(a, b) => Constr::Leq(b, a),
            c => Constr::Not(Box::new(c)),
        }
    }

    /// Implication `self → other`, simplifying trivial cases.
    pub fn implies(self, other: Constr) -> Constr {
        match (self, other) {
            (Constr::Top, c) => c,
            (Constr::Bot, _) => Constr::Top,
            (_, Constr::Top) => Constr::Top,
            (a, b) => Constr::Implies(Box::new(a), Box::new(b)),
        }
    }

    /// Existential quantification `∃ var :: sort. self`, dropped when the
    /// variable does not occur.
    pub fn exists(var: impl Into<IdxVar>, sort: Sort, body: Constr) -> Constr {
        let var = var.into();
        if body.mentions(&var) {
            Constr::Exists(Quantified::new(var, sort), Box::new(body))
        } else {
            body
        }
    }

    /// Universal quantification `∀ var :: sort. self`, dropped when the
    /// variable does not occur.
    pub fn forall(var: impl Into<IdxVar>, sort: Sort, body: Constr) -> Constr {
        let var = var.into();
        if body.mentions(&var) {
            Constr::Forall(Quantified::new(var, sort), Box::new(body))
        } else {
            body
        }
    }

    /// Returns `true` if the constraint is syntactically `Top`.
    pub fn is_top(&self) -> bool {
        matches!(self, Constr::Top)
    }

    /// Returns `true` if the constraint is syntactically `Bot`.
    pub fn is_bot(&self) -> bool {
        matches!(self, Constr::Bot)
    }

    /// The set of free index variables.
    pub fn free_vars(&self) -> BTreeSet<IdxVar> {
        let mut acc = BTreeSet::new();
        self.collect_free_vars(&mut acc);
        acc
    }

    fn collect_free_vars(&self, acc: &mut BTreeSet<IdxVar>) {
        match self {
            Constr::Top | Constr::Bot => {}
            Constr::Eq(a, b) | Constr::Leq(a, b) | Constr::Lt(a, b) => {
                acc.extend(a.free_vars());
                acc.extend(b.free_vars());
            }
            Constr::And(cs) | Constr::Or(cs) => {
                for c in cs {
                    c.collect_free_vars(acc);
                }
            }
            Constr::Not(c) => c.collect_free_vars(acc),
            Constr::Implies(a, b) => {
                a.collect_free_vars(acc);
                b.collect_free_vars(acc);
            }
            Constr::Forall(q, c) | Constr::Exists(q, c) => {
                let mut inner = BTreeSet::new();
                c.collect_free_vars(&mut inner);
                inner.remove(&q.var);
                acc.extend(inner);
            }
        }
    }

    /// Returns `true` if the variable occurs free in the constraint.
    pub fn mentions(&self, v: &IdxVar) -> bool {
        match self {
            Constr::Top | Constr::Bot => false,
            Constr::Eq(a, b) | Constr::Leq(a, b) | Constr::Lt(a, b) => {
                a.mentions(v) || b.mentions(v)
            }
            Constr::And(cs) | Constr::Or(cs) => cs.iter().any(|c| c.mentions(v)),
            Constr::Not(c) => c.mentions(v),
            Constr::Implies(a, b) => a.mentions(v) || b.mentions(v),
            Constr::Forall(q, c) | Constr::Exists(q, c) => q.var != *v && c.mentions(v),
        }
    }

    /// Capture-avoiding substitution of an index term for a free variable.
    pub fn subst(&self, var: &IdxVar, replacement: &Idx) -> Constr {
        match self {
            Constr::Top | Constr::Bot => self.clone(),
            Constr::Eq(a, b) => Constr::Eq(a.subst(var, replacement), b.subst(var, replacement)),
            Constr::Leq(a, b) => Constr::Leq(a.subst(var, replacement), b.subst(var, replacement)),
            Constr::Lt(a, b) => Constr::Lt(a.subst(var, replacement), b.subst(var, replacement)),
            Constr::And(cs) => Constr::And(cs.iter().map(|c| c.subst(var, replacement)).collect()),
            Constr::Or(cs) => Constr::Or(cs.iter().map(|c| c.subst(var, replacement)).collect()),
            Constr::Not(c) => Constr::Not(Box::new(c.subst(var, replacement))),
            Constr::Implies(a, b) => Constr::Implies(
                Box::new(a.subst(var, replacement)),
                Box::new(b.subst(var, replacement)),
            ),
            Constr::Forall(q, c) => {
                if q.var == *var {
                    self.clone()
                } else if replacement.mentions(&q.var) {
                    let fresh = IdxVar::new(format!("{}'", q.var.name()));
                    let renamed = c.subst(&q.var, &Idx::Var(fresh.clone()));
                    Constr::Forall(
                        Quantified::new(fresh, q.sort),
                        Box::new(renamed.subst(var, replacement)),
                    )
                } else {
                    Constr::Forall(q.clone(), Box::new(c.subst(var, replacement)))
                }
            }
            Constr::Exists(q, c) => {
                if q.var == *var {
                    self.clone()
                } else if replacement.mentions(&q.var) {
                    let fresh = IdxVar::new(format!("{}'", q.var.name()));
                    let renamed = c.subst(&q.var, &Idx::Var(fresh.clone()));
                    Constr::Exists(
                        Quantified::new(fresh, q.sort),
                        Box::new(renamed.subst(var, replacement)),
                    )
                } else {
                    Constr::Exists(q.clone(), Box::new(c.subst(var, replacement)))
                }
            }
        }
    }

    /// Simultaneous substitution of several variables in **one traversal**
    /// (existential elimination used to clone the whole matrix once per
    /// eliminated variable).  Same precondition as [`Idx::subst_all`]: no
    /// replacement may mention a substituted variable — validated once
    /// here, for the whole constraint, in debug builds.
    pub fn subst_all(&self, map: &std::collections::BTreeMap<IdxVar, Idx>) -> Constr {
        debug_assert!(
            map.values().all(|r| map.keys().all(|k| !r.mentions(k))),
            "subst_all replacements must not mention substituted variables"
        );
        if map.is_empty() {
            return self.clone();
        }
        self.subst_all_inner(map)
    }

    fn subst_all_inner(&self, map: &std::collections::BTreeMap<IdxVar, Idx>) -> Constr {
        match self {
            Constr::Top | Constr::Bot => self.clone(),
            Constr::Eq(a, b) => Constr::Eq(a.subst_all(map), b.subst_all(map)),
            Constr::Leq(a, b) => Constr::Leq(a.subst_all(map), b.subst_all(map)),
            Constr::Lt(a, b) => Constr::Lt(a.subst_all(map), b.subst_all(map)),
            Constr::And(cs) => Constr::And(cs.iter().map(|c| c.subst_all_inner(map)).collect()),
            Constr::Or(cs) => Constr::Or(cs.iter().map(|c| c.subst_all_inner(map)).collect()),
            Constr::Not(c) => Constr::Not(Box::new(c.subst_all_inner(map))),
            Constr::Implies(a, b) => Constr::Implies(
                Box::new(a.subst_all_inner(map)),
                Box::new(b.subst_all_inner(map)),
            ),
            Constr::Forall(q, _) | Constr::Exists(q, _) => {
                if map.contains_key(&q.var) || map.values().any(|r| r.mentions(&q.var)) {
                    // Shadowing or capture risk: defer to the capture-avoiding
                    // single substitution, pairwise (equivalent under the
                    // precondition).
                    map.iter().fold(self.clone(), |acc, (v, i)| acc.subst(v, i))
                } else {
                    match self {
                        Constr::Forall(q, c) => {
                            Constr::Forall(q.clone(), Box::new(c.subst_all_inner(map)))
                        }
                        Constr::Exists(q, c) => {
                            Constr::Exists(q.clone(), Box::new(c.subst_all_inner(map)))
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }

    /// Evaluates the constraint to a boolean under a ground environment.
    ///
    /// Quantifiers are evaluated over the *bounded* domain `0..=bound`
    /// (naturals) or the same grid of integer-valued reals; this is exactly
    /// what the numeric layer of the solver needs and is never used to claim
    /// unbounded validity on its own.
    pub fn eval_bounded(&self, env: &IdxEnv, bound: u64) -> bool {
        match self {
            Constr::Top => true,
            Constr::Bot => false,
            Constr::Eq(a, b) => match (a.eval(env), b.eval(env)) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            },
            Constr::Leq(a, b) => match (a.eval(env), b.eval(env)) {
                (Ok(x), Ok(y)) => x <= y,
                _ => false,
            },
            Constr::Lt(a, b) => match (a.eval(env), b.eval(env)) {
                (Ok(x), Ok(y)) => x < y,
                _ => false,
            },
            Constr::And(cs) => cs.iter().all(|c| c.eval_bounded(env, bound)),
            Constr::Or(cs) => cs.iter().any(|c| c.eval_bounded(env, bound)),
            Constr::Not(c) => !c.eval_bounded(env, bound),
            Constr::Implies(a, b) => !a.eval_bounded(env, bound) || b.eval_bounded(env, bound),
            Constr::Forall(q, c) => (0..=bound).all(|k| {
                let mut inner = env.clone();
                inner.bind(q.var.clone(), Extended::from(k));
                c.eval_bounded(&inner, bound)
            }),
            Constr::Exists(q, c) => {
                // Existential search is capped more tightly than universal
                // enumeration, see [`EXISTS_SEARCH_CAP`].
                let cap = bound.min(EXISTS_SEARCH_CAP);
                (0..=cap).any(|k| {
                    let mut inner = env.clone();
                    inner.bind(q.var.clone(), Extended::from(k));
                    c.eval_bounded(&inner, bound)
                })
            }
        }
    }

    /// The number of atomic comparisons in the constraint (a size measure
    /// reported by the engine's statistics).
    pub fn atom_count(&self) -> usize {
        match self {
            Constr::Top | Constr::Bot => 0,
            Constr::Eq(_, _) | Constr::Leq(_, _) | Constr::Lt(_, _) => 1,
            Constr::And(cs) | Constr::Or(cs) => cs.iter().map(Constr::atom_count).sum(),
            Constr::Not(c) => c.atom_count(),
            Constr::Implies(a, b) => a.atom_count() + b.atom_count(),
            Constr::Forall(_, c) | Constr::Exists(_, c) => c.atom_count(),
        }
    }

    /// Collects the existentially quantified variables appearing anywhere in
    /// the constraint (in prefix order).
    pub fn existential_vars(&self) -> Vec<Quantified> {
        let mut acc = Vec::new();
        self.collect_existentials(&mut acc);
        acc
    }

    fn collect_existentials(&self, acc: &mut Vec<Quantified>) {
        match self {
            Constr::Top | Constr::Bot | Constr::Eq(..) | Constr::Leq(..) | Constr::Lt(..) => {}
            Constr::And(cs) | Constr::Or(cs) => {
                for c in cs {
                    c.collect_existentials(acc);
                }
            }
            Constr::Not(c) => c.collect_existentials(acc),
            Constr::Implies(a, b) => {
                a.collect_existentials(acc);
                b.collect_existentials(acc);
            }
            Constr::Forall(_, c) => c.collect_existentials(acc),
            Constr::Exists(q, c) => {
                acc.push(q.clone());
                c.collect_existentials(acc);
            }
        }
    }
}

impl Default for Constr {
    /// The default constraint is the trivially true `Top`.
    fn default() -> Self {
        Constr::Top
    }
}

impl fmt::Display for Constr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constr::Top => write!(f, "tt"),
            Constr::Bot => write!(f, "ff"),
            Constr::Eq(a, b) => write!(f, "{a} = {b}"),
            Constr::Leq(a, b) => write!(f, "{a} <= {b}"),
            Constr::Lt(a, b) => write!(f, "{a} < {b}"),
            Constr::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Constr::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Constr::Not(c) => write!(f, "not ({c})"),
            Constr::Implies(a, b) => write!(f, "({a} -> {b})"),
            Constr::Forall(q, c) => write!(f, "(forall {} :: {}. {c})", q.var, q.sort),
            Constr::Exists(q, c) => write!(f, "(exists {} :: {}. {c})", q.var, q.sort),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: &str) -> Idx {
        Idx::var(v)
    }

    #[test]
    fn and_flattens_and_simplifies_units() {
        let c = Constr::Top
            .and(Constr::eq(n("a"), Idx::nat(1)))
            .and(Constr::leq(n("b"), Idx::nat(2)))
            .and(Constr::Top);
        assert_eq!(c.atom_count(), 2);
        assert!(matches!(c, Constr::And(ref v) if v.len() == 2));
        assert!(Constr::Top.and(Constr::Bot).is_bot());
    }

    #[test]
    fn or_simplifies_units() {
        assert!(Constr::Bot.or(Constr::Top).is_top());
        let c = Constr::eq(n("a"), Idx::nat(1)).or(Constr::Bot);
        assert_eq!(c, Constr::eq(n("a"), Idx::nat(1)));
    }

    #[test]
    fn negation_of_inequalities_flips_them() {
        assert_eq!(
            Constr::leq(n("a"), n("b")).negate(),
            Constr::lt(n("b"), n("a"))
        );
        assert_eq!(Constr::Top.negate(), Constr::Bot);
        let c = Constr::eq(n("a"), n("b"));
        assert_eq!(c.clone().negate().negate(), c);
    }

    #[test]
    fn exists_is_dropped_when_variable_unused() {
        let c = Constr::eq(n("a"), Idx::nat(1));
        assert_eq!(Constr::exists("z", Sort::Nat, c.clone()), c);
        let used = Constr::eq(n("z"), Idx::nat(1));
        assert!(matches!(
            Constr::exists("z", Sort::Nat, used),
            Constr::Exists(_, _)
        ));
    }

    #[test]
    fn free_vars_respect_binders() {
        let c = Constr::exists(
            "b",
            Sort::Nat,
            Constr::eq(n("b"), n("a") + Idx::nat(1)).and(Constr::leq(n("c"), n("b"))),
        );
        let fv = c.free_vars();
        assert!(fv.contains(&IdxVar::new("a")));
        assert!(fv.contains(&IdxVar::new("c")));
        assert!(!fv.contains(&IdxVar::new("b")));
    }

    #[test]
    fn subst_only_replaces_free_occurrences() {
        let c = Constr::exists("b", Sort::Nat, Constr::eq(n("b"), n("a")));
        let s = c.subst(&IdxVar::new("a"), &Idx::nat(7));
        assert_eq!(
            s,
            Constr::exists("b", Sort::Nat, Constr::eq(n("b"), Idx::nat(7)))
        );
        let shadowed = c.subst(&IdxVar::new("b"), &Idx::nat(7));
        assert_eq!(shadowed, c);
    }

    #[test]
    fn bounded_evaluation() {
        let env = IdxEnv::from_pairs([("n", Extended::from(5))]);
        let c = Constr::leq(n("n"), Idx::nat(10));
        assert!(c.eval_bounded(&env, 8));
        let c = Constr::forall("i", Sort::Nat, Constr::leq(n("i"), Idx::nat(8)));
        assert!(c.eval_bounded(&env, 8));
        let c = Constr::exists("i", Sort::Nat, Constr::eq(n("i"), Idx::nat(20)));
        assert!(!c.eval_bounded(&env, 8));
    }

    #[test]
    fn existential_vars_are_collected_in_prefix_order() {
        let c = Constr::exists(
            "x",
            Sort::Nat,
            Constr::eq(n("x"), Idx::nat(0)).and(Constr::exists(
                "y",
                Sort::Real,
                Constr::leq(n("y"), n("x")),
            )),
        );
        let vars: Vec<_> = c.existential_vars().into_iter().map(|q| q.var).collect();
        assert_eq!(vars, vec![IdxVar::new("x"), IdxVar::new("y")]);
    }

    #[test]
    fn display_round_trips_visually() {
        let c = Constr::eq(n("n"), Idx::nat(3)).and(Constr::lt(Idx::zero(), n("a")));
        assert_eq!(c.to_string(), "(n = 3 and 0 < a)");
    }
}
