//! Constraint language, existential elimination and validity checking for
//! BiRelCost.
//!
//! The bidirectional typing judgments of the paper *output* constraints `Φ`
//! over index terms: arithmetic facts relating list sizes, difference bounds
//! and costs of subterms, possibly existentially quantified over
//! algorithmically introduced variables (the set `ψ`).  Type checking
//! succeeds iff the hypothesis constraints `Φₐ` entail `Φ` for all values of
//! the universally quantified index variables in `∆`.
//!
//! The pipeline implemented here mirrors §6 of the paper:
//!
//! 1. [`exelim`] — a pre-processing pass that finds *candidate substitutions*
//!    for existentially quantified variables by scanning the constraint for
//!    atomic facts `v = I` and `v ≤ I`, and tries them lazily;
//! 2. [`solver`] — a validity checker for the resulting existential-free
//!    constraints.  The paper delegates this step to Why3 + Alt-Ergo; this
//!    reproduction ships a native three-layer checker (symbolic linear
//!    arithmetic over exact rationals, a lemma table mirroring the Why3 lemma
//!    libraries and the divide-and-conquer recurrence axiom, and a
//!    bounded-numeric fallback).  See DESIGN.md §4 for the substitution
//!    rationale.

pub mod cache;
pub mod compile;
pub mod constr;
pub mod cpool;
pub mod exelim;
pub mod fm;
pub mod lemmas;
pub mod solver;

pub use cache::{CacheStats, Fnv1a, QueryKey, QueryRef, ShardedValidityCache, ValidityCache};
pub use compile::{compile_query, CompiledQuery, EvalFrame, Val};
pub use constr::{Constr, Quantified};
pub use cpool::{CId, CNode, CPool};
pub use exelim::{eliminate_existentials, ExElimOutcome, ExElimStats};
pub use fm::{FmLimits, FmMemo, FmOutcome, FmVerdict};
pub use solver::{
    CexSource, ProgramCacheStats, ProgramKey, Provenance, RefutationInfo, SearchExhaustedReason,
    SharedProgramCache, SolveConfig, SolveStats, Solver, Validity,
};
