//! Saturation lemmas for the symbolic solver layer.
//!
//! The paper's implementation relies on Why3's lemma libraries for
//! exponentiation, logarithms and iterated sums, plus one explicitly provided
//! recurrence lemma for divide-and-conquer cost functions.  Our native solver
//! plays the same trick at a smaller scale: given the set of non-linear atoms
//! occurring in a constraint, [`saturate`] produces arithmetic facts about
//! those atoms (`⌈n/2⌉ + ⌊n/2⌋ = n`, `min(a,b) ≤ a`, …) which are added to the
//! hypotheses before linear reasoning.  Whatever the lemma table cannot
//! discharge falls through to the bounded-numeric layer (see
//! [`crate::solver`]), which plays the role of the explicitly-added
//! recurrence axiom of the paper.

use std::collections::BTreeSet;

use rel_index::{Atom, Idx, LinExpr};

use crate::constr::Constr;

/// Collects every atom (in the [`LinExpr`] sense) occurring in a constraint.
pub fn atoms_of_constr(c: &Constr) -> BTreeSet<Atom> {
    let mut acc = BTreeSet::new();
    collect(c, &mut acc);
    acc
}

fn collect(c: &Constr, acc: &mut BTreeSet<Atom>) {
    match c {
        Constr::Top | Constr::Bot => {}
        Constr::Eq(a, b) | Constr::Leq(a, b) | Constr::Lt(a, b) => {
            collect_idx(a, acc);
            collect_idx(b, acc);
        }
        Constr::And(cs) | Constr::Or(cs) => {
            for c in cs {
                collect(c, acc);
            }
        }
        Constr::Not(c) => collect(c, acc),
        Constr::Implies(a, b) => {
            collect(a, acc);
            collect(b, acc);
        }
        Constr::Forall(_, c) | Constr::Exists(_, c) => collect(c, acc),
    }
}

fn collect_idx(i: &Idx, acc: &mut BTreeSet<Atom>) {
    for atom in LinExpr::of_idx(i).atoms() {
        acc.insert(atom.clone());
        // Also look inside the atom for nested non-linear structure
        // (e.g. `min(α, 2^(H - i))` contains the atom `2^(H - i)`).
        match &atom.0 {
            Idx::Ceil(x) | Idx::Floor(x) | Idx::Log2(x) | Idx::Pow2(x) => collect_idx(x, acc),
            Idx::Min(a, b) | Idx::Max(a, b) | Idx::Mul(a, b) | Idx::Div(a, b) => {
                collect_idx(a, acc);
                collect_idx(b, acc);
            }
            Idx::Sum { lo, hi, body, .. } => {
                collect_idx(lo, acc);
                collect_idx(hi, acc);
                collect_idx(body, acc);
            }
            _ => {}
        }
    }
}

/// Produces saturation facts about the given atoms.
///
/// All facts hold for the non-negative interpretations of index terms used by
/// RelCost (sizes and difference counts are naturals, costs are non-negative
/// reals); they are consumed only by the best-effort symbolic layer.
pub fn saturate(atoms: &BTreeSet<Atom>) -> Vec<Constr> {
    let mut facts = Vec::new();
    for atom in atoms {
        match &atom.0 {
            Idx::Ceil(inner) => {
                let c = atom.0.clone();
                // ⌈x⌉ ≥ x  and  ⌈x⌉ ≤ x + 1 (x arises as a division of naturals).
                facts.push(Constr::leq((**inner).clone(), c.clone()));
                facts.push(Constr::leq(c.clone(), (**inner).clone() + Idx::one()));
                // Pair ⌈x/2⌉ with ⌊x/2⌋ when the twin also occurs.
                if let Idx::Div(num, den) = &**inner {
                    if den.as_const() == Idx::nat(2).as_const() {
                        let twin = Idx::floor((**inner).clone());
                        if atoms.contains(&Atom(twin.clone())) {
                            // ⌈n/2⌉ + ⌊n/2⌋ = n
                            facts.push(Constr::eq(c.clone() + twin.clone(), (**num).clone()));
                            facts.push(Constr::leq(twin, c.clone()));
                        }
                        // ⌈n/2⌉ ≤ n (for naturals n).
                        facts.push(Constr::leq(c, (**num).clone()));
                    }
                }
            }
            Idx::Floor(inner) => {
                let c = atom.0.clone();
                // ⌊x⌋ ≤ x  and  x ≤ ⌊x⌋ + 1.
                facts.push(Constr::leq(c.clone(), (**inner).clone()));
                facts.push(Constr::leq((**inner).clone(), c + Idx::one()));
            }
            Idx::Min(a, b) => {
                let c = atom.0.clone();
                facts.push(Constr::leq(c.clone(), (**a).clone()));
                facts.push(Constr::leq(c.clone(), (**b).clone()));
                facts.push(Constr::leq(Idx::zero(), c));
            }
            Idx::Max(a, b) => {
                let c = atom.0.clone();
                facts.push(Constr::leq((**a).clone(), c.clone()));
                facts.push(Constr::leq((**b).clone(), c.clone()));
                // max(a,b) ≤ a + b for non-negative operands.
                facts.push(Constr::leq(c, (**a).clone() + (**b).clone()));
            }
            Idx::Log2(inner) => {
                let c = atom.0.clone();
                // log2 is totalized at 1: log2(x) ≥ 0 and log2(x) ≤ x (for x ≥ 0).
                facts.push(Constr::leq(Idx::zero(), c.clone()));
                facts.push(Constr::leq(c, Idx::max((**inner).clone(), Idx::one())));
            }
            Idx::Pow2(inner) => {
                let c = atom.0.clone();
                // 2^x ≥ 1 and 2^x ≥ x + 1 for natural x.
                facts.push(Constr::leq(Idx::one(), c.clone()));
                facts.push(Constr::leq((**inner).clone() + Idx::one(), c));
            }
            Idx::Sum { lo, hi, body, .. } => {
                // Σ over an empty range is 0; a sum of non-negative summands is
                // non-negative.  (Summands in cost recurrences are products of
                // non-negative terms.)
                let c = atom.0.clone();
                facts.push(Constr::leq(Idx::zero(), c));
                let _ = (lo, hi, body);
            }
            Idx::Var(_) => {
                // Index variables of either sort are non-negative in RelCost.
                facts.push(Constr::leq(Idx::zero(), atom.0.clone()));
            }
            _ => {}
        }
    }
    facts
}

/// The divide-and-conquer recurrence of the merge-sort example, provided as a
/// reusable closed lemma (the paper supplies it as an axiom to Why3; our
/// numeric layer can also discharge it directly).
///
/// `Q(n, α) = Σ_{i=0}^{H} ⌈2^i / 2⌉ · min(α, 2^{H−i})` with `H = ⌈log2 n⌉` and
/// the linear-cost function `h(m) = m`.  The lemma states
/// `h(⌈n/2⌉) + Q(⌈n/2⌉, β) + Q(⌊n/2⌋, α − β) ≤ Q(n, α)` for `1 ≤ α`, `β ≤ α`,
/// `α ≤ n` and `2 ≤ n`.
pub fn msort_recurrence_lemma() -> Constr {
    use rel_index::Sort;
    let n = Idx::var("n");
    let alpha = Idx::var("alpha");
    let beta = Idx::var("beta");
    let hyp = Constr::leq(Idx::one(), alpha.clone())
        .and(Constr::leq(beta.clone(), alpha.clone()))
        .and(Constr::leq(alpha.clone(), n.clone()))
        .and(Constr::leq(Idx::nat(2), n.clone()));
    let lhs = Idx::half_ceil(n.clone())
        + big_q(Idx::half_ceil(n.clone()), beta.clone())
        + big_q(Idx::half_floor(n.clone()), alpha.clone() - beta.clone());
    let goal = Constr::leq(lhs, big_q(n, alpha));
    Constr::forall(
        "n",
        Sort::Nat,
        Constr::forall(
            "alpha",
            Sort::Nat,
            Constr::forall("beta", Sort::Nat, hyp.implies(goal)),
        ),
    )
}

/// The merge-sort relative-cost bound `Q(n, α)` from §6 of the paper with the
/// linear per-level cost `h(m) = m`.
pub fn big_q(n: Idx, alpha: Idx) -> Idx {
    let h = Idx::ceil(Idx::log2(n));
    Idx::sum(
        "qi",
        Idx::zero(),
        h.clone(),
        Idx::ceil(Idx::pow2(Idx::var("qi")) / Idx::nat(2))
            * Idx::min(alpha, Idx::pow2(h - Idx::var("qi"))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_index::{Extended, IdxEnv};

    #[test]
    fn atoms_are_collected_transitively() {
        let c = Constr::leq(
            Idx::half_ceil(Idx::var("n")) + Idx::min(Idx::var("a"), Idx::pow2(Idx::var("i"))),
            Idx::var("n"),
        );
        let atoms = atoms_of_constr(&c);
        assert!(atoms.contains(&Atom(Idx::half_ceil(Idx::var("n")))));
        assert!(atoms.iter().any(|a| matches!(a.0, Idx::Min(_, _))));
        assert!(atoms.contains(&Atom(Idx::pow2(Idx::var("i")))));
        assert!(atoms.contains(&Atom(Idx::var("n"))));
    }

    #[test]
    fn saturation_facts_hold_numerically() {
        let c = Constr::leq(
            Idx::half_ceil(Idx::var("n")) + Idx::half_floor(Idx::var("n")),
            Idx::var("n") + Idx::min(Idx::var("n"), Idx::var("a")),
        );
        let atoms = atoms_of_constr(&c);
        let facts = saturate(&atoms);
        assert!(!facts.is_empty());
        for n in 0..20i64 {
            for a in 0..10i64 {
                let env = IdxEnv::from_pairs([("n", Extended::from(n)), ("a", Extended::from(a))]);
                for fact in &facts {
                    assert!(
                        fact.eval_bounded(&env, 8),
                        "saturation fact {fact} fails at n={n}, a={a}"
                    );
                }
            }
        }
    }

    #[test]
    fn msort_recurrence_lemma_holds_on_a_grid() {
        let lemma = msort_recurrence_lemma();
        // The lemma is closed (all variables bound); evaluate with the bound
        // acting as the quantifier domain.
        assert!(lemma.eval_bounded(&IdxEnv::new(), 12));
    }

    #[test]
    fn big_q_matches_hand_computation() {
        // Q(8, 2) = 12 (same hand computation as in rel-index's tests).
        let q = big_q(Idx::nat(8), Idx::nat(2));
        assert_eq!(q.eval(&IdxEnv::new()).unwrap(), Extended::from(12));
        // Q(n, 0) = 0? No: min(0, ·) = 0 so every summand is 0.
        let q0 = big_q(Idx::nat(16), Idx::nat(0));
        assert_eq!(q0.eval(&IdxEnv::new()).unwrap(), Extended::from(0));
    }
}
