//! BiRelCost: the bidirectional relational checker.
//!
//! This module implements the algorithmic relational judgments of §5–§6:
//!
//! * checking — `∆; ψₐ; Φₐ; Γ ⊢ e₁ ⊖ e₂ ↓ τ, t ⇒ Φ`
//! * inference — `∆; ψₐ; Φₐ; Γ ⊢ e₁ ⊖ e₂ ↑ τ ⇒ [ψ], t, Φ`
//!
//! working directly on the *surface* terms of RelCost (no `consC`/`consNC`,
//! `split`, `NC` or `switch` markers), resolving the nondeterminism of the
//! declarative system with the five heuristics of §6 (see
//! [`crate::heuristics::Heuristics`]).  The judgments emit constraints; the
//! engine hands them to the constraint pipeline of `rel-constraint`.

use rel_constraint::{Constr, Quantified, Solver};
use rel_index::{Idx, Sort};
use rel_syntax::{Expr, RelType, UnaryType, Var};
use rel_unary::bidir::UnaryChecker;
use rel_unary::{CostModel, FreshVars, RelCtx, TypeError, UnaryCtx};

use crate::heuristics::Heuristics;
use crate::subtype::{push_box, rel_subtype};

/// Mutable state threaded through one checking run: the fresh-variable
/// generator and a solver instance used at the (few) heuristic decision
/// points that need to know whether a candidate derivation's constraints are
/// satisfiable before committing to it (heuristic 4).
#[derive(Debug, Default)]
pub struct Session {
    /// Generator for the existential variables `ψ`.
    pub fresh: FreshVars,
    /// Solver used for heuristic decisions during checking (the final
    /// constraint is still solved by the engine).
    pub solver: Solver,
}

impl Session {
    /// Creates a fresh session.
    pub fn new() -> Session {
        Session::default()
    }
}

/// The result of relational type inference.
#[derive(Debug, Clone)]
pub struct RelInference {
    /// The inferred relational type.
    pub ty: RelType,
    /// The inferred upper bound on the relative cost.
    pub cost: Idx,
    /// Constraints that must hold.
    pub constr: Constr,
    /// Existential variables introduced by the rules.
    pub existentials: Vec<Quantified>,
}

impl RelInference {
    fn value(ty: RelType) -> RelInference {
        RelInference {
            ty,
            cost: Idx::zero(),
            constr: Constr::Top,
            existentials: Vec::new(),
        }
    }
}

/// The bidirectional relational checker (BiRelCost).
#[derive(Debug, Clone, Default)]
pub struct RelChecker {
    /// Evaluation-cost constants (shared with the unary checker and the
    /// evaluator).
    pub cost_model: CostModel,
    /// The §6 heuristics configuration.
    pub heuristics: Heuristics,
}

impl RelChecker {
    /// Creates a checker with the standard cost model and all heuristics.
    pub fn new() -> RelChecker {
        RelChecker::default()
    }

    /// Creates a checker with an explicit heuristics configuration.
    pub fn with_heuristics(heuristics: Heuristics) -> RelChecker {
        RelChecker {
            cost_model: CostModel::standard(),
            heuristics,
        }
    }

    fn unary(&self) -> UnaryChecker {
        UnaryChecker::with_cost_model(self.cost_model)
    }

    // ==================================================================
    // Checking mode
    // ==================================================================

    /// Checks the pair `e₁ ⊖ e₂` against relational type `ty` and relative
    /// cost bound `cost`, returning the constraint that must hold.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when no rule applies structurally.
    pub fn check(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
        ty: &RelType,
        cost: &Idx,
    ) -> Result<Constr, TypeError> {
        // ---- type-directed rules -------------------------------------
        match ty {
            RelType::CAnd(c, inner) => {
                let body = self.check(sess, ctx, e1, e2, inner, cost)?;
                return Ok(body.and(c.clone()));
            }
            RelType::CImpl(c, inner) => {
                let ctx = ctx.assume(c.clone());
                let body = self.check(sess, &ctx, e1, e2, inner, cost)?;
                return Ok(c.clone().implies(body));
            }
            RelType::Forall(i, s, inner) => {
                let (b1, b2) = match (e1, e2) {
                    (Expr::ILam(b1), Expr::ILam(b2)) => (b1.as_ref(), b2.as_ref()),
                    _ => (e1, e2),
                };
                let ctx = ctx.bind_idx(i.clone(), *s);
                let body = self.check(sess, &ctx, b1, b2, inner, cost)?;
                return Ok(Constr::forall(i.clone(), *s, body));
            }
            RelType::Exists(i, s, inner) => {
                if let (Expr::Pack(p1), Expr::Pack(p2)) = (e1, e2) {
                    let witness = sess.fresh.size("w");
                    let instantiated = inner.subst_idx(i, &Idx::Var(witness.clone()));
                    let body = self.check(sess, ctx, p1, p2, &instantiated, cost)?;
                    return Ok(Constr::exists(witness, *s, body));
                }
                // otherwise fall through to ↑↓ below
            }
            RelType::Boxed(inner) => {
                return self.check_boxed(sess, ctx, e1, e2, inner, ty, cost);
            }
            RelType::U(a1, a2)
                // Prefer the relational route when the two sides have the
                // same shape; switch to unary typing otherwise or when the
                // relational route is structurally impossible (heuristic 5).
                if self.heuristics.unary_fallback
                    && (e1.head_constructor() != e2.head_constructor()
                        || matches!(e1, Expr::Lam(_, _) | Expr::Fix(_, _, _) | Expr::If(_, _, _)))
                => {
                    if let Ok(c) = self.switch_check(sess, ctx, e1, e2, a1, a2, cost) {
                        return Ok(c);
                    }
                }
                // fall through: term-directed / ↑↓ handling below, with a
                // final unary fallback on structural failure.
            _ => {}
        }

        // ---- term-directed rules -------------------------------------
        let structural = self.check_structural(sess, ctx, e1, e2, ty, cost);
        match structural {
            Ok(c) => Ok(c),
            Err(err) => {
                // Heuristic 5(c): unary fallback when the relational rules do
                // not apply and the goal type embeds unary typing.
                if self.heuristics.unary_fallback {
                    if let RelType::U(a1, a2) = ty {
                        return self.switch_check(sess, ctx, e1, e2, a1, a2, cost);
                    }
                }
                Err(err)
            }
        }
    }

    /// The expression-directed checking rules (plus the ↑↓ fallback).
    #[allow(clippy::too_many_lines)]
    fn check_structural(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
        ty: &RelType,
        cost: &Idx,
    ) -> Result<Constr, TypeError> {
        match (e1, e2) {
            (Expr::Lam(x1, b1), Expr::Lam(x2, b2)) => {
                let (dom, te, cod) = expect_arrow(ty)?;
                self.check_binder(sess, ctx, (x1, b1), (x2, b2), &dom, &te, &cod, cost)
            }
            (Expr::Fix(f1, x1, b1), Expr::Fix(f2, x2, b2)) => {
                let (dom, te, cod) = expect_arrow(ty)?;
                if f1 != f2 {
                    return Err(TypeError::other(format!(
                        "related recursive functions must use the same name (`{f1}` vs `{f2}`)"
                    )));
                }
                let ctx = ctx.bind_var(f1.clone(), ty.clone());
                self.check_binder(sess, &ctx, (x1, b1), (x2, b2), &dom, &te, &cod, cost)
            }
            (Expr::Nil, Expr::Nil) => {
                let (n, _, _) = expect_list(ty)?;
                Ok(Constr::eq(n, Idx::zero()).and(Constr::leq(Idx::zero(), cost.clone())))
            }
            (Expr::Cons(h1, t1), Expr::Cons(h2, t2)) => {
                let (n, alpha, elem) = expect_list(ty)?;
                let mut paths = Vec::new();
                // consNC: the heads are equal (□τ) and the difference bound is
                // unchanged.
                {
                    let i = sess.fresh.size("i");
                    let th = sess.fresh.cost("th");
                    let tt = sess.fresh.cost("tt");
                    let boxed_elem = RelType::boxed(elem.clone());
                    if let (Ok(ch), Ok(ct)) = (
                        self.check(sess, ctx, h1, h2, &boxed_elem, &Idx::Var(th.clone())),
                        self.check(
                            sess,
                            ctx,
                            t1,
                            t2,
                            &RelType::list(Idx::Var(i.clone()), alpha.clone(), elem.clone()),
                            &Idx::Var(tt.clone()),
                        ),
                    ) {
                        let c = ch
                            .and(ct)
                            .and(Constr::eq(n.clone(), Idx::Var(i.clone()) + Idx::one()))
                            .and(Constr::leq(
                                Idx::Var(th.clone()) + Idx::Var(tt.clone()),
                                cost.clone(),
                            ));
                        paths.push(wrap_exists(
                            c,
                            [(i, Sort::Nat), (th, Sort::Real), (tt, Sort::Real)],
                        ));
                    }
                }
                // consC: the heads may differ and the difference bound drops
                // by one on the tail.
                if self.heuristics.both_cons_rules || paths.is_empty() {
                    let i = sess.fresh.size("i");
                    let beta = sess.fresh.size("b");
                    let th = sess.fresh.cost("th");
                    let tt = sess.fresh.cost("tt");
                    if let (Ok(ch), Ok(ct)) = (
                        self.check(sess, ctx, h1, h2, &elem, &Idx::Var(th.clone())),
                        self.check(
                            sess,
                            ctx,
                            t1,
                            t2,
                            &RelType::list(
                                Idx::Var(i.clone()),
                                Idx::Var(beta.clone()),
                                elem.clone(),
                            ),
                            &Idx::Var(tt.clone()),
                        ),
                    ) {
                        let c = ch
                            .and(ct)
                            .and(Constr::eq(n.clone(), Idx::Var(i.clone()) + Idx::one()))
                            .and(Constr::eq(
                                alpha.clone(),
                                Idx::Var(beta.clone()) + Idx::one(),
                            ))
                            .and(Constr::leq(
                                Idx::Var(th.clone()) + Idx::Var(tt.clone()),
                                cost.clone(),
                            ));
                        paths.push(wrap_exists(
                            c,
                            [
                                (i, Sort::Nat),
                                (beta, Sort::Nat),
                                (th, Sort::Real),
                                (tt, Sort::Real),
                            ],
                        ));
                    }
                }
                if paths.is_empty() {
                    Err(TypeError::other(
                        "neither cons rule applies to the constructed lists",
                    ))
                } else {
                    Ok(Constr::disj(paths))
                }
            }
            (Expr::Pair(a1, b1), Expr::Pair(a2, b2)) => {
                let (tl, tr) = match ty {
                    RelType::Prod(a, b) => ((**a).clone(), (**b).clone()),
                    _ => {
                        return Err(TypeError::CheckMismatch {
                            term: "pair".into(),
                            ty: rel_syntax::pretty::rel_type(ty),
                        })
                    }
                };
                let ta = sess.fresh.cost("tp");
                let tb = sess.fresh.cost("tq");
                let ca = self.check(sess, ctx, a1, a2, &tl, &Idx::Var(ta.clone()))?;
                let cb = self.check(sess, ctx, b1, b2, &tr, &Idx::Var(tb.clone()))?;
                let c = ca.and(cb).and(Constr::leq(
                    Idx::Var(ta.clone()) + Idx::Var(tb.clone()),
                    cost.clone(),
                ));
                Ok(wrap_exists(c, [(ta, Sort::Real), (tb, Sort::Real)]))
            }
            (Expr::If(c1, t1, f1), Expr::If(c2, t2, f2)) => {
                let scrut = self.infer(sess, ctx, c1, c2)?;
                if !is_diagonal_bool(&scrut.ty) {
                    return Err(TypeError::shape(
                        "a diagonal boolean (boolr) condition for relational if",
                        rel_syntax::pretty::rel_type(&scrut.ty),
                    ));
                }
                let budget = cost.clone() - scrut.cost.clone();
                let ct = self.check(sess, ctx, t1, t2, ty, &budget)?;
                let cf = self.check(sess, ctx, f1, f2, ty, &budget)?;
                Ok(wrap_exists(
                    scrut.constr.and(ct).and(cf),
                    scrut.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (
                Expr::CaseList {
                    scrut: s1,
                    nil_branch: n1,
                    head: h1,
                    tail: tl1,
                    cons_branch: c1,
                },
                Expr::CaseList {
                    scrut: s2,
                    nil_branch: n2,
                    head: h2,
                    tail: tl2,
                    cons_branch: c2,
                },
            ) => {
                if h1 != h2 || tl1 != tl2 {
                    return Err(TypeError::other(
                        "related case branches must bind the same names",
                    ));
                }
                let scrut = self.infer(sess, ctx, s1, s2)?;
                let (n, alpha, elem) = expect_list(&expose(&scrut.ty))?;
                let budget = cost.clone() - scrut.cost.clone();
                // nil / nil branch under n = 0.
                let nil_ctx = ctx.assume(Constr::eq(n.clone(), Idx::zero()));
                let cnil = self.check(sess, &nil_ctx, n1, n2, ty, &budget)?;
                // cons branch, heads equal (□) — fresh universal i, same α.
                let i = sess.fresh.size("cu");
                let guard_nc = Constr::eq(n.clone(), Idx::Var(i.clone()) + Idx::one());
                let ctx_nc = ctx
                    .bind_idx(i.clone(), Sort::Nat)
                    .assume(guard_nc.clone())
                    .bind_var(h1.clone(), RelType::boxed(elem.clone()))
                    .bind_var(
                        tl1.clone(),
                        RelType::list(Idx::Var(i.clone()), alpha.clone(), elem.clone()),
                    );
                let cnc = self.check(sess, &ctx_nc, c1, c2, ty, &budget)?;
                // cons branch, heads may differ — fresh universals i, β with
                // α = β + 1.
                let i2 = sess.fresh.size("cu");
                let beta = sess.fresh.size("cb");
                let guard_c = Constr::eq(n.clone(), Idx::Var(i2.clone()) + Idx::one()).and(
                    Constr::eq(alpha.clone(), Idx::Var(beta.clone()) + Idx::one()),
                );
                let ctx_c = ctx
                    .bind_idx(i2.clone(), Sort::Nat)
                    .bind_idx(beta.clone(), Sort::Nat)
                    .assume(guard_c.clone())
                    .bind_var(h1.clone(), elem.clone())
                    .bind_var(
                        tl1.clone(),
                        RelType::list(Idx::Var(i2.clone()), Idx::Var(beta.clone()), elem.clone()),
                    );
                let cc = self.check(sess, &ctx_c, c1, c2, ty, &budget)?;
                let branches = Constr::eq(n.clone(), Idx::zero())
                    .implies(cnil)
                    .and(Constr::forall(i, Sort::Nat, guard_nc.implies(cnc)))
                    .and(Constr::forall(
                        i2,
                        Sort::Nat,
                        Constr::forall(beta, Sort::Nat, guard_c.implies(cc)),
                    ));
                Ok(wrap_exists(
                    scrut.constr.and(branches),
                    scrut.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::Let(x1, b1, k1), Expr::Let(x2, b2, k2)) => {
                if x1 != x2 {
                    return Err(TypeError::other(
                        "related let bindings must bind the same name",
                    ));
                }
                let bound = self.infer(sess, ctx, b1, b2)?;
                let ctx = ctx.bind_var(x1.clone(), bound.ty.clone());
                let budget = cost.clone() - bound.cost.clone();
                let body = self.check(sess, &ctx, k1, k2, ty, &budget)?;
                Ok(wrap_exists(
                    bound.constr.and(body),
                    bound.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::Unpack(p1, x1, k1), Expr::Unpack(p2, x2, k2)) => {
                if x1 != x2 {
                    return Err(TypeError::other("related unpacks must bind the same name"));
                }
                let packed = self.infer(sess, ctx, p1, p2)?;
                let (i, s, inner) = match expose(&packed.ty) {
                    RelType::Exists(i, s, inner) => (i, s, *inner),
                    other => {
                        return Err(TypeError::shape(
                            "an existential type for unpack",
                            rel_syntax::pretty::rel_type(&other),
                        ))
                    }
                };
                let skolem = sess.fresh.size("sk");
                let inner = inner.subst_idx(&i, &Idx::Var(skolem.clone()));
                let ctx = ctx.bind_idx(skolem.clone(), s).bind_var(x1.clone(), inner);
                let budget = cost.clone() - packed.cost.clone();
                let body = self.check(sess, &ctx, k1, k2, ty, &budget)?;
                Ok(wrap_exists(
                    packed.constr.and(Constr::forall(skolem, s, body)),
                    packed.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::CLet(g1, x1, k1), Expr::CLet(g2, x2, k2)) => {
                if x1 != x2 {
                    return Err(TypeError::other("related clets must bind the same name"));
                }
                let guarded = self.infer(sess, ctx, g1, g2)?;
                let (cond, inner) = match expose(&guarded.ty) {
                    RelType::CAnd(c, inner) => (c, *inner),
                    other => {
                        return Err(TypeError::shape(
                            "a constrained type (C & τ) for clet",
                            rel_syntax::pretty::rel_type(&other),
                        ))
                    }
                };
                let ctx = ctx.assume(cond.clone()).bind_var(x1.clone(), inner);
                let budget = cost.clone() - guarded.cost.clone();
                let body = self.check(sess, &ctx, k1, k2, ty, &budget)?;
                Ok(wrap_exists(
                    guarded.constr.and(cond.implies(body)),
                    guarded.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            // Everything else: switch to inference mode (alg-r-↑↓).
            _ => {
                let inf = self.infer(sess, ctx, e1, e2)?;
                let sub = rel_subtype(&inf.ty, ty)?;
                let c = inf
                    .constr
                    .and(sub)
                    .and(Constr::leq(inf.cost.clone(), cost.clone()));
                Ok(wrap_exists(
                    c,
                    inf.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
        }
    }

    /// Shared code of the λ/fix checking rules, including heuristic 2
    /// (split on the difference refinement of a list-typed argument).
    #[allow(clippy::too_many_arguments)]
    fn check_binder(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        (x1, b1): (&Var, &Expr),
        (x2, b2): (&Var, &Expr),
        dom: &RelType,
        te: &Idx,
        cod: &RelType,
        cost: &Idx,
    ) -> Result<Constr, TypeError> {
        if x1 != x2 {
            return Err(TypeError::other(format!(
                "related functions must bind the same parameter name (`{x1}` vs `{x2}`)"
            )));
        }
        let ctx = ctx.bind_var(x1.clone(), dom.clone());
        let zero_le_cost = Constr::leq(Idx::zero(), cost.clone());

        // Heuristic 2: split on α ≐ 0 when the bound argument is a list whose
        // difference refinement is not already a literal constant.
        let split_alpha = match dom {
            RelType::List { diff, .. }
                if self.heuristics.split_on_list_argument && diff.as_const().is_none() =>
            {
                Some(diff.clone())
            }
            _ => None,
        };

        let body = match split_alpha {
            None => self.check(sess, &ctx, b1, b2, cod, te)?,
            Some(alpha) => {
                let zero_guard = Constr::eq(alpha.clone(), Idx::zero());
                let pos_guard = Constr::leq(Idx::one(), alpha.clone());
                // α ≐ 0 branch: try nochange first (heuristic 2 continued).
                let ctx0 = ctx.assume(zero_guard.clone());
                let zero_branch = if self.heuristics.nochange_first_when_equal {
                    match self.try_nochange(sess, &ctx0, b1, b2, cod, te) {
                        Some(c) => c,
                        None => self.check(sess, &ctx0, b1, b2, cod, te)?,
                    }
                } else {
                    self.check(sess, &ctx0, b1, b2, cod, te)?
                };
                // α ≥ 1 branch: ordinary structural checking.
                let ctx1 = ctx.assume(pos_guard.clone());
                let pos_branch = self.check(sess, &ctx1, b1, b2, cod, te)?;
                zero_guard
                    .implies(zero_branch)
                    .and(pos_guard.implies(pos_branch))
            }
        };
        Ok(body.and(zero_le_cost))
    }

    /// Checking against `□ τ`: the `nochange` rule, with the ↑↓ route as a
    /// fallback/alternative.
    #[allow(clippy::too_many_arguments)]
    fn check_boxed(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
        inner: &RelType,
        boxed_ty: &RelType,
        cost: &Idx,
    ) -> Result<Constr, TypeError> {
        let mut paths = Vec::new();
        if let Some(c) = self.try_nochange(sess, ctx, e1, e2, inner, cost) {
            paths.push(c);
        }
        // ↑↓: infer and subtype against the boxed type.
        if let Ok(inf) = self.infer(sess, ctx, e1, e2) {
            if let Ok(sub) = rel_subtype(&inf.ty, boxed_ty) {
                let c = inf
                    .constr
                    .and(sub)
                    .and(Constr::leq(inf.cost.clone(), cost.clone()));
                paths.push(wrap_exists(
                    c,
                    inf.existentials.into_iter().map(|q| (q.var, q.sort)),
                ));
            }
        }
        if paths.is_empty() {
            Err(TypeError::CheckMismatch {
                term: e1.head_constructor().into(),
                ty: rel_syntax::pretty::rel_type(boxed_ty),
            })
        } else {
            Ok(Constr::disj(paths))
        }
    }

    /// The `nochange` rule: `e` related to itself at `□ τ` with relative cost
    /// zero, provided every free variable's type is itself boxable.
    fn try_nochange(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
        inner: &RelType,
        cost: &Idx,
    ) -> Option<Constr> {
        if e1 != e2 {
            return None;
        }
        let mut var_constraints = Constr::Top;
        for x in e1.free_vars() {
            let ty = ctx.lookup(&x).ok()?;
            let c = rel_subtype(ty, &RelType::boxed(ty.clone())).ok()?;
            var_constraints = var_constraints.and(c);
        }
        let t_inner = sess.fresh.cost("nc");
        let body = self
            .check(sess, ctx, e1, e2, inner, &Idx::Var(t_inner.clone()))
            .ok()?;
        Some(
            var_constraints
                .and(Constr::leq(Idx::zero(), cost.clone()))
                .and(Constr::exists(t_inner, Sort::Real, body)),
        )
    }

    /// The `switch` rule in checking mode: type each side with the unary
    /// checker; the relative cost is bounded by `t₁ − k₂`.
    #[allow(clippy::too_many_arguments)]
    fn switch_check(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
        a1: &UnaryType,
        a2: &UnaryType,
        cost: &Idx,
    ) -> Result<Constr, TypeError> {
        let unary = self.unary();
        let t1 = sess.fresh.cost("sw");
        let k2 = sess.fresh.cost("sw");
        let left: UnaryCtx = ctx.project(1);
        let right: UnaryCtx = ctx.project(2);
        let c1 = unary.check(
            &mut sess.fresh,
            &left,
            e1,
            a1,
            &Idx::zero(),
            &Idx::Var(t1.clone()),
        )?;
        let c2 = unary.check(
            &mut sess.fresh,
            &right,
            e2,
            a2,
            &Idx::Var(k2.clone()),
            &Idx::infty(),
        )?;
        let c = c1.and(c2).and(Constr::leq(
            Idx::Var(t1.clone()) - Idx::Var(k2.clone()),
            cost.clone(),
        ));
        Ok(wrap_exists(c, [(t1, Sort::Real), (k2, Sort::Real)]))
    }

    // ==================================================================
    // Inference mode
    // ==================================================================

    /// Infers a relational type and relative-cost bound for the pair
    /// `e₁ ⊖ e₂`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for introduction forms without annotations and
    /// structurally dissimilar pairs.
    pub fn infer(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        e1: &Expr,
        e2: &Expr,
    ) -> Result<RelInference, TypeError> {
        match (e1, e2) {
            (Expr::Var(x), Expr::Var(y)) if x == y => {
                Ok(RelInference::value(ctx.lookup(x)?.clone()))
            }
            (Expr::Unit, Expr::Unit) => Ok(RelInference::value(RelType::UnitR)),
            (Expr::Bool(a), Expr::Bool(b)) => Ok(RelInference::value(if a == b {
                RelType::BoolR
            } else {
                RelType::bool_u()
            })),
            (Expr::Int(a), Expr::Int(b)) => Ok(RelInference::value(if a == b {
                RelType::IntR
            } else {
                RelType::u_same(UnaryType::Int)
            })),
            (Expr::Prim(op1, args1), Expr::Prim(op2, args2))
                if op1 == op2 && args1.len() == args2.len() =>
            {
                let mut constr = Constr::Top;
                let mut existentials = Vec::new();
                let mut cost = Idx::zero();
                let mut all_diagonal = true;
                for (a1, a2) in args1.iter().zip(args2) {
                    let ia = self.infer(sess, ctx, a1, a2)?;
                    all_diagonal &= is_diagonal(&ia.ty);
                    constr = constr.and(ia.constr);
                    existentials.extend(ia.existentials);
                    cost = cost + ia.cost;
                }
                let ty = if all_diagonal {
                    if op1.returns_bool() {
                        RelType::BoolR
                    } else {
                        RelType::IntR
                    }
                } else if op1.returns_bool() {
                    RelType::bool_u()
                } else {
                    RelType::u_same(UnaryType::Int)
                };
                Ok(RelInference {
                    ty,
                    cost,
                    constr,
                    existentials,
                })
            }
            (Expr::Pair(a1, b1), Expr::Pair(a2, b2)) => {
                let ia = self.infer(sess, ctx, a1, a2)?;
                let ib = self.infer(sess, ctx, b1, b2)?;
                let mut existentials = ia.existentials;
                existentials.extend(ib.existentials);
                Ok(RelInference {
                    ty: RelType::prod(ia.ty, ib.ty),
                    cost: ia.cost + ib.cost,
                    constr: ia.constr.and(ib.constr),
                    existentials,
                })
            }
            (Expr::App(f1, a1), Expr::App(f2, a2)) => {
                let fun = self.infer(sess, ctx, f1, f2)?;
                self.infer_app(sess, ctx, fun, a1, a2)
            }
            (Expr::IApp(g1), Expr::IApp(g2)) => {
                let inner = self.infer(sess, ctx, g1, g2)?;
                let exposed = expose(&inner.ty);
                match exposed {
                    RelType::Forall(i, s, body) => {
                        let witness = sess.fresh.size("inst");
                        let ty = body.subst_idx(&i, &Idx::Var(witness.clone()));
                        let mut existentials = inner.existentials;
                        existentials.push(Quantified::new(witness, s));
                        Ok(RelInference {
                            ty,
                            cost: inner.cost,
                            constr: inner.constr,
                            existentials,
                        })
                    }
                    RelType::U(a1, a2) => {
                        // Instantiate both unary quantifiers with the same
                        // fresh witness.
                        match (*a1, *a2) {
                            (UnaryType::Forall(i1, s1, b1), UnaryType::Forall(i2, _, b2)) => {
                                let witness = sess.fresh.size("inst");
                                let ty = RelType::u(
                                    b1.subst_idx(&i1, &Idx::Var(witness.clone())),
                                    b2.subst_idx(&i2, &Idx::Var(witness.clone())),
                                );
                                let mut existentials = inner.existentials;
                                existentials.push(Quantified::new(witness, s1));
                                Ok(RelInference {
                                    ty,
                                    cost: inner.cost,
                                    constr: inner.constr,
                                    existentials,
                                })
                            }
                            (a1, a2) => Err(TypeError::shape(
                                "universally quantified unary types for index application",
                                rel_syntax::pretty::rel_type(&RelType::u(a1, a2)),
                            )),
                        }
                    }
                    other => Err(TypeError::shape(
                        "a universally quantified type for index application",
                        rel_syntax::pretty::rel_type(&other),
                    )),
                }
            }
            (Expr::Fst(p1), Expr::Fst(p2)) | (Expr::Snd(p1), Expr::Snd(p2)) => {
                let inner = self.infer(sess, ctx, p1, p2)?;
                let (a, b) = match expose(&inner.ty) {
                    RelType::Prod(a, b) => (a, b),
                    other => {
                        return Err(TypeError::shape(
                            "a product type for projection",
                            rel_syntax::pretty::rel_type(&other),
                        ))
                    }
                };
                let ty = if matches!(e1, Expr::Fst(_)) { *a } else { *b };
                Ok(RelInference {
                    ty,
                    cost: inner.cost,
                    constr: inner.constr,
                    existentials: inner.existentials,
                })
            }
            (Expr::CElim(g1), Expr::CElim(g2)) => {
                let inner = self.infer(sess, ctx, g1, g2)?;
                match expose(&inner.ty) {
                    RelType::CImpl(cond, body) => Ok(RelInference {
                        ty: *body,
                        cost: inner.cost,
                        constr: inner.constr.and(cond),
                        existentials: inner.existentials,
                    }),
                    other => Err(TypeError::shape(
                        "a conditional type (C ⊃ τ) for celim",
                        rel_syntax::pretty::rel_type(&other),
                    )),
                }
            }
            (Expr::Let(x1, b1, k1), Expr::Let(x2, b2, k2)) if x1 == x2 => {
                let bound = self.infer(sess, ctx, b1, b2)?;
                let ctx2 = ctx.bind_var(x1.clone(), bound.ty.clone());
                let body = self.infer(sess, &ctx2, k1, k2)?;
                let mut existentials = bound.existentials;
                existentials.extend(body.existentials);
                Ok(RelInference {
                    ty: body.ty,
                    cost: bound.cost + body.cost,
                    constr: bound.constr.and(body.constr),
                    existentials,
                })
            }
            (Expr::Anno(inner1, ty1, cost1), Expr::Anno(inner2, ty2, _)) => {
                if ty1 != ty2 {
                    return Err(TypeError::other(
                        "related annotated expressions must carry the same type annotation",
                    ));
                }
                let (cost, extra_ex) = match cost1 {
                    Some(c) => (c.clone(), None),
                    None => {
                        let t = sess.fresh.cost("an");
                        (Idx::Var(t.clone()), Some(t))
                    }
                };
                let c = self.check(sess, ctx, inner1, inner2, ty1, &cost)?;
                let mut existentials = Vec::new();
                if let Some(t) = extra_ex {
                    existentials.push(Quantified::new(t, Sort::Real));
                }
                Ok(RelInference {
                    ty: ty1.clone(),
                    cost,
                    constr: c,
                    existentials,
                })
            }
            _ => {
                if e1.head_constructor() != e2.head_constructor() {
                    Err(TypeError::StructurallyDissimilar {
                        left: e1.head_constructor().into(),
                        right: e2.head_constructor().into(),
                    })
                } else {
                    Err(TypeError::CannotInfer(format!(
                        "a pair of `{}` expressions",
                        e1.head_constructor()
                    )))
                }
            }
        }
    }

    /// Application inference, including heuristic 4 (lazy `□` elimination at
    /// the applied position) and the `U`-arrow conversion.
    fn infer_app(
        &self,
        sess: &mut Session,
        ctx: &RelCtx,
        fun: RelInference,
        a1: &Expr,
        a2: &Expr,
    ) -> Result<RelInference, TypeError> {
        let exposed = expose_keep_box_arrow(&fun.ty);
        // Candidate (domain, latent relative cost, codomain) triples, tried
        // in order (heuristic 4: box-preserving first).
        let mut candidates: Vec<(RelType, Idx, RelType)> = Vec::new();
        match &exposed {
            RelType::Boxed(inner) => {
                if let RelType::Arrow(d, _, c) = inner.as_ref() {
                    if self.heuristics.lazy_box_elimination {
                        candidates.push((
                            RelType::boxed((**d).clone()),
                            Idx::zero(),
                            RelType::boxed((**c).clone()),
                        ));
                    }
                    if let RelType::Arrow(d, t, c) = inner.as_ref() {
                        candidates.push(((**d).clone(), t.clone(), (**c).clone()));
                    }
                }
            }
            RelType::Arrow(d, t, c) => {
                candidates.push(((**d).clone(), t.clone(), (**c).clone()));
            }
            RelType::U(ua, ub) => {
                // Convert a pair of unary arrows into a relational arrow whose
                // latent relative cost is the exec-interval gap.
                if let (UnaryType::Arrow(d1, c1, r1), UnaryType::Arrow(d2, c2, r2)) =
                    (ua.as_ref(), ub.as_ref())
                {
                    candidates.push((
                        RelType::u((**d1).clone(), (**d2).clone()),
                        c1.hi.clone() - c2.lo.clone(),
                        RelType::u((**r1).clone(), (**r2).clone()),
                    ));
                }
            }
            _ => {}
        }
        if candidates.is_empty() {
            return Err(TypeError::shape(
                "a function type in application position",
                rel_syntax::pretty::rel_type(&fun.ty),
            ));
        }
        let multiple = candidates.len() > 1;
        let mut last_err = None;
        for (dom, te, cod) in candidates {
            let targ = sess.fresh.cost("ta");
            match self.check(sess, ctx, a1, a2, &dom, &Idx::Var(targ.clone())) {
                Ok(carg) => {
                    let constr = fun.constr.clone().and(carg);
                    // When several candidates exist (the boxed-arrow case),
                    // commit to this one only if its constraints are
                    // satisfiable in the current context ("try to complete the
                    // typing", heuristic 4); otherwise fall through.
                    if multiple {
                        let closed = wrap_exists(
                            constr.clone(),
                            fun.existentials
                                .iter()
                                .map(|q| (q.var.clone(), q.sort))
                                .chain([(targ.clone(), Sort::Real)]),
                        );
                        if !sess
                            .solver
                            .entails(&ctx.universals(), &ctx.assumptions, &closed)
                            .is_valid()
                        {
                            last_err = Some(TypeError::other(
                                "argument does not fit this elimination of the boxed function type",
                            ));
                            continue;
                        }
                    }
                    let mut existentials = fun.existentials.clone();
                    existentials.push(Quantified::new(targ.clone(), Sort::Real));
                    return Ok(RelInference {
                        ty: cod,
                        cost: fun.cost.clone() + Idx::Var(targ) + te,
                        constr,
                        existentials,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| TypeError::other("no applicable application rule")))
    }
}

// ----------------------------------------------------------------------
// Helpers
// ----------------------------------------------------------------------

fn expect_arrow(ty: &RelType) -> Result<(RelType, Idx, RelType), TypeError> {
    match ty {
        RelType::Arrow(a, t, b) => Ok(((**a).clone(), t.clone(), (**b).clone())),
        other => Err(TypeError::CheckMismatch {
            term: "function".into(),
            ty: rel_syntax::pretty::rel_type(other),
        }),
    }
}

fn expect_list(ty: &RelType) -> Result<(Idx, Idx, RelType), TypeError> {
    match ty {
        RelType::List { len, diff, elem } => Ok((len.clone(), diff.clone(), (**elem).clone())),
        other => Err(TypeError::CheckMismatch {
            term: "list".into(),
            ty: rel_syntax::pretty::rel_type(other),
        }),
    }
}

/// Pushes boxes inward until the head constructor is something an elimination
/// rule can dispatch on.
fn expose(ty: &RelType) -> RelType {
    let mut cur = ty.clone();
    for _ in 0..8 {
        match &cur {
            RelType::Boxed(_) => match push_box(&cur) {
                Some(next) => cur = next,
                None => match &cur {
                    RelType::Boxed(inner) => cur = (**inner).clone(),
                    _ => unreachable!("guarded by the outer match"),
                },
            },
            _ => break,
        }
    }
    cur
}

/// Like [`expose`] but keeps a `□(τ₁ → τ₂)` intact so the application rule
/// can apply heuristic 4 itself.
fn expose_keep_box_arrow(ty: &RelType) -> RelType {
    match ty {
        RelType::Boxed(inner) => match inner.as_ref() {
            RelType::Arrow(_, _, _) | RelType::U(_, _) => ty.clone(),
            _ => match push_box(ty) {
                Some(next) => expose_keep_box_arrow(&next),
                None => match ty {
                    RelType::Boxed(inner) => expose_keep_box_arrow(inner),
                    _ => ty.clone(),
                },
            },
        },
        RelType::U(a, b) => {
            // Strip matching boxes... U of arrows needs no exposure; leave as is.
            RelType::u((**a).clone(), (**b).clone())
        }
        _ => ty.clone(),
    }
}

fn is_diagonal(ty: &RelType) -> bool {
    matches!(
        ty,
        RelType::BoolR | RelType::IntR | RelType::UnitR | RelType::Boxed(_)
    )
}

fn is_diagonal_bool(ty: &RelType) -> bool {
    match ty {
        RelType::BoolR => true,
        RelType::Boxed(inner) => matches!(
            inner.as_ref(),
            RelType::BoolR | RelType::U(_, _) | RelType::TVar(_)
        ),
        _ => false,
    }
}

fn wrap_exists(c: Constr, vars: impl IntoIterator<Item = (rel_index::IdxVar, Sort)>) -> Constr {
    let mut out = c;
    for (v, s) in vars {
        out = Constr::exists(v, s, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::{parse_expr, parse_rel_type};

    fn check_program(expr_src: &str, ty_src: &str) -> bool {
        let e = parse_expr(expr_src).unwrap();
        let ty = parse_rel_type(ty_src).unwrap();
        let checker = RelChecker::new();
        let mut sess = Session::new();
        let ctx = RelCtx::new();
        match checker.check(&mut sess, &ctx, &e, &e, &ty, &Idx::zero()) {
            Ok(c) => {
                let mut solver = Solver::new();
                solver
                    .entails(&ctx.universals(), &ctx.assumptions, &c)
                    .is_valid()
            }
            Err(_) => false,
        }
    }

    #[test]
    fn booleans_relate_diagonally() {
        assert!(check_program("true", "boolr"));
        assert!(check_program("true", "UU bool"));
        assert!(check_program("3", "intr"));
        assert!(!check_program("true", "intr"));
    }

    #[test]
    fn different_booleans_relate_only_at_bool_u() {
        let checker = RelChecker::new();
        let mut sess = Session::new();
        let ctx = RelCtx::new();
        let t = parse_expr("true").unwrap();
        let f = parse_expr("false").unwrap();
        let boolu = parse_rel_type("UU bool").unwrap();
        let c = checker
            .check(&mut sess, &ctx, &t, &f, &boolu, &Idx::zero())
            .unwrap();
        let mut solver = Solver::new();
        assert!(solver.entails(&[], &Constr::Top, &c).is_valid());
        // But not at boolr.
        let boolr = parse_rel_type("boolr").unwrap();
        let c = checker.check(&mut sess, &ctx, &t, &f, &boolr, &Idx::zero());
        if let Ok(c) = c {
            let mut solver = Solver::new();
            assert!(!solver.entails(&[], &Constr::Top, &c).is_valid());
        }
    }

    #[test]
    fn identity_function_checks_at_relational_arrow() {
        assert!(check_program("lam x. x", "boolr -> boolr"));
        assert!(check_program("lam x. x", "UU bool -> UU bool"));
    }

    #[test]
    fn constant_lists_check_with_exact_refinements() {
        assert!(check_program("cons(1, cons(2, nil))", "list[2; 0] intr"));
        assert!(check_program("cons(1, cons(2, nil))", "list[2; 2] intr"));
        assert!(!check_program("cons(1, cons(2, nil))", "list[3; 0] intr"));
    }

    #[test]
    fn the_map_example_checks_with_its_paper_type() {
        // map from §3/§5 of the paper, with the relative cost t·α.
        let src = "Lam. fix map(f). Lam. Lam. lam l. \
                   case l of nil -> nil | h :: tl -> cons(f h, map f [] [] tl)";
        let ty = "forall t :: real. box(tv a ->[t] tv b) -> \
                  forall n :: nat. forall al :: nat. \
                  list[n; al] tv a ->[t * al] list[n; al] tv b";
        assert!(check_program(src, ty));
    }

    #[test]
    fn map_with_an_unsound_cost_bound_is_rejected() {
        let src = "Lam. fix map(f). Lam. Lam. lam l. \
                   case l of nil -> nil | h :: tl -> cons(f h, map f [] [] tl)";
        // Claiming zero relative cost regardless of α is unsound.
        let ty = "forall t :: real. box(tv a ->[t] tv b) -> \
                  forall n :: nat. forall al :: nat. \
                  list[n; al] tv a ->[0] list[n; al] tv b";
        assert!(!check_program(src, ty));
    }

    #[test]
    fn boxed_functions_apply_with_zero_relative_cost() {
        // λf. λx. f x  :  □(intr →[t] intr) → □intr →[0] □intr
        let src = "lam f. lam x. f x";
        let ty = "forall t :: real. box(intr ->[t] intr) -> box intr -> box intr";
        assert!(check_program(src, ty));
    }

    #[test]
    fn unary_switch_handles_structurally_dissimilar_programs() {
        let checker = RelChecker::new();
        let mut sess = Session::new();
        let ctx = RelCtx::new();
        // `1 + 2` vs `3`: different shapes, related at U(int,int) with
        // relative cost 1 (left costs one primitive step, right costs zero).
        let left = parse_expr("1 + 2").unwrap();
        let right = parse_expr("3").unwrap();
        let ty = parse_rel_type("UU int").unwrap();
        let c = checker
            .check(&mut sess, &ctx, &left, &right, &ty, &Idx::one())
            .unwrap();
        let mut solver = Solver::new();
        assert!(solver.entails(&[], &Constr::Top, &c).is_valid());
        // With a relative-cost budget of 0 the same pair must be rejected.
        let c = checker
            .check(&mut sess, &ctx, &left, &right, &ty, &Idx::zero())
            .unwrap();
        assert!(!solver.entails(&[], &Constr::Top, &c).is_valid());
    }
}
