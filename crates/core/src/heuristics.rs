//! The example-guided heuristics of §6.
//!
//! The surface language deliberately does not carry the syntactic markers of
//! the core calculi (`consC`/`consNC`, `split`, `NC`, `switch`), so the
//! checker must decide where to apply the corresponding non-syntax-directed
//! rules.  The paper lists five heuristics; each is individually toggleable
//! here so the ablation benchmark can measure its contribution.

/// Toggles for the five heuristics of §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heuristics {
    /// Heuristic 1: when checking a pair of cons-ed lists, apply both the
    /// `consC` and `consNC` analogues and join the constraints with `∨`.
    pub both_cons_rules: bool,
    /// Heuristic 2: when a function binds an argument of type `list[n]^α τ`,
    /// immediately case-split on `α ≐ 0` (the `rr-split` analogue)…
    pub split_on_list_argument: bool,
    /// …and, in the `α ≐ 0` branch, try the `nochange` rule first.
    pub nochange_first_when_equal: bool,
    /// Heuristic 4: at elimination positions whose subject has a `□`-ed
    /// type, apply the `□`-distribution subtyping lazily, preferring the
    /// box-preserving alternative.
    pub lazy_box_elimination: bool,
    /// Heuristic 5: fall back to unary reasoning only when eliminating or
    /// checking at `U (A₁, A₂)`, or when the related expressions are
    /// structurally dissimilar.
    pub unary_fallback: bool,
}

impl Heuristics {
    /// All heuristics enabled (the configuration used in the paper's
    /// evaluation).
    pub const fn all() -> Heuristics {
        Heuristics {
            both_cons_rules: true,
            split_on_list_argument: true,
            nochange_first_when_equal: true,
            lazy_box_elimination: true,
            unary_fallback: true,
        }
    }

    /// All heuristics disabled (pure syntax-directed checking; many
    /// benchmarks fail in this configuration, which is the point of the
    /// ablation).
    pub const fn none() -> Heuristics {
        Heuristics {
            both_cons_rules: false,
            split_on_list_argument: false,
            nochange_first_when_equal: false,
            lazy_box_elimination: false,
            unary_fallback: false,
        }
    }

    /// Disables a single heuristic, by 1-based index as numbered in §6
    /// (3 — "subtyping only at specific places" — is structural in this
    /// implementation and cannot be disabled).
    pub fn without(mut self, number: u8) -> Heuristics {
        match number {
            1 => self.both_cons_rules = false,
            2 => {
                self.split_on_list_argument = false;
                self.nochange_first_when_equal = false;
            }
            4 => self.lazy_box_elimination = false,
            5 => self.unary_fallback = false,
            _ => {}
        }
        self
    }
}

impl Default for Heuristics {
    fn default() -> Self {
        Heuristics::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_everything() {
        let h = Heuristics::default();
        assert!(h.both_cons_rules && h.split_on_list_argument && h.lazy_box_elimination);
    }

    #[test]
    fn without_disables_selected_heuristics() {
        let h = Heuristics::all().without(1);
        assert!(!h.both_cons_rules);
        assert!(h.split_on_list_argument);
        let h = Heuristics::all().without(2);
        assert!(!h.split_on_list_argument && !h.nochange_first_when_equal);
        let h = Heuristics::all().without(3);
        assert_eq!(h, Heuristics::all());
    }
}
