//! relSTLC (§2): the relational simply-typed lambda calculus.
//!
//! This module is a small, self-contained implementation of the paper's
//! warm-up system: booleans (`boolr`, `boolu`), arrows, subtyping induced by
//! `boolr ⊑ boolu`, a declarative typing relation and its bidirectional
//! algorithmic counterpart, for which soundness and completeness hold without
//! any of the later systems' nondeterminism.  It exists to mirror the paper's
//! §2 exactly; the full RelCost machinery lives in [`crate::bidir`].

use rel_syntax::{Expr, Var};
use rel_unary::TypeError;

/// relSTLC types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StlcType {
    /// Identical booleans (the diagonal relation).
    BoolR,
    /// Arbitrary booleans (the complete relation).
    BoolU,
    /// Function types.
    Arrow(Box<StlcType>, Box<StlcType>),
}

impl StlcType {
    /// `τ₁ → τ₂`.
    pub fn arrow(a: StlcType, b: StlcType) -> StlcType {
        StlcType::Arrow(Box::new(a), Box::new(b))
    }
}

/// Declarative subtyping: reflexivity, `boolr ⊑ boolu`, and the usual
/// contravariant/covariant arrow rule; transitivity is admissible.
pub fn subtype(a: &StlcType, b: &StlcType) -> bool {
    match (a, b) {
        (StlcType::BoolR, StlcType::BoolR)
        | (StlcType::BoolU, StlcType::BoolU)
        | (StlcType::BoolR, StlcType::BoolU) => true,
        (StlcType::Arrow(a1, b1), StlcType::Arrow(a2, b2)) => subtype(a2, a1) && subtype(b1, b2),
        _ => false,
    }
}

/// A typing context for relSTLC.
pub type StlcCtx = Vec<(Var, StlcType)>;

fn lookup<'a>(ctx: &'a StlcCtx, x: &Var) -> Result<&'a StlcType, TypeError> {
    ctx.iter()
        .rev()
        .find(|(y, _)| y == x)
        .map(|(_, t)| t)
        .ok_or_else(|| TypeError::UnboundVariable(x.name().to_string()))
}

/// The bidirectional checking judgment `Γ ⊢ e₁ ∽ e₂ ↓ τ`.
///
/// # Errors
///
/// Returns a [`TypeError`] when the pair cannot be given the type.
pub fn check(ctx: &StlcCtx, e1: &Expr, e2: &Expr, ty: &StlcType) -> Result<(), TypeError> {
    match ((e1, e2), ty) {
        ((Expr::Lam(x1, b1), Expr::Lam(x2, b2)), StlcType::Arrow(dom, cod)) => {
            if x1 != x2 {
                return Err(TypeError::other(
                    "related lambdas must bind the same variable name",
                ));
            }
            let mut ctx = ctx.clone();
            ctx.push((x1.clone(), (**dom).clone()));
            check(&ctx, b1, b2, cod)
        }
        ((Expr::If(c1, t1, f1), Expr::If(c2, t2, f2)), _) => {
            // rule alg-r-if: the two conditions must relate at boolr so the
            // branches can be related pointwise.
            check(ctx, c1, c2, &StlcType::BoolR)?;
            check(ctx, t1, t2, ty)?;
            check(ctx, f1, f2, ty)
        }
        _ => {
            // alg-↑↓: switch to inference and use subtyping.
            let inferred = infer(ctx, e1, e2)?;
            if subtype(&inferred, ty) {
                Ok(())
            } else {
                Err(TypeError::NotASubtype {
                    sub: format!("{inferred:?}"),
                    sup: format!("{ty:?}"),
                })
            }
        }
    }
}

/// The bidirectional inference judgment `Γ ⊢ e₁ ∽ e₂ ↑ τ`.
///
/// # Errors
///
/// Returns a [`TypeError`] when no type can be inferred.
pub fn infer(ctx: &StlcCtx, e1: &Expr, e2: &Expr) -> Result<StlcType, TypeError> {
    match (e1, e2) {
        (Expr::Var(x), Expr::Var(y)) if x == y => Ok(lookup(ctx, x)?.clone()),
        (Expr::Bool(a), Expr::Bool(b)) => Ok(if a == b {
            StlcType::BoolR
        } else {
            StlcType::BoolU
        }),
        (Expr::App(f1, a1), Expr::App(f2, a2)) => match infer(ctx, f1, f2)? {
            StlcType::Arrow(dom, cod) => {
                check(ctx, a1, a2, &dom)?;
                Ok(*cod)
            }
            other => Err(TypeError::shape("a function type", format!("{other:?}"))),
        },
        (Expr::If(c1, t1, f1), Expr::If(c2, t2, f2)) => {
            check(ctx, c1, c2, &StlcType::BoolR)?;
            let ty = infer(ctx, t1, t2)?;
            check(ctx, f1, f2, &ty)?;
            Ok(ty)
        }
        _ => Err(TypeError::CannotInfer(format!(
            "a pair of `{}`/`{}` expressions in relSTLC",
            e1.head_constructor(),
            e2.head_constructor()
        ))),
    }
}

/// The declarative judgment `Γ ⊢ e₁ ∽ e₂ : τ`, realized as the algorithmic
/// judgment followed by subsumption (for relSTLC the two coincide — this is
/// the soundness/completeness result of §2).
pub fn declarative(ctx: &StlcCtx, e1: &Expr, e2: &Expr, ty: &StlcType) -> bool {
    check(ctx, e1, e2, ty).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_expr;

    fn e(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn identical_booleans_relate_at_boolr_and_boolu() {
        assert!(declarative(
            &vec![],
            &e("true"),
            &e("true"),
            &StlcType::BoolR
        ));
        assert!(declarative(
            &vec![],
            &e("true"),
            &e("true"),
            &StlcType::BoolU
        ));
    }

    #[test]
    fn different_booleans_relate_only_at_boolu() {
        assert!(!declarative(
            &vec![],
            &e("true"),
            &e("false"),
            &StlcType::BoolR
        ));
        assert!(declarative(
            &vec![],
            &e("true"),
            &e("false"),
            &StlcType::BoolU
        ));
    }

    #[test]
    fn subtyping_is_reflexive_and_boolr_below_boolu() {
        let arr = StlcType::arrow(StlcType::BoolU, StlcType::BoolR);
        assert!(subtype(&arr, &arr));
        assert!(subtype(&StlcType::BoolR, &StlcType::BoolU));
        assert!(!subtype(&StlcType::BoolU, &StlcType::BoolR));
        // Contravariance: (boolu → boolr) ⊑ (boolr → boolu).
        assert!(subtype(
            &StlcType::arrow(StlcType::BoolU, StlcType::BoolR),
            &StlcType::arrow(StlcType::BoolR, StlcType::BoolU)
        ));
        assert!(!subtype(
            &StlcType::arrow(StlcType::BoolR, StlcType::BoolR),
            &StlcType::arrow(StlcType::BoolU, StlcType::BoolR)
        ));
    }

    #[test]
    fn if_requires_related_conditions() {
        // λb. if b then true else false : boolr → boolr.
        let f = e("lam b. if b then true else false");
        assert!(declarative(
            &vec![],
            &f,
            &f,
            &StlcType::arrow(StlcType::BoolR, StlcType::BoolR)
        ));
        // With a boolu argument the condition cannot be related at boolr.
        assert!(!declarative(
            &vec![],
            &f,
            &f,
            &StlcType::arrow(StlcType::BoolU, StlcType::BoolR)
        ));
        // …but the result can still be boolu via the then/else literals? No:
        // the condition itself is the problem, so even boolu results fail.
        assert!(!declarative(
            &vec![],
            &f,
            &f,
            &StlcType::arrow(StlcType::BoolU, StlcType::BoolU)
        ));
    }

    #[test]
    fn application_uses_checking_for_arguments() {
        let ctx = vec![
            (
                Var::new("f"),
                StlcType::arrow(StlcType::BoolU, StlcType::BoolR),
            ),
            (Var::new("x"), StlcType::BoolR),
        ];
        // f x : the argument x (boolr) is accepted where boolu is expected.
        assert_eq!(infer(&ctx, &e("f x"), &e("f x")).unwrap(), StlcType::BoolR);
    }

    #[test]
    fn soundness_of_inference_with_respect_to_checking() {
        // Anything inferable checks at its inferred type (and supertypes).
        let ctx = vec![(Var::new("x"), StlcType::BoolR)];
        let ty = infer(&ctx, &e("x"), &e("x")).unwrap();
        assert!(check(&ctx, &e("x"), &e("x"), &ty).is_ok());
        assert!(check(&ctx, &e("x"), &e("x"), &StlcType::BoolU).is_ok());
    }
}
