//! RelCost Core: the annotated core calculus targeted by elaboration.
//!
//! The paper's two-step methodology first elaborates the declarative systems
//! into core calculi whose terms carry explicit markers that resolve the
//! nondeterministic rule choices (`consC`/`consNC`, `split … with C`, `NC e`,
//! `switch e`, index-annotated `Λi. e` and `e[I]`), and then gives the core
//! calculus a bidirectional algorithmic system.  The production checker in
//! this crate follows the paper's *implementation* instead (it works on
//! surface terms with heuristics), but the core syntax is still provided —
//! together with the erasure function `|·|` back to surface terms — because
//! it is the vehicle of the paper's completeness statement (Theorems 2–3) and
//! the natural exchange format for tools that want to record which rule was
//! chosen where.

use rel_constraint::Constr;
use rel_index::{Idx, IdxVar};
use rel_syntax::{Expr, RelType, Var};

/// Expressions of RelCost Core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreExpr {
    /// A variable occurrence.
    Var(Var),
    /// Unit.
    Unit,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Conditional.
    If(Box<CoreExpr>, Box<CoreExpr>, Box<CoreExpr>),
    /// λ-abstraction.
    Lam(Var, Box<CoreExpr>),
    /// Recursive function.
    Fix(Var, Var, Box<CoreExpr>),
    /// Application.
    App(Box<CoreExpr>, Box<CoreExpr>),
    /// Index abstraction with an explicit index variable (`Λi. e`).
    ILam(IdxVar, Box<CoreExpr>),
    /// Index application with an explicit index argument (`e[I]`).
    IApp(Box<CoreExpr>, Idx),
    /// Empty list.
    Nil,
    /// Cons whose heads may differ (`consC`).
    ConsC(Box<CoreExpr>, Box<CoreExpr>),
    /// Cons whose heads are equal (`consNC`).
    ConsNC(Box<CoreExpr>, Box<CoreExpr>),
    /// Three-branch list case (`nil`, `::NC`, `::C`).
    CaseList {
        /// Scrutinee.
        scrut: Box<CoreExpr>,
        /// Nil branch.
        nil_branch: Box<CoreExpr>,
        /// Head binder.
        head: Var,
        /// Tail binder.
        tail: Var,
        /// Branch for equal heads.
        cons_nc: Box<CoreExpr>,
        /// Branch for differing heads.
        cons_c: Box<CoreExpr>,
    },
    /// Constraint split: `split (e₁, e₂) with C`.
    Split(Box<CoreExpr>, Box<CoreExpr>, Constr),
    /// The no-change marker `NC e` (the `nochange` rule).
    NoChange(Box<CoreExpr>),
    /// The unary-reasoning marker `switch e`.
    Switch(Box<CoreExpr>),
    /// Pair.
    Pair(Box<CoreExpr>, Box<CoreExpr>),
    /// First projection.
    Fst(Box<CoreExpr>),
    /// Second projection.
    Snd(Box<CoreExpr>),
    /// Let binding.
    Let(Var, Box<CoreExpr>, Box<CoreExpr>),
    /// Existential introduction with an explicit witness.
    Pack(Idx, Box<CoreExpr>),
    /// Existential elimination.
    Unpack(Box<CoreExpr>, Var, Box<CoreExpr>),
    /// `C & τ` elimination.
    CLet(Box<CoreExpr>, Var, Box<CoreExpr>),
    /// `C ⊃ τ` elimination.
    CElim(Box<CoreExpr>),
    /// Subtyping coercion inserted by elaboration (Lemma 1), annotated with
    /// the source and target types.
    Coerce(Box<CoreExpr>, RelType, RelType),
}

impl CoreExpr {
    /// The erasure `|e|` back to surface syntax: all core-only markers are
    /// dropped, `consC`/`consNC` collapse to `cons`, the three-branch case
    /// collapses to the two-branch surface case using the `::C` branch (the
    /// two cons branches erase to the same surface branch in terms produced
    /// by elaboration), and coercions disappear.
    pub fn erase(&self) -> Expr {
        match self {
            CoreExpr::Var(x) => Expr::Var(x.clone()),
            CoreExpr::Unit => Expr::Unit,
            CoreExpr::Bool(b) => Expr::Bool(*b),
            CoreExpr::Int(n) => Expr::Int(*n),
            CoreExpr::If(c, t, f) => Expr::if_then_else(c.erase(), t.erase(), f.erase()),
            CoreExpr::Lam(x, b) => Expr::lam(x.clone(), b.erase()),
            CoreExpr::Fix(f, x, b) => Expr::fix(f.clone(), x.clone(), b.erase()),
            CoreExpr::App(f, a) => f.erase().app(a.erase()),
            CoreExpr::ILam(_, b) => b.erase().ilam(),
            CoreExpr::IApp(f, _) => f.erase().iapp(),
            CoreExpr::Nil => Expr::Nil,
            CoreExpr::ConsC(h, t) | CoreExpr::ConsNC(h, t) => Expr::cons(h.erase(), t.erase()),
            CoreExpr::CaseList {
                scrut,
                nil_branch,
                head,
                tail,
                cons_c,
                ..
            } => Expr::case_list(
                scrut.erase(),
                nil_branch.erase(),
                head.clone(),
                tail.clone(),
                cons_c.erase(),
            ),
            CoreExpr::Split(e, _, _) => e.erase(),
            CoreExpr::NoChange(e) | CoreExpr::Switch(e) => e.erase(),
            CoreExpr::Pair(a, b) => Expr::pair(a.erase(), b.erase()),
            CoreExpr::Fst(e) => Expr::Fst(Box::new(e.erase())),
            CoreExpr::Snd(e) => Expr::Snd(Box::new(e.erase())),
            CoreExpr::Let(x, a, b) => Expr::let_in(x.clone(), a.erase(), b.erase()),
            CoreExpr::Pack(_, e) => Expr::Pack(Box::new(e.erase())),
            CoreExpr::Unpack(a, x, b) => {
                Expr::Unpack(Box::new(a.erase()), x.clone(), Box::new(b.erase()))
            }
            CoreExpr::CLet(a, x, b) => {
                Expr::CLet(Box::new(a.erase()), x.clone(), Box::new(b.erase()))
            }
            CoreExpr::CElim(e) => Expr::CElim(Box::new(e.erase())),
            CoreExpr::Coerce(e, _, _) => e.erase(),
        }
    }

    /// Number of core-only markers (`consC/NC` choices, splits, `NC`,
    /// `switch`, coercions, index annotations) in the term — the amount of
    /// information elaboration had to add.
    pub fn marker_count(&self) -> usize {
        let own = match self {
            CoreExpr::ConsC(_, _)
            | CoreExpr::ConsNC(_, _)
            | CoreExpr::Split(_, _, _)
            | CoreExpr::NoChange(_)
            | CoreExpr::Switch(_)
            | CoreExpr::Coerce(_, _, _)
            | CoreExpr::ILam(_, _)
            | CoreExpr::IApp(_, _)
            | CoreExpr::Pack(_, _) => 1,
            _ => 0,
        };
        own + self
            .children()
            .iter()
            .map(|c| c.marker_count())
            .sum::<usize>()
    }

    fn children(&self) -> Vec<&CoreExpr> {
        match self {
            CoreExpr::Var(_)
            | CoreExpr::Unit
            | CoreExpr::Bool(_)
            | CoreExpr::Int(_)
            | CoreExpr::Nil => vec![],
            CoreExpr::If(a, b, c) => vec![a, b, c],
            CoreExpr::Lam(_, b) | CoreExpr::Fix(_, _, b) | CoreExpr::ILam(_, b) => vec![b],
            CoreExpr::App(a, b)
            | CoreExpr::ConsC(a, b)
            | CoreExpr::ConsNC(a, b)
            | CoreExpr::Pair(a, b)
            | CoreExpr::Split(a, b, _) => vec![a, b],
            CoreExpr::IApp(a, _)
            | CoreExpr::NoChange(a)
            | CoreExpr::Switch(a)
            | CoreExpr::Fst(a)
            | CoreExpr::Snd(a)
            | CoreExpr::Pack(_, a)
            | CoreExpr::CElim(a)
            | CoreExpr::Coerce(a, _, _) => vec![a],
            CoreExpr::Let(_, a, b) | CoreExpr::Unpack(a, _, b) | CoreExpr::CLet(a, _, b) => {
                vec![a, b]
            }
            CoreExpr::CaseList {
                scrut,
                nil_branch,
                cons_nc,
                cons_c,
                ..
            } => vec![scrut, nil_branch, cons_nc, cons_c],
        }
    }
}

/// A naive, syntax-directed embedding of surface terms into the core
/// calculus: every `cons` becomes `consC`, every case gets its `::C` branch
/// duplicated, and no `split`/`NC`/`switch` markers are inserted.  This is the
/// "zero-information" elaboration — the identity on erasure — used by tests to
/// exercise the erasure round-trip; the checker's heuristics correspond to
/// richer elaborations.
pub fn embed_naive(e: &Expr) -> CoreExpr {
    match e {
        Expr::Var(x) => CoreExpr::Var(x.clone()),
        Expr::Unit => CoreExpr::Unit,
        Expr::Bool(b) => CoreExpr::Bool(*b),
        Expr::Int(n) => CoreExpr::Int(*n),
        Expr::Prim(_, _) => {
            // Primitive operations are surface-level sugar; represent them as
            // an opaque application spine rooted at a variable named after the
            // operator.  (Used only by the erasure tests, which do not build
            // primitive expressions.)
            CoreExpr::Var(Var::new("#prim"))
        }
        Expr::If(c, t, f) => CoreExpr::If(
            Box::new(embed_naive(c)),
            Box::new(embed_naive(t)),
            Box::new(embed_naive(f)),
        ),
        Expr::Lam(x, b) => CoreExpr::Lam(x.clone(), Box::new(embed_naive(b))),
        Expr::Fix(f, x, b) => CoreExpr::Fix(f.clone(), x.clone(), Box::new(embed_naive(b))),
        Expr::App(f, a) => CoreExpr::App(Box::new(embed_naive(f)), Box::new(embed_naive(a))),
        Expr::ILam(b) => CoreExpr::ILam(IdxVar::new("i"), Box::new(embed_naive(b))),
        Expr::IApp(f) => CoreExpr::IApp(Box::new(embed_naive(f)), Idx::zero()),
        Expr::Nil => CoreExpr::Nil,
        Expr::Cons(h, t) => CoreExpr::ConsC(Box::new(embed_naive(h)), Box::new(embed_naive(t))),
        Expr::CaseList {
            scrut,
            nil_branch,
            head,
            tail,
            cons_branch,
        } => CoreExpr::CaseList {
            scrut: Box::new(embed_naive(scrut)),
            nil_branch: Box::new(embed_naive(nil_branch)),
            head: head.clone(),
            tail: tail.clone(),
            cons_nc: Box::new(embed_naive(cons_branch)),
            cons_c: Box::new(embed_naive(cons_branch)),
        },
        Expr::Pair(a, b) => CoreExpr::Pair(Box::new(embed_naive(a)), Box::new(embed_naive(b))),
        Expr::Fst(e) => CoreExpr::Fst(Box::new(embed_naive(e))),
        Expr::Snd(e) => CoreExpr::Snd(Box::new(embed_naive(e))),
        Expr::Let(x, a, b) => CoreExpr::Let(
            x.clone(),
            Box::new(embed_naive(a)),
            Box::new(embed_naive(b)),
        ),
        Expr::Pack(e) => CoreExpr::Pack(Idx::zero(), Box::new(embed_naive(e))),
        Expr::Unpack(a, x, b) => CoreExpr::Unpack(
            Box::new(embed_naive(a)),
            x.clone(),
            Box::new(embed_naive(b)),
        ),
        Expr::CLet(a, x, b) => CoreExpr::CLet(
            Box::new(embed_naive(a)),
            x.clone(),
            Box::new(embed_naive(b)),
        ),
        Expr::CElim(e) => CoreExpr::CElim(Box::new(embed_naive(e))),
        Expr::Anno(e, _, _) => embed_naive(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_expr;

    #[test]
    fn erasure_inverts_the_naive_embedding() {
        for src in [
            "lam x. x",
            "fix f(x). case x of nil -> nil | h :: tl -> cons(h, f tl)",
            "let p = (1, 2) in fst p",
            "if true then false else true",
            "unpack (pack 3) as y in y",
        ] {
            let e = parse_expr(src).unwrap().erase_annotations();
            assert_eq!(embed_naive(&e).erase(), e, "round-trip failed for {src}");
        }
    }

    #[test]
    fn marker_counts_reflect_added_information() {
        let e = parse_expr("cons(1, cons(2, nil))").unwrap();
        let core = embed_naive(&e);
        assert_eq!(core.marker_count(), 2);
        let marked = CoreExpr::NoChange(Box::new(core));
        assert_eq!(marked.marker_count(), 3);
    }

    #[test]
    fn coercions_and_switches_erase_away() {
        let e = CoreExpr::Switch(Box::new(CoreExpr::Coerce(
            Box::new(CoreExpr::Bool(true)),
            rel_syntax::RelType::BoolR,
            rel_syntax::RelType::bool_u(),
        )));
        assert_eq!(e.erase(), Expr::Bool(true));
    }
}
