//! BiRelCost: bidirectional type checking for relational properties.
//!
//! This crate is the primary contribution of the reproduced paper
//! ("Bidirectional Type Checking for Relational Properties", PLDI 2019): an
//! algorithmic, bidirectional checker for the RelCost family of relational
//! type-and-effect systems — relSTLC ⊂ RelRef ⊂ RelRefU ⊂ RelCost — built on
//! the substrates provided by the sibling crates (`rel-index`, `rel-syntax`,
//! `rel-constraint`, `rel-unary`, `rel-eval`).
//!
//! # Quick start
//!
//! ```
//! use birelcost::Engine;
//! use rel_syntax::parse_program;
//!
//! let program = parse_program(
//!     "def double_neg : boolr -> boolr = lam b. if b then true else false;",
//! )?;
//! let report = Engine::new().check_program(&program);
//! assert!(report.all_ok());
//! # Ok::<(), rel_syntax::ParseError>(())
//! ```
//!
//! The crate is organized as follows:
//!
//! * [`relstlc`] — the warm-up system of §2 (self-contained),
//! * [`subtype`] — algorithmic relational subtyping (Fig. 3 + §4/§5 rules),
//! * [`bidir`] — the BiRelCost checking/inference judgments with the §6
//!   heuristics,
//! * [`heuristics`] — the heuristic toggles (used by the ablation study),
//! * [`corelang`] — the annotated core calculus and erasure,
//! * [`engine`] — the end-to-end pipeline (check → eliminate existentials →
//!   solve) with the Table-1 timing breakdown.

pub mod bidir;
pub mod corelang;
pub mod engine;
pub mod heuristics;
pub mod relstlc;
pub mod subtype;

pub use bidir::{RelChecker, RelInference, Session};
pub use engine::{
    DefIndex, DefObserver, DefReport, Engine, PhaseTimings, ProgramReport, StoredDef,
};
pub use heuristics::Heuristics;
pub use subtype::rel_subtype;
