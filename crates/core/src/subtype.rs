//! Algorithmic relational subtyping.
//!
//! Relational subtyping (Figure 3 of the paper, extended with the `U` and
//! cost-aware rules of §4–§5) is constraint-dependent and interacts with the
//! comonad `□` in ways that make transitivity non-admissible; that is exactly
//! why the paper invokes it only at three places (heuristic 3: the ↑↓ mode
//! switch, the `nochange` rule, and lazily at `□`-typed elimination points).
//! The algorithmic judgment implemented here returns the arithmetic side
//! conditions as a [`Constr`]; structurally impossible relations return an
//! error.  Where more than one declarative rule could apply (e.g. the `l2`
//! route through `α ≐ 0` versus direct element subtyping) the alternatives
//! are joined with a disjunction.

use rel_constraint::Constr;
use rel_index::Idx;
use rel_syntax::{pretty, RelType, UnaryType};
use rel_unary::subtype::unary_subtype;
use rel_unary::TypeError;

/// Computes the constraint under which `sub ⊑ sup` holds.
///
/// # Errors
///
/// Returns [`TypeError::NotASubtype`] when no declarative rule can relate the
/// two types regardless of the index constraints.
pub fn rel_subtype(sub: &RelType, sup: &RelType) -> Result<Constr, TypeError> {
    use RelType::*;
    match (sub, sup) {
        (UnitR, UnitR) | (BoolR, BoolR) | (IntR, IntR) => Ok(Constr::Top),
        (TVar(a), TVar(b)) if a == b => Ok(Constr::Top),

        // Constraint-type rules (order matters; see the module docs).
        (CAnd(c1, a1), _) => Ok(c1.clone().implies(rel_subtype(a1, sup)?)),
        (_, CImpl(c2, b2)) => Ok(c2.clone().implies(rel_subtype(sub, b2)?)),
        (_, CAnd(c2, b2)) => Ok(c2.clone().and(rel_subtype(sub, b2)?)),
        (CImpl(c1, a1), _) => Ok(c1.clone().and(rel_subtype(a1, sup)?)),

        // Quantifiers: α-rename and go under the binder.
        (Forall(i1, s1, a1), Forall(i2, s2, b2)) if s1 == s2 => {
            let b2 = b2.subst_idx(i2, &Idx::Var(i1.clone()));
            Ok(Constr::forall(i1.clone(), *s1, rel_subtype(a1, &b2)?))
        }
        (Exists(i1, s1, a1), Exists(i2, s2, b2)) if s1 == s2 => {
            let b2 = b2.subst_idx(i2, &Idx::Var(i1.clone()));
            Ok(Constr::forall(i1.clone(), *s1, rel_subtype(a1, &b2)?))
        }

        // □ on both sides: covariance first, falling back to keeping the
        // source boxed while the target unboxes one level (□τ ⊑ □□τ etc.).
        (Boxed(a), Boxed(b)) => {
            let mut paths = Vec::new();
            if let Ok(c) = rel_subtype(a, b) {
                paths.push(c);
            }
            if let Ok(c) = rel_subtype(sub, b) {
                paths.push(c);
            }
            or_paths(paths, sub, sup)
        }

        // □ on the left only: rule (T) □τ ⊑ τ, plus the distribution rules
        // (□(τ₁ →diff(t) τ₂) ⊑ □τ₁ →diff(0) □τ₂ and friends).
        (Boxed(a), _) => {
            let mut paths = Vec::new();
            if let Ok(c) = rel_subtype(a, sup) {
                paths.push(c);
            }
            if let Some(pushed) = push_box(sub) {
                if let Ok(c) = rel_subtype(&pushed, sup) {
                    paths.push(c);
                }
            }
            or_paths(paths, sub, sup)
        }

        // □ on the right only: the diagonal base types are their own box, a
        // pair of boxes is a boxed pair, and lists box via the `l2`/`l` route
        // (requires zero differing positions).
        (_, Boxed(b)) => {
            let mut paths = Vec::new();
            match sub {
                UnitR | BoolR | IntR => {
                    if let Ok(c) = rel_subtype(sub, b) {
                        paths.push(c);
                    }
                }
                List { len, diff, elem } => {
                    if let RelType::List {
                        len: len2,
                        diff: diff2,
                        elem: elem2,
                    } = b.strip_boxes()
                    {
                        let inner = rel_subtype(elem, elem2)
                            .or_else(|_| rel_subtype(elem, &RelType::boxed((**elem2).clone())));
                        if let Ok(c) = inner {
                            paths.push(
                                c.and(Constr::eq(len.clone(), len2.clone()))
                                    .and(Constr::eq(diff.clone(), Idx::zero()))
                                    .and(Constr::leq(Idx::zero(), diff2.clone())),
                            );
                        }
                    }
                }
                Prod(x, y) => {
                    if let RelType::Prod(bx, by) = b.as_ref() {
                        let cx = rel_subtype(x, &RelType::boxed((**bx).clone()));
                        let cy = rel_subtype(y, &RelType::boxed((**by).clone()));
                        if let (Ok(cx), Ok(cy)) = (cx, cy) {
                            paths.push(cx.and(cy));
                        }
                    }
                }
                _ => {}
            }
            or_paths(paths, sub, sup)
        }

        (Arrow(a1, t1, b1), Arrow(a2, t2, b2)) => {
            let dom = rel_subtype(a2, a1)?;
            let cod = rel_subtype(b1, b2)?;
            Ok(dom.and(cod).and(Constr::leq(t1.clone(), t2.clone())))
        }

        (
            List {
                len: n1,
                diff: a1,
                elem: e1,
            },
            List {
                len: n2,
                diff: a2,
                elem: e2,
            },
        ) => {
            // Rule l1 (covariant weakening of the difference bound) composed
            // with element subtyping; when the target's elements are boxed and
            // the source's are not, the l2 route (α ≐ 0) is also available.
            let base = Constr::eq(n1.clone(), n2.clone()).and(Constr::leq(a1.clone(), a2.clone()));
            let mut paths = Vec::new();
            if let Ok(c) = rel_subtype(e1, e2) {
                paths.push(base.clone().and(c));
            }
            if let RelType::Boxed(inner2) = e2.as_ref() {
                if let Ok(c) = rel_subtype(e1, inner2) {
                    paths.push(base.clone().and(c).and(Constr::eq(a1.clone(), Idx::zero())));
                }
            }
            or_paths(paths, sub, sup)
        }

        (Prod(a1, b1), Prod(a2, b2)) => Ok(rel_subtype(a1, a2)?.and(rel_subtype(b1, b2)?)),

        (U(a1, a2), U(b1, b2)) => Ok(unary_subtype(a1, b1)?.and(unary_subtype(a2, b2)?)),

        // U(list, list) ⊑ list[n]ⁿ U(·,·): unary length information becomes a
        // (trivially true) relational refinement.
        (U(ua, ub), List { len, diff, elem }) => {
            let (na, ea) = match ua.as_ref() {
                UnaryType::List(n, e) => (n.clone(), (**e).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            let (nb, eb) = match ub.as_ref() {
                UnaryType::List(n, e) => (n.clone(), (**e).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            let inner = rel_subtype(&RelType::u(ea, eb), elem)?;
            Ok(inner
                .and(Constr::eq(na.clone(), nb))
                .and(Constr::eq(len.clone(), na.clone()))
                .and(Constr::leq(na, diff.clone())))
        }

        // U of unary pairs distributes over relational products.
        (U(ua, ub), Prod(p1, p2)) => {
            let (a1, a2) = match ua.as_ref() {
                UnaryType::Prod(x, y) => ((**x).clone(), (**y).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            let (b1, b2) = match ub.as_ref() {
                UnaryType::Prod(x, y) => ((**x).clone(), (**y).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            Ok(rel_subtype(&RelType::u(a1, b1), p1)?.and(rel_subtype(&RelType::u(a2, b2), p2)?))
        }

        // U of unary arrows becomes a relational arrow whose relative cost is
        // the worst-case gap between the two exec intervals (this is the rule
        // that lets `merge`'s unary cost bounds be used relationally in the
        // msort walk-through of §6).
        (U(ua, ub), Arrow(dom, t, cod)) => {
            let (a1, c1, b1) = match ua.as_ref() {
                UnaryType::Arrow(a, c, b) => ((**a).clone(), c.clone(), (**b).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            let (a2, c2, b2) = match ub.as_ref() {
                UnaryType::Arrow(a, c, b) => ((**a).clone(), c.clone(), (**b).clone()),
                _ => return not_a_subtype(sub, sup),
            };
            let dom_c = rel_subtype(dom, &RelType::u(a1, a2))?;
            let cod_c = rel_subtype(&RelType::u(b1, b2), cod)?;
            Ok(dom_c
                .and(cod_c)
                .and(Constr::leq(c1.hi.clone() - c2.lo.clone(), t.clone())))
        }

        // The general projection rule: any relational type is a subtype of
        // the U-pairing of its unary projections (relational information is
        // simply forgotten).
        (_, U(b1, b2)) => {
            let left = unary_subtype(&sub.project(1), b1)?;
            let right = unary_subtype(&sub.project(2), b2)?;
            Ok(left.and(right))
        }

        _ => not_a_subtype(sub, sup),
    }
}

/// Pushes a `□` one level into the structure of the type when a distribution
/// rule exists; returns `None` for types on which `□` does not distribute.
pub fn push_box(ty: &RelType) -> Option<RelType> {
    let inner = match ty {
        RelType::Boxed(inner) => inner,
        _ => return None,
    };
    match inner.as_ref() {
        RelType::Arrow(a, _, b) => Some(RelType::arrow(
            RelType::boxed((**a).clone()),
            Idx::zero(),
            RelType::boxed((**b).clone()),
        )),
        RelType::Forall(i, s, t) => Some(RelType::forall(
            i.clone(),
            *s,
            RelType::boxed((**t).clone()),
        )),
        RelType::Exists(i, s, t) => Some(RelType::exists(
            i.clone(),
            *s,
            RelType::boxed((**t).clone()),
        )),
        RelType::CAnd(c, t) => Some(RelType::cand(c.clone(), RelType::boxed((**t).clone()))),
        RelType::CImpl(c, t) => Some(RelType::cimpl(c.clone(), RelType::boxed((**t).clone()))),
        RelType::Prod(a, b) => Some(RelType::prod(
            RelType::boxed((**a).clone()),
            RelType::boxed((**b).clone()),
        )),
        RelType::List { len, elem, .. } => Some(RelType::list(
            len.clone(),
            Idx::zero(),
            RelType::boxed((**elem).clone()),
        )),
        RelType::UnitR | RelType::BoolR | RelType::IntR => Some(inner.as_ref().clone()),
        RelType::Boxed(_) => Some(inner.as_ref().clone()),
        RelType::TVar(_) | RelType::U(_, _) => None,
    }
}

fn or_paths(paths: Vec<Constr>, sub: &RelType, sup: &RelType) -> Result<Constr, TypeError> {
    if paths.is_empty() {
        not_a_subtype(sub, sup)
    } else {
        Ok(Constr::disj(paths))
    }
}

fn not_a_subtype(sub: &RelType, sup: &RelType) -> Result<Constr, TypeError> {
    Err(TypeError::NotASubtype {
        sub: pretty::rel_type(sub),
        sup: pretty::rel_type(sup),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_constraint::Solver;
    use rel_index::{IdxVar, Sort};
    use rel_syntax::CostBounds;

    fn holds(sub: &RelType, sup: &RelType, universals: &[(&str, Sort)], hyp: Constr) -> bool {
        match rel_subtype(sub, sup) {
            Ok(c) => {
                let mut s = Solver::new();
                let u: Vec<_> = universals
                    .iter()
                    .map(|(n, s)| (IdxVar::new(*n), *s))
                    .collect();
                s.entails(&u, &hyp, &c).is_valid()
            }
            Err(_) => false,
        }
    }

    fn int_list(n: &str, a: &str) -> RelType {
        RelType::list(Idx::var(n), Idx::var(a), RelType::IntR)
    }

    #[test]
    fn reflexivity_on_base_and_structured_types() {
        for t in [
            RelType::BoolR,
            RelType::IntR,
            RelType::bool_u(),
            int_list("n", "a"),
            RelType::boxed(RelType::BoolR),
            RelType::arrow(RelType::BoolR, Idx::var("t"), RelType::IntR),
        ] {
            assert!(
                holds(
                    &t,
                    &t,
                    &[("n", Sort::Nat), ("a", Sort::Nat), ("t", Sort::Real)],
                    Constr::Top
                ),
                "expected {t:?} ⊑ {t:?}"
            );
        }
    }

    #[test]
    fn boolr_is_a_subtype_of_boolu_but_not_conversely() {
        assert!(holds(&RelType::BoolR, &RelType::bool_u(), &[], Constr::Top));
        assert!(!holds(
            &RelType::bool_u(),
            &RelType::BoolR,
            &[],
            Constr::Top
        ));
    }

    #[test]
    fn list_difference_bounds_weaken_covariantly() {
        // list[n]^a τ ⊑ list[n]^n τ needs a ≤ n.
        let sub = int_list("n", "a");
        let sup = int_list("n", "n");
        assert!(holds(
            &sub,
            &sup,
            &[("n", Sort::Nat), ("a", Sort::Nat)],
            Constr::leq(Idx::var("a"), Idx::var("n"))
        ));
        assert!(!holds(
            &sub,
            &sup,
            &[("n", Sort::Nat), ("a", Sort::Nat)],
            Constr::Top
        ));
    }

    #[test]
    fn boxed_types_strip_and_distribute() {
        // □τ ⊑ τ  (rule T)
        assert!(holds(
            &RelType::boxed(RelType::BoolR),
            &RelType::BoolR,
            &[],
            Constr::Top
        ));
        // □(τ₁ →diff(t) τ₂) ⊑ □τ₁ →diff(0) □τ₂
        let sub = RelType::boxed(RelType::arrow(RelType::IntR, Idx::var("t"), RelType::IntR));
        let sup = RelType::arrow(
            RelType::boxed(RelType::IntR),
            Idx::zero(),
            RelType::boxed(RelType::IntR),
        );
        assert!(holds(&sub, &sup, &[("t", Sort::Real)], Constr::Top));
        // □τ ⊑ □□τ
        let b = RelType::boxed(RelType::IntR);
        assert!(holds(&b, &RelType::boxed(b.clone()), &[], Constr::Top));
    }

    #[test]
    fn diagonal_base_types_are_their_own_box() {
        assert!(holds(
            &RelType::IntR,
            &RelType::boxed(RelType::IntR),
            &[],
            Constr::Top
        ));
        assert!(holds(
            &RelType::UnitR,
            &RelType::boxed(RelType::UnitR),
            &[],
            Constr::Top
        ));
        // But an unrelated pair is not.
        assert!(!holds(
            &RelType::bool_u(),
            &RelType::boxed(RelType::bool_u()),
            &[],
            Constr::Top
        ));
    }

    #[test]
    fn lists_box_exactly_when_they_have_no_differences() {
        // list[n]^a (U int) ⊑ □(list[n]^a (U int)) holds under a = 0 (rules l2 + l).
        let sub = RelType::list(
            Idx::var("n"),
            Idx::var("a"),
            RelType::u_same(UnaryType::Int),
        );
        let sup = RelType::boxed(sub.clone());
        let u = [("n", Sort::Nat), ("a", Sort::Nat)];
        assert!(holds(
            &sub,
            &sup,
            &u,
            Constr::eq(Idx::var("a"), Idx::zero())
        ));
        assert!(!holds(&sub, &sup, &u, Constr::Top));
    }

    #[test]
    fn projection_rule_forgets_relational_structure() {
        // list[n]^a intr ⊑ U(list[n] int, list[n] int)
        let sub = int_list("n", "a");
        let sup = RelType::u(
            UnaryType::list(Idx::var("n"), UnaryType::Int),
            UnaryType::list(Idx::var("n"), UnaryType::Int),
        );
        assert!(holds(
            &sub,
            &sup,
            &[("n", Sort::Nat), ("a", Sort::Nat)],
            Constr::Top
        ));
    }

    #[test]
    fn unary_list_pairs_become_relational_lists() {
        // U(list[n] int, list[n] int) ⊑ list[n]^n (U int)
        let sub = RelType::u(
            UnaryType::list(Idx::var("n"), UnaryType::Int),
            UnaryType::list(Idx::var("n"), UnaryType::Int),
        );
        let sup = RelType::list(
            Idx::var("n"),
            Idx::var("n"),
            RelType::u_same(UnaryType::Int),
        );
        assert!(holds(&sub, &sup, &[("n", Sort::Nat)], Constr::Top));
    }

    #[test]
    fn unary_arrow_pairs_become_relational_arrows() {
        // U(int →[2,5] int, int →[1,3] int) ⊑ U(int,int) →diff(4) U(int,int)
        let sub = RelType::u(
            UnaryType::arrow(
                UnaryType::Int,
                CostBounds::new(Idx::nat(2), Idx::nat(5)),
                UnaryType::Int,
            ),
            UnaryType::arrow(
                UnaryType::Int,
                CostBounds::new(Idx::nat(1), Idx::nat(3)),
                UnaryType::Int,
            ),
        );
        let sup = RelType::arrow(
            RelType::u_same(UnaryType::Int),
            Idx::nat(4),
            RelType::u_same(UnaryType::Int),
        );
        assert!(holds(&sub, &sup, &[], Constr::Top));
        // A tighter relative cost (3) is not justified: 5 − 1 = 4 > 3.
        let too_tight = RelType::arrow(
            RelType::u_same(UnaryType::Int),
            Idx::nat(3),
            RelType::u_same(UnaryType::Int),
        );
        assert!(!holds(&sub, &too_tight, &[], Constr::Top));
    }

    #[test]
    fn arrows_are_contravariant_and_cost_covariant() {
        let sub = RelType::arrow(int_list("n", "n"), Idx::nat(3), RelType::IntR);
        let sup = RelType::arrow(int_list("n", "a"), Idx::nat(5), RelType::IntR);
        // Needs a ≤ n for the (contravariant) domain and 3 ≤ 5 for the cost.
        assert!(holds(
            &sub,
            &sup,
            &[("n", Sort::Nat), ("a", Sort::Nat)],
            Constr::leq(Idx::var("a"), Idx::var("n"))
        ));
    }

    #[test]
    fn quantified_types_are_compared_under_their_binder() {
        let sub = RelType::forall("i", Sort::Nat, int_list("i", "i"));
        let sup = RelType::forall("j", Sort::Nat, int_list("j", "j"));
        assert!(holds(&sub, &sup, &[], Constr::Top));
    }

    #[test]
    fn constraint_types_guard_their_payload() {
        // {b ≤ a} & τ ⊑ τ  always; τ ⊑ {b ≤ a} & τ only if b ≤ a is provable.
        let guarded = RelType::cand(Constr::leq(Idx::var("b"), Idx::var("a")), RelType::IntR);
        let u = [("a", Sort::Nat), ("b", Sort::Nat)];
        assert!(holds(&guarded, &RelType::IntR, &u, Constr::Top));
        assert!(!holds(&RelType::IntR, &guarded, &u, Constr::Top));
        assert!(holds(
            &RelType::IntR,
            &guarded,
            &u,
            Constr::leq(Idx::var("b"), Idx::var("a"))
        ));
    }

    #[test]
    fn structurally_unrelated_types_are_rejected() {
        assert!(rel_subtype(&RelType::BoolR, &RelType::IntR).is_err());
        assert!(rel_subtype(
            &RelType::prod(RelType::BoolR, RelType::BoolR),
            &RelType::arrow0(RelType::BoolR, RelType::BoolR)
        )
        .is_err());
    }
}
