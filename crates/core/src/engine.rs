//! The checking pipeline: bidirectional constraint generation, existential
//! elimination and constraint solving, with the per-phase timing breakdown
//! reported in Table 1 of the paper.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rel_constraint::{Constr, SolveConfig, Solver, ValidityCache};
use rel_index::Idx;
use rel_syntax::{Def, Program, SystemLevel};
use rel_unary::RelCtx;

use crate::bidir::{RelChecker, Session};
use crate::heuristics::Heuristics;

/// Wall-clock timings of the three pipeline phases (the columns of Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Bidirectional type checking (constraint generation, including the
    /// heuristic decisions).
    pub typecheck: Duration,
    /// Existential elimination (candidate-substitution search).
    pub existential_elim: Duration,
    /// Constraint solving proper.
    pub solving: Duration,
}

impl PhaseTimings {
    /// Total time across the three phases.
    pub fn total(&self) -> Duration {
        self.typecheck + self.existential_elim + self.solving
    }
}

/// The outcome of checking one definition.
#[derive(Debug, Clone)]
pub struct DefReport {
    /// The definition's name.
    pub name: String,
    /// Whether the definition checked (structurally and constraint-wise).
    pub ok: bool,
    /// The error message when structural checking failed.
    pub error: Option<String>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
    /// Number of atomic comparisons in the generated constraint.
    pub constraint_atoms: usize,
    /// Number of existential variables generated.
    pub existential_vars: u64,
    /// Number of explicit annotations in the definition (annotation effort).
    pub annotations: usize,
    /// Entailment queries answered from the shared validity cache (0 when no
    /// cache is attached).
    pub cache_hits: usize,
    /// Entailment queries that consulted the validity cache and missed.
    pub cache_misses: usize,
    /// Numeric queries lowered to bytecode by the solver's compiled numeric
    /// layer (program-cache misses).
    pub programs_compiled: usize,
    /// Numeric queries whose compiled program was reused from the solver's
    /// program cache.
    pub program_cache_hits: usize,
    /// Grid + random points evaluated by the numeric layer.
    pub points_evaluated: usize,
}

/// The outcome of checking a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramReport {
    /// Per-definition reports, in program order.
    pub defs: Vec<DefReport>,
}

impl ProgramReport {
    /// `true` when every definition checked.
    pub fn all_ok(&self) -> bool {
        self.defs.iter().all(|d| d.ok)
    }

    /// Looks up the report of a definition by name.
    pub fn def(&self, name: &str) -> Option<&DefReport> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Total time across all definitions and phases.
    pub fn total_time(&self) -> Duration {
        self.defs.iter().map(|d| d.timings.total()).sum()
    }

    /// Total validity-cache hits across all definitions.
    pub fn cache_hits(&self) -> usize {
        self.defs.iter().map(|d| d.cache_hits).sum()
    }

    /// Total validity-cache misses across all definitions.
    pub fn cache_misses(&self) -> usize {
        self.defs.iter().map(|d| d.cache_misses).sum()
    }

    /// Total numeric queries compiled to bytecode across all definitions.
    pub fn programs_compiled(&self) -> usize {
        self.defs.iter().map(|d| d.programs_compiled).sum()
    }

    /// Total compiled-program cache hits across all definitions.
    pub fn program_cache_hits(&self) -> usize {
        self.defs.iter().map(|d| d.program_cache_hits).sum()
    }

    /// Total numeric grid/random points evaluated across all definitions.
    pub fn points_evaluated(&self) -> usize {
        self.defs.iter().map(|d| d.points_evaluated).sum()
    }
}

/// The BiRelCost engine: checks programs definition by definition,
/// accumulating earlier definitions in the typing context (this is how the
/// `msort` example uses `bsplit` and `merge`).
///
/// The engine holds no mutable state — checking goes through `&self` — so one
/// instance can be shared across worker threads behind an [`Arc`].  When a
/// [`ValidityCache`] is attached it is consulted by every solver the engine
/// spawns, letting concurrent batch checks share constraint verdicts.
#[derive(Debug, Clone)]
pub struct Engine {
    checker: RelChecker,
    solve_config: SolveConfig,
    level: SystemLevel,
    cache: Option<Arc<dyn ValidityCache>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with all heuristics, the standard cost model and the default
    /// solver configuration, checking at the RelCost level.
    pub fn new() -> Engine {
        Engine {
            checker: RelChecker::new(),
            solve_config: SolveConfig::default(),
            level: SystemLevel::RelCost,
            cache: None,
        }
    }

    /// Attaches a shared constraint-validity cache.  Every solver the engine
    /// creates (both the checking-phase solver and the final entailment
    /// solver) consults it before solving and publishes its verdicts to it.
    pub fn with_cache(mut self, cache: Arc<dyn ValidityCache>) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// The attached validity cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn ValidityCache>> {
        self.cache.as_ref()
    }

    /// Overrides the heuristics configuration (used by the ablation bench).
    pub fn with_heuristics(mut self, heuristics: Heuristics) -> Engine {
        self.checker = RelChecker::with_heuristics(heuristics);
        self
    }

    /// Overrides the solver configuration.
    pub fn with_solve_config(mut self, config: SolveConfig) -> Engine {
        self.solve_config = config;
        self
    }

    /// Selects which system of the paper to check in.  Below
    /// [`SystemLevel::RelCost`] all relative-cost bounds are replaced by `∞`
    /// (the paper's embedding of RelRef/RelRefU into RelCost).
    pub fn at_level(mut self, level: SystemLevel) -> Engine {
        self.level = level;
        self
    }

    /// The active system level.
    pub fn level(&self) -> SystemLevel {
        self.level
    }

    /// The checker in use.
    pub fn checker(&self) -> &RelChecker {
        &self.checker
    }

    /// Checks a whole program.
    pub fn check_program(&self, program: &Program) -> ProgramReport {
        let mut ctx = RelCtx::new();
        let mut report = ProgramReport::default();
        for def in program.iter() {
            let def_report = self.check_def_in(&ctx, def);
            ctx = ctx.bind_var(def.name.clone(), def.ty.clone());
            report.defs.push(def_report);
        }
        report
    }

    /// Checks a single definition in an empty context.
    pub fn check_def(&self, def: &Def) -> DefReport {
        self.check_def_in(&RelCtx::new(), def)
    }

    /// Checks a single definition in the given context.
    pub fn check_def_in(&self, ctx: &RelCtx, def: &Def) -> DefReport {
        let mut ctx = ctx.clone();
        for axiom in &def.axioms {
            ctx = ctx.assume(axiom.clone());
        }
        let cost = if self.level.tracks_cost() {
            def.cost.clone()
        } else {
            Idx::infty()
        };

        let mut sess = Session {
            fresh: rel_unary::FreshVars::new(),
            solver: self.new_solver(),
        };
        let start = Instant::now();
        let generated = self.checker.check(
            &mut sess,
            &ctx,
            &def.left,
            def.right_or_left(),
            &def.ty,
            &cost,
        );
        let typecheck = start.elapsed();

        match generated {
            Err(err) => DefReport {
                name: def.name.name().to_string(),
                ok: false,
                error: Some(err.to_string()),
                timings: PhaseTimings {
                    typecheck,
                    ..PhaseTimings::default()
                },
                constraint_atoms: 0,
                existential_vars: sess.fresh.count(),
                annotations: def.annotation_count(),
                cache_hits: sess.solver.stats().cache_hits,
                cache_misses: sess.solver.stats().cache_misses,
                programs_compiled: sess.solver.stats().programs_compiled,
                program_cache_hits: sess.solver.stats().program_cache_hits,
                points_evaluated: sess.solver.stats().points_evaluated,
            },
            Ok(constraint) => {
                let atoms = constraint.atom_count();
                let mut solver = self.new_solver();
                let verdict = solver.entails(&ctx.universals(), &ctx.assumptions, &constraint);
                let stats = solver.stats();
                DefReport {
                    name: def.name.name().to_string(),
                    ok: verdict.is_valid(),
                    error: if verdict.is_valid() {
                        None
                    } else {
                        Some(self.describe_failure(&constraint))
                    },
                    timings: PhaseTimings {
                        typecheck,
                        existential_elim: stats.exelim_time,
                        solving: stats.solving_time,
                    },
                    constraint_atoms: atoms,
                    existential_vars: sess.fresh.count(),
                    annotations: def.annotation_count(),
                    cache_hits: stats.cache_hits + sess.solver.stats().cache_hits,
                    cache_misses: stats.cache_misses + sess.solver.stats().cache_misses,
                    programs_compiled: stats.programs_compiled
                        + sess.solver.stats().programs_compiled,
                    program_cache_hits: stats.program_cache_hits
                        + sess.solver.stats().program_cache_hits,
                    points_evaluated: stats.points_evaluated
                        + sess.solver.stats().points_evaluated,
                }
            }
        }
    }

    /// A solver configured like this engine (and sharing its cache, if any).
    fn new_solver(&self) -> Solver {
        let solver = Solver::with_config(self.solve_config.clone());
        match &self.cache {
            Some(cache) => solver.with_cache(Arc::clone(cache)),
            None => solver,
        }
    }

    fn describe_failure(&self, constraint: &Constr) -> String {
        format!(
            "the generated constraints ({} atomic comparisons) are not valid",
            constraint.atom_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_program;

    fn check(src: &str) -> ProgramReport {
        Engine::new().check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_programs_and_reports_timings() {
        let report = check("def id : boolr -> boolr = lam x. x;");
        assert!(report.all_ok());
        let d = report.def("id").unwrap();
        assert!(d.error.is_none());
        assert_eq!(d.annotations, 1);
        assert!(d.timings.total() > Duration::ZERO);
    }

    #[test]
    fn rejects_ill_typed_programs() {
        let report = check("def bad : boolr = 3;");
        assert!(!report.all_ok());
        assert!(report.def("bad").unwrap().error.is_some());
    }

    #[test]
    fn rejects_unsound_cost_bounds() {
        // Claiming a negative-relative-cost identity is fine (0 ≤ 0), but a
        // claimed bound that the body exceeds must be rejected: here the left
        // program does strictly more work than allowed by the bound 0 against
        // a cheaper right program.
        let report = check("def two : UU int = 1 + 1 + 1 ~ 3;");
        assert!(!report.all_ok());
        let report = check("def two : UU int @ 2 = 1 + 1 + 1 ~ 3;");
        assert!(report.all_ok());
    }

    #[test]
    fn earlier_definitions_are_visible_to_later_ones() {
        let src = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let report = check(src);
        assert!(report.all_ok(), "{report:?}");
    }

    #[test]
    fn cached_engine_matches_uncached_verdicts_and_hits_on_rerun() {
        use rel_constraint::{ShardedValidityCache, ValidityCache};
        let src = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let program = parse_program(src).unwrap();
        let plain = Engine::new().check_program(&program);

        let cache = Arc::new(ShardedValidityCache::new());
        let engine = Engine::new().with_cache(cache.clone());
        let cold = engine.check_program(&program);
        let warm = engine.check_program(&program);

        for (p, c) in plain.defs.iter().zip(&cold.defs) {
            assert_eq!(p.ok, c.ok, "cache changed the verdict of {}", p.name);
        }
        assert_eq!(cold.cache_hits(), 0);
        assert!(cold.cache_misses() > 0);
        assert!(warm.cache_hits() > 0, "warm rerun must hit the cache");
        assert!(cache.stats().entries > 0);
    }

    #[test]
    fn relref_level_ignores_costs() {
        let src = "def f : intr ->[0] intr = lam x. x + 1;";
        // At the RelCost level the bound 0 on the arrow is fine (the relative
        // cost of the two identical bodies is 0)…
        assert!(check(src).all_ok());
        // …and at the RelRef level costs are ignored entirely.
        let report = Engine::new()
            .at_level(SystemLevel::RelRef)
            .check_program(&parse_program(src).unwrap());
        assert!(report.all_ok());
    }
}
