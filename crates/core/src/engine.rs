//! The checking pipeline: bidirectional constraint generation, existential
//! elimination and constraint solving, with the per-phase timing breakdown
//! reported in Table 1 of the paper.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rel_constraint::{
    CexSource, Constr, Fnv1a, Provenance, RefutationInfo, SharedProgramCache, SolveConfig,
    SolveStats, Solver, Validity, ValidityCache,
};
use rel_index::Idx;
use rel_syntax::{Def, Program, SystemLevel};
use rel_unary::RelCtx;

use crate::bidir::{RelChecker, Session};
use crate::heuristics::Heuristics;

/// Wall-clock timings of the three pipeline phases (the columns of Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Bidirectional type checking (constraint generation, including the
    /// heuristic decisions).
    pub typecheck: Duration,
    /// Existential elimination (candidate-substitution search).
    pub existential_elim: Duration,
    /// Constraint solving proper.
    pub solving: Duration,
}

impl PhaseTimings {
    /// Total time across the three phases.
    pub fn total(&self) -> Duration {
        self.typecheck + self.existential_elim + self.solving
    }
}

/// The outcome of checking one definition.
#[derive(Debug, Clone)]
pub struct DefReport {
    /// The definition's name.
    pub name: String,
    /// Whether the definition checked (structurally and constraint-wise).
    pub ok: bool,
    /// `true` when the definition's obligations were *proved* (symbolic /
    /// Fourier–Motzkin — sound over the unbounded index domain); `false`
    /// when the verdict leaned on the bounded numeric grid (or the
    /// definition failed).  See [`rel_constraint::Provenance`].
    pub proved: bool,
    /// The error message when structural checking failed.
    pub error: Option<String>,
    /// Per-phase timings.
    pub timings: PhaseTimings,
    /// Number of atomic comparisons in the generated constraint.
    pub constraint_atoms: usize,
    /// Number of existential variables generated.
    pub existential_vars: u64,
    /// Number of explicit annotations in the definition (annotation effort).
    pub annotations: usize,
    /// Every solver counter and phase timer for this definition, merged
    /// across the typechecking and entailment solvers through
    /// [`SolveStats::merge`] — one struct instead of a hand-stitched field
    /// list, so a counter added to the solver automatically reaches every
    /// report consumer.
    pub stats: SolveStats,
    /// Stable hash of the checking inputs for this definition (elaborated
    /// definition + interfaces of the definitions before it + engine
    /// configuration); `0` when no [`DefIndex`] was in play.
    pub input_hash: u64,
    /// `true` when the definition was not re-checked because a [`DefIndex`]
    /// already recorded a verdict for the same `input_hash`.  All timing and
    /// solver counters are zero for such a report.
    pub skipped_unchanged: bool,
}

/// The outcome of checking a whole program.
#[derive(Debug, Clone, Default)]
pub struct ProgramReport {
    /// Per-definition reports, in program order.
    pub defs: Vec<DefReport>,
}

impl ProgramReport {
    /// `true` when every definition checked.
    pub fn all_ok(&self) -> bool {
        self.defs.iter().all(|d| d.ok)
    }

    /// Looks up the report of a definition by name.
    pub fn def(&self, name: &str) -> Option<&DefReport> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Total time across all definitions and phases.
    pub fn total_time(&self) -> Duration {
        self.defs.iter().map(|d| d.timings.total()).sum()
    }

    /// All solver counters and phase timers, merged across every
    /// definition through [`SolveStats::merge`].
    pub fn solve_stats(&self) -> SolveStats {
        let mut total = SolveStats::default();
        for d in &self.defs {
            total.merge(&d.stats);
        }
        total
    }

    /// Total validity-cache hits across all definitions.
    pub fn cache_hits(&self) -> usize {
        self.defs.iter().map(|d| d.stats.cache_hits).sum()
    }

    /// Total validity-cache misses across all definitions.
    pub fn cache_misses(&self) -> usize {
        self.defs.iter().map(|d| d.stats.cache_misses).sum()
    }

    /// Total numeric queries compiled to bytecode across all definitions.
    pub fn programs_compiled(&self) -> usize {
        self.defs.iter().map(|d| d.stats.programs_compiled).sum()
    }

    /// Total compiled-program cache hits across all definitions.
    pub fn program_cache_hits(&self) -> usize {
        self.defs.iter().map(|d| d.stats.program_cache_hits).sum()
    }

    /// Total numeric grid/random points evaluated across all definitions.
    pub fn points_evaluated(&self) -> usize {
        self.defs.iter().map(|d| d.stats.points_evaluated).sum()
    }

    /// Number of definitions skipped because their input hash was unchanged.
    pub fn skipped_unchanged(&self) -> usize {
        self.defs.iter().filter(|d| d.skipped_unchanged).count()
    }

    /// Total obligations discharged by the Fourier–Motzkin layer.
    pub fn fm_proved(&self) -> usize {
        self.defs.iter().map(|d| d.stats.fm_proved).sum()
    }

    /// Total wall-clock time inside the Fourier–Motzkin layer.
    pub fn fm_time(&self) -> Duration {
        self.defs.iter().map(|d| d.stats.fm_time).sum()
    }

    /// Total wall-clock time inside the numeric layer.
    pub fn numeric_time(&self) -> Duration {
        self.defs.iter().map(|d| d.stats.numeric_time).sum()
    }

    /// Total FM subproblem-memo hits across all definitions.
    pub fn fm_memo_hits(&self) -> usize {
        self.defs.iter().map(|d| d.stats.fm_memo_hits).sum()
    }

    /// Total FM subproblem-memo misses across all definitions.
    pub fn fm_memo_misses(&self) -> usize {
        self.defs.iter().map(|d| d.stats.fm_memo_misses).sum()
    }

    /// Total existential candidates pruned by memoized rejection.
    pub fn exelim_candidates_pruned(&self) -> usize {
        self.defs
            .iter()
            .map(|d| d.stats.exelim_candidates_pruned)
            .sum()
    }

    /// Total obligations accepted only by a whole-grid sweep.
    pub fn grid_accepted(&self) -> usize {
        self.defs.iter().map(|d| d.stats.grid_accepted).sum()
    }

    /// Definitions whose verdict was proved (vs merely grid-checked).
    pub fn proved_defs(&self) -> usize {
        self.defs.iter().filter(|d| d.ok && d.proved).count()
    }
}

/// The verdict a [`DefIndex`] remembers for one definition input hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDef {
    /// The definition's name when the verdict was recorded (diagnostics
    /// only; the hash is the key).
    pub name: String,
    /// Whether the definition checked.
    pub ok: bool,
    /// Whether the recorded verdict was proved (vs grid-checked); replayed
    /// into [`DefReport::proved`] so provenance survives incremental skips
    /// and snapshots.
    pub proved: bool,
    /// The recorded error message when it did not.
    pub error: Option<String>,
}

/// Per-definition verdict memory for incremental re-checking.
///
/// The key is [`DefReport::input_hash`] paired with an independently seeded
/// verify hash — together a 128-bit digest of everything a definition's
/// verdict depends on: the elaborated definition itself (both bodies, type,
/// cost bound, axioms), the *interfaces* (name + type) of the definitions
/// before it in its program, and the engine fingerprint
/// ([`Engine::fingerprint`]).  A lookup replays a verdict only when *both*
/// hashes match (see `HashChain` for the collision discussion).  Re-checking
/// a program through [`Engine::check_program_with`] skips any definition
/// whose digest is already recorded and replays the stored verdict,
/// reporting it as `skipped_unchanged` — zero constraint generation, zero
/// solver work.
///
/// Thread-safe: one index is shared across the workers of a batch run, and
/// `rel-persist` snapshots carry it across processes.  Bounded like the
/// other memo layers: when the entry cap is reached the index is
/// wholesale-cleared before insert (epoch eviction), so a long-running
/// daemon fed a stream of distinct programs cannot grow it — or the
/// snapshots that serialize it — without bound.
pub struct DefIndex {
    entries: Mutex<HashMap<u64, (u64, StoredDef)>>,
    max_entries: usize,
    /// Monotone count of mutations (inserts and clears).  Dirty-state
    /// stamps (`Service::warm_stamp`) use this instead of `len()`: a clear
    /// followed by re-inserts can return the *length* to an old value, and
    /// a stamp built on lengths would alias the two states and skip a
    /// needed flush.
    mutations: std::sync::atomic::AtomicU64,
    /// Insert notification hook (WAL durability): called on every insert,
    /// outside the entries lock.
    observer: std::sync::RwLock<Option<DefObserver>>,
}

/// A callback notified of every def-index insert `(input_hash, verify_hash,
/// stored verdict)` — the persistence layer's write-ahead hook.
pub type DefObserver = Arc<dyn Fn(u64, u64, &StoredDef) + Send + Sync>;

impl std::fmt::Debug for DefIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DefIndex")
            .field("entries", &self.len())
            .field("max_entries", &self.max_entries)
            .field("mutations", &self.mutation_count())
            .finish()
    }
}

impl Default for DefIndex {
    fn default() -> Self {
        DefIndex::new()
    }
}

impl DefIndex {
    /// Default entry cap: 65 536 definitions, far above any one program and
    /// small next to the validity cache it accompanies.
    const DEFAULT_MAX_ENTRIES: usize = 65_536;

    /// An empty index with the default capacity.
    pub fn new() -> DefIndex {
        DefIndex::with_capacity(DefIndex::DEFAULT_MAX_ENTRIES)
    }

    /// An empty index with an explicit entry cap (rounded up to at least 1).
    pub fn with_capacity(max_entries: usize) -> DefIndex {
        DefIndex {
            entries: Mutex::new(HashMap::new()),
            max_entries: max_entries.max(1),
            mutations: std::sync::atomic::AtomicU64::new(0),
            observer: std::sync::RwLock::new(None),
        }
    }

    /// Attaches (or with `None`, detaches) the insert-notification hook.
    /// Attach *after* restoring persisted entries, or every replayed entry
    /// re-enters the log it came from.
    pub fn set_store_observer(&self, observer: Option<DefObserver>) {
        *self.observer.write().expect("def observer poisoned") = observer;
    }

    /// Monotone mutation counter (bumped on every insert and clear); equal
    /// values imply no new state to persist.
    pub fn mutation_count(&self) -> u64 {
        self.mutations.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of recorded definitions.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("def index poisoned").len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stored verdict for an input digest; `None` when the primary hash
    /// is unknown *or* the verify hash disagrees (a primary-hash collision —
    /// treated as a miss, never replayed).
    pub fn lookup(&self, input_hash: u64, verify_hash: u64) -> Option<StoredDef> {
        self.entries
            .lock()
            .expect("def index poisoned")
            .get(&input_hash)
            .filter(|(v, _)| *v == verify_hash)
            .map(|(_, d)| d.clone())
    }

    /// Records (or overwrites) a verdict, epoch-clearing a full index first.
    pub fn insert(&self, input_hash: u64, verify_hash: u64, def: StoredDef) {
        // Notify before the insert, holding no lock (the observer is a WAL
        // append that may block on I/O); replay idempotence makes the
        // log-before-memory ordering harmless.
        if let Some(observer) = self.observer.read().expect("def observer poisoned").clone() {
            observer(input_hash, verify_hash, &def);
        }
        let mut entries = self.entries.lock().expect("def index poisoned");
        if entries.len() >= self.max_entries && !entries.contains_key(&input_hash) {
            entries.clear();
        }
        entries.insert(input_hash, (verify_hash, def));
        self.mutations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Clones out every entry, sorted by hash (deterministic snapshots).
    pub fn export(&self) -> Vec<(u64, u64, StoredDef)> {
        let mut out: Vec<(u64, u64, StoredDef)> = self
            .entries
            .lock()
            .expect("def index poisoned")
            .iter()
            .map(|(h, (v, d))| (*h, *v, d.clone()))
            .collect();
        out.sort_by_key(|(h, _, _)| *h);
        out
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.entries.lock().expect("def index poisoned").clear();
        self.mutations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// The BiRelCost engine: checks programs definition by definition,
/// accumulating earlier definitions in the typing context (this is how the
/// `msort` example uses `bsplit` and `merge`).
///
/// The engine holds no mutable state — checking goes through `&self` — so one
/// instance can be shared across worker threads behind an [`Arc`].  When a
/// [`ValidityCache`] is attached it is consulted by every solver the engine
/// spawns, letting concurrent batch checks share constraint verdicts.
#[derive(Debug, Clone)]
pub struct Engine {
    checker: RelChecker,
    solve_config: SolveConfig,
    level: SystemLevel,
    cache: Option<Arc<dyn ValidityCache>>,
    programs: Option<Arc<SharedProgramCache>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with all heuristics, the standard cost model and the default
    /// solver configuration, checking at the RelCost level.
    pub fn new() -> Engine {
        Engine {
            checker: RelChecker::new(),
            solve_config: SolveConfig::default(),
            level: SystemLevel::RelCost,
            cache: None,
            programs: None,
        }
    }

    /// Attaches a shared constraint-validity cache.  Every solver the engine
    /// creates (both the checking-phase solver and the final entailment
    /// solver) consults it before solving and publishes its verdicts to it.
    pub fn with_cache(mut self, cache: Arc<dyn ValidityCache>) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// The attached validity cache, if any.
    pub fn cache(&self) -> Option<&Arc<dyn ValidityCache>> {
        self.cache.as_ref()
    }

    /// Attaches a shared compiled-program memo: every solver the engine
    /// creates reuses bytecode compiled by any other solver (across
    /// definitions, batch workers and daemon requests).
    pub fn with_program_cache(mut self, programs: Arc<SharedProgramCache>) -> Engine {
        self.programs = Some(programs);
        self
    }

    /// The attached compiled-program memo, if any.
    pub fn program_cache(&self) -> Option<&Arc<SharedProgramCache>> {
        self.programs.as_ref()
    }

    /// Overrides the heuristics configuration (used by the ablation bench).
    pub fn with_heuristics(mut self, heuristics: Heuristics) -> Engine {
        self.checker = RelChecker::with_heuristics(heuristics);
        self
    }

    /// Overrides the solver configuration.
    pub fn with_solve_config(mut self, config: SolveConfig) -> Engine {
        self.solve_config = config;
        self
    }

    /// Selects which system of the paper to check in.  Below
    /// [`SystemLevel::RelCost`] all relative-cost bounds are replaced by `∞`
    /// (the paper's embedding of RelRef/RelRefU into RelCost).
    pub fn at_level(mut self, level: SystemLevel) -> Engine {
        self.level = level;
        self
    }

    /// The active system level.
    pub fn level(&self) -> SystemLevel {
        self.level
    }

    /// The checker in use.
    pub fn checker(&self) -> &RelChecker {
        &self.checker
    }

    /// A stable fingerprint of every engine knob that can influence a
    /// verdict: the solver configuration, the system level, and the
    /// checker's cost model and heuristics.  Keys [`DefIndex`] input hashes
    /// and `rel-persist` snapshot headers: verdicts recorded under one
    /// fingerprint are never replayed under another.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::default();
        h.write_u64(self.solve_config.fingerprint());
        format!("{:?}", self.level).hash(&mut h);
        format!("{:?}", self.checker).hash(&mut h);
        h.finish()
    }

    /// Checks a whole program.
    pub fn check_program(&self, program: &Program) -> ProgramReport {
        self.check_program_with(program, None)
    }

    /// Checks a whole program, optionally against a [`DefIndex`].
    ///
    /// With an index, each definition's input hash is computed first (a
    /// formatting pass over the AST — no constraint generation): a recorded
    /// hash replays the stored verdict as a `skipped_unchanged` report with
    /// zero solver work, and a fresh hash is checked normally and recorded.
    /// Without an index this is exactly [`Engine::check_program`].
    pub fn check_program_with(&self, program: &Program, index: Option<&DefIndex>) -> ProgramReport {
        let mut ctx = RelCtx::new();
        let mut report = ProgramReport::default();
        // `chain` folds the interfaces (name + type) of the definitions seen
        // so far into each subsequent input hash: a definition's verdict
        // depends on the typing context it is checked in, so editing an
        // earlier interface must re-check every later definition.
        let mut chain = index.map(|_| HashChain::root(self.fingerprint()));
        for def in program.iter() {
            let def_report = match (index, chain) {
                (Some(index), Some(c)) => {
                    let (input_hash, verify_hash) = c.def_input_hash(def);
                    match index.lookup(input_hash, verify_hash) {
                        Some(stored) => skipped_report(def, input_hash, stored),
                        None => {
                            let mut r = self.check_def_in(&ctx, def);
                            r.input_hash = input_hash;
                            index.insert(
                                input_hash,
                                verify_hash,
                                StoredDef {
                                    name: r.name.clone(),
                                    ok: r.ok,
                                    proved: r.proved,
                                    error: r.error.clone(),
                                },
                            );
                            r
                        }
                    }
                }
                _ => self.check_def_in(&ctx, def),
            };
            if let Some(c) = chain.as_mut() {
                *c = c.extend_interface(def);
            }
            ctx = ctx.bind_var(def.name.clone(), def.ty.clone());
            report.defs.push(def_report);
        }
        report
    }

    /// Checks a single definition in an empty context.
    pub fn check_def(&self, def: &Def) -> DefReport {
        self.check_def_in(&RelCtx::new(), def)
    }

    /// Checks a single definition in the given context.
    pub fn check_def_in(&self, ctx: &RelCtx, def: &Def) -> DefReport {
        let _span = rel_obs::span("engine.check_def");
        let mut ctx = ctx.clone();
        for axiom in &def.axioms {
            ctx = ctx.assume(axiom.clone());
        }
        let cost = if self.level.tracks_cost() {
            def.cost.clone()
        } else {
            Idx::infty()
        };

        let mut sess = Session {
            fresh: rel_unary::FreshVars::new(),
            solver: self.new_solver(),
        };
        let start = Instant::now();
        let generated = {
            let _tc_span = rel_obs::span("engine.typecheck");
            self.checker.check(
                &mut sess,
                &ctx,
                &def.left,
                def.right_or_left(),
                &def.ty,
                &cost,
            )
        };
        let typecheck = start.elapsed();

        match generated {
            Err(err) => {
                let stats = *sess.solver.stats();
                stats.publish();
                DefReport {
                    name: def.name.name().to_string(),
                    ok: false,
                    proved: false,
                    error: Some(err.to_string()),
                    timings: PhaseTimings {
                        typecheck,
                        ..PhaseTimings::default()
                    },
                    constraint_atoms: 0,
                    existential_vars: sess.fresh.count(),
                    annotations: def.annotation_count(),
                    stats,
                    input_hash: 0,
                    skipped_unchanged: false,
                }
            }
            Ok(constraint) => {
                let atoms = constraint.atom_count();
                let mut solver = self.new_solver();
                let verdict = solver.entails(&ctx.universals(), &ctx.assumptions, &constraint);
                let refutation = solver.last_refutation().clone();
                // The entailment solver's phase timers drive the report's
                // timings (the session solver's queries happen during the
                // typecheck phase, which has its own wall clock); both
                // solvers' counters are folded together through the one
                // canonical aggregation point.
                let entail_stats = *solver.stats();
                let mut stats = entail_stats;
                stats.merge(sess.solver.stats());
                stats.publish();
                DefReport {
                    name: def.name.name().to_string(),
                    ok: verdict.is_valid(),
                    proved: verdict.provenance() == Some(Provenance::Proved),
                    error: if verdict.is_valid() {
                        None
                    } else {
                        Some(describe_failure(&constraint, &verdict, &refutation))
                    },
                    timings: PhaseTimings {
                        typecheck,
                        existential_elim: entail_stats.exelim_time,
                        solving: entail_stats.solving_time,
                    },
                    constraint_atoms: atoms,
                    existential_vars: sess.fresh.count(),
                    annotations: def.annotation_count(),
                    stats,
                    input_hash: 0,
                    skipped_unchanged: false,
                }
            }
        }
    }

    /// A solver configured like this engine (and sharing its caches, if any).
    fn new_solver(&self) -> Solver {
        let mut solver = Solver::with_config(self.solve_config.clone());
        if let Some(cache) = &self.cache {
            solver = solver.with_cache(Arc::clone(cache));
        }
        if let Some(programs) = &self.programs {
            solver = solver.with_program_cache(Arc::clone(programs));
        }
        solver
    }
}

/// Renders a failed verdict with its provenance: *where* the refutation came
/// from (grid counterexample, random sample, exhausted existential search),
/// the falsifying assignment when one exists, and the Fourier–Motzkin
/// elimination order of the goal FM last projected (so a user can see which
/// atoms the linear layer reasoned about before handing over).
fn describe_failure(
    constraint: &Constr,
    verdict: &Validity,
    refutation: &RefutationInfo,
) -> String {
    let mut msg = format!(
        "the generated constraints ({} atomic comparisons) are not valid",
        constraint.atom_count()
    );
    match verdict {
        Validity::Invalid(Some(env)) => {
            let point = if env.is_empty() {
                "the empty assignment".to_string()
            } else {
                env.iter()
                    .map(|(v, x)| format!("{v} = {x}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let source = match refutation.source {
                Some(CexSource::FmWitness) => "Fourier–Motzkin elimination found",
                Some(CexSource::RandomSample) => "randomized sampling found",
                Some(CexSource::GridSweep) => "the numeric grid sweep found",
                // A cached refutation replays the counterexample without
                // re-running the sweep that produced it.
                _ => "the numeric layer (possibly replayed from cache) found",
            };
            msg.push_str(&format!(": {source} a counterexample at {point}"));
        }
        Validity::Invalid(None) => {
            msg.push_str(
                ": refuted without a numeric counterexample \
                 (the candidate-substitution search for the goal's \
                 existentials was exhausted)",
            );
            if let Some((reason, limit)) = refutation.exhausted {
                msg.push_str(&format!(
                    "; the binding cap was {} ({}, limit {limit})",
                    reason.describe(),
                    reason.as_str()
                ));
            }
        }
        Validity::Unknown => {
            msg.push_str(
                ": undecided — the symbolic and Fourier–Motzkin layers could \
                 not prove it and the numeric layer is not decisive",
            );
        }
        Validity::Valid(_) => {}
    }
    if !refutation.fm_eliminated.is_empty() {
        msg.push_str(&format!(
            " [FM eliminated: {}]",
            refutation.fm_eliminated.join(", ")
        ));
    }
    msg
}

/// Salt separating the verify-hash stream from the primary one (an
/// arbitrary odd constant, 2⁶⁴/φ).
const VERIFY_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// The rolling context hash behind definition input hashes: two
/// independently seeded FNV-1a streams over the engine fingerprint and the
/// interfaces (name + type) of the definitions seen so far.
///
/// Two streams because the def index replays verdicts *by hash* — the full
/// input (a rendering of the whole AST plus context) is deliberately not
/// stored, unlike the other memo layers whose keys are small.  A single
/// 64-bit hash would make an accidental collision replay the wrong verdict
/// silently; the paired 128 bits push accidental collisions out of reach
/// (~2⁻⁶⁴ at birthday scale for any feasible index size).  FNV is not
/// collision-*resistant* against an adversary crafting sources, so a
/// deployment checking hostile input at scale should upgrade this to a
/// keyed hash with a per-snapshot secret — the two-stream structure is the
/// seam for it.
///
/// Definitions are serialized via their `Debug` rendering — deterministic
/// and total; `Debug`-identical definitions check identically by
/// construction.  Cross-*version* stability is governed by the snapshot
/// format version, not by this hash (see DESIGN.md §6).
#[derive(Debug, Clone, Copy)]
struct HashChain {
    primary: u64,
    verify: u64,
}

impl HashChain {
    /// The chain at the start of a program.
    fn root(engine_fingerprint: u64) -> HashChain {
        HashChain {
            primary: engine_fingerprint,
            verify: fold(VERIFY_SALT, engine_fingerprint, ""),
        }
    }

    /// The `(input_hash, verify_hash)` pair of one definition in this
    /// context.
    fn def_input_hash(&self, def: &Def) -> (u64, u64) {
        let rendered = format!("{def:?}");
        (
            fold(0, self.primary, &rendered),
            fold(VERIFY_SALT, self.verify, &rendered),
        )
    }

    /// The chain after this definition's interface (name + type) enters the
    /// typing context.
    fn extend_interface(&self, def: &Def) -> HashChain {
        let interface = format!("{:?}|{:?}", def.name, def.ty);
        HashChain {
            primary: fold(0, self.primary, &interface),
            verify: fold(VERIFY_SALT, self.verify, &interface),
        }
    }
}

/// One FNV-1a fold of `(salt, seed, payload)`.
fn fold(salt: u64, seed: u64, payload: &str) -> u64 {
    let mut h = Fnv1a::default();
    h.write_u64(salt);
    h.write_u64(seed);
    payload.hash(&mut h);
    h.finish()
}

/// The report replayed for a definition whose input hash is unchanged.
fn skipped_report(def: &Def, input_hash: u64, stored: StoredDef) -> DefReport {
    DefReport {
        name: def.name.name().to_string(),
        ok: stored.ok,
        proved: stored.proved,
        error: stored.error,
        timings: PhaseTimings::default(),
        constraint_atoms: 0,
        existential_vars: 0,
        annotations: def.annotation_count(),
        stats: SolveStats::default(),
        input_hash,
        skipped_unchanged: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_syntax::parse_program;

    fn check(src: &str) -> ProgramReport {
        Engine::new().check_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_well_typed_programs_and_reports_timings() {
        let report = check("def id : boolr -> boolr = lam x. x;");
        assert!(report.all_ok());
        let d = report.def("id").unwrap();
        assert!(d.error.is_none());
        assert_eq!(d.annotations, 1);
        assert!(d.timings.total() > Duration::ZERO);
    }

    #[test]
    fn rejects_ill_typed_programs() {
        let report = check("def bad : boolr = 3;");
        assert!(!report.all_ok());
        assert!(report.def("bad").unwrap().error.is_some());
    }

    #[test]
    fn rejects_unsound_cost_bounds() {
        // Claiming a negative-relative-cost identity is fine (0 ≤ 0), but a
        // claimed bound that the body exceeds must be rejected: here the left
        // program does strictly more work than allowed by the bound 0 against
        // a cheaper right program.
        let report = check("def two : UU int = 1 + 1 + 1 ~ 3;");
        assert!(!report.all_ok());
        let report = check("def two : UU int @ 2 = 1 + 1 + 1 ~ 3;");
        assert!(report.all_ok());
    }

    #[test]
    fn earlier_definitions_are_visible_to_later_ones() {
        let src = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let report = check(src);
        assert!(report.all_ok(), "{report:?}");
    }

    #[test]
    fn cached_engine_matches_uncached_verdicts_and_hits_on_rerun() {
        use rel_constraint::{ShardedValidityCache, ValidityCache};
        let src = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let program = parse_program(src).unwrap();
        let plain = Engine::new().check_program(&program);

        let cache = Arc::new(ShardedValidityCache::new());
        let engine = Engine::new().with_cache(cache.clone());
        let cold = engine.check_program(&program);
        let warm = engine.check_program(&program);

        for (p, c) in plain.defs.iter().zip(&cold.defs) {
            assert_eq!(p.ok, c.ok, "cache changed the verdict of {}", p.name);
        }
        assert_eq!(cold.cache_hits(), 0);
        assert!(cold.cache_misses() > 0);
        assert!(warm.cache_hits() > 0, "warm rerun must hit the cache");
        assert!(cache.stats().entries > 0);
    }

    #[test]
    fn incremental_recheck_skips_unchanged_defs_with_zero_solver_work() {
        let src = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let program = parse_program(src).unwrap();
        let engine = Engine::new();
        let index = DefIndex::new();

        let cold = engine.check_program_with(&program, Some(&index));
        assert!(cold.all_ok());
        assert_eq!(cold.skipped_unchanged(), 0);
        assert_eq!(index.len(), 2);
        for d in &cold.defs {
            assert_ne!(d.input_hash, 0);
        }

        let warm = engine.check_program_with(&program, Some(&index));
        assert!(warm.all_ok());
        assert_eq!(warm.skipped_unchanged(), 2);
        for (c, w) in cold.defs.iter().zip(&warm.defs) {
            assert_eq!(c.ok, w.ok);
            assert_eq!(c.input_hash, w.input_hash, "hashes must be reproducible");
            assert!(w.skipped_unchanged);
            // Zero solver work of any kind for a skipped definition.
            assert_eq!(w.stats.points_evaluated, 0);
            assert_eq!(w.stats.cache_misses, 0);
            assert_eq!(w.stats.programs_compiled, 0);
            assert_eq!(w.timings.total(), Duration::ZERO);
        }
    }

    #[test]
    fn editing_an_earlier_interface_recheck_later_defs() {
        let base = r#"
            def not2 : boolr -> boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        // Same `use` source text, but the interface it sees changed (the
        // body of not2 is different — its interface string is the same, so
        // only not2 itself re-checks)…
        let body_edit = r#"
            def not2 : boolr -> boolr = lam b. if b then false else false;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let engine = Engine::new();
        let index = DefIndex::new();
        engine.check_program_with(&parse_program(base).unwrap(), Some(&index));

        let edited = engine.check_program_with(&parse_program(body_edit).unwrap(), Some(&index));
        assert!(
            !edited.defs[0].skipped_unchanged,
            "edited def must re-check"
        );
        assert!(
            edited.defs[1].skipped_unchanged,
            "unchanged def behind an unchanged interface is skipped"
        );

        // …whereas a changed *type* on not2 re-checks `use` too.
        let iface_edit = r#"
            def not2 : boolr ->[1] boolr = lam b. if b then false else true;
            def use : boolr -> boolr = lam b. not2 (not2 b);
        "#;
        let edited = engine.check_program_with(&parse_program(iface_edit).unwrap(), Some(&index));
        assert!(!edited.defs[0].skipped_unchanged);
        assert!(
            !edited.defs[1].skipped_unchanged,
            "an interface edit invalidates every later definition"
        );
    }

    #[test]
    fn def_index_epoch_evicts_at_capacity() {
        let stored = |n: u64| StoredDef {
            name: format!("d{n}"),
            ok: true,
            proved: true,
            error: None,
        };
        let index = DefIndex::with_capacity(2);
        for h in 0..3 {
            index.insert(h, h + 100, stored(h));
        }
        // The third insert cleared the full index first.
        assert_eq!(index.len(), 1);
        assert!(index.lookup(2, 102).is_some());
        assert!(index.lookup(0, 100).is_none());
        // Overwriting a recorded hash never evicts.
        index.insert(2, 102, stored(9));
        index.insert(2, 102, stored(10));
        assert_eq!(index.len(), 1);
        assert_eq!(index.lookup(2, 102).unwrap().name, "d10");
    }

    #[test]
    fn def_index_rejects_primary_hash_collisions() {
        let index = DefIndex::new();
        index.insert(
            7,
            1111,
            StoredDef {
                name: "real".to_string(),
                ok: true,
                proved: true,
                error: None,
            },
        );
        // Same primary hash, different verify hash: a collision — a miss,
        // never a replay of the wrong definition's verdict.
        assert!(index.lookup(7, 2222).is_none());
        assert!(index.lookup(7, 1111).is_some());
    }

    #[test]
    fn different_engine_configs_never_share_def_hashes() {
        let program = parse_program("def id : boolr -> boolr = lam x. x;").unwrap();
        let index = DefIndex::new();
        Engine::new().check_program_with(&program, Some(&index));
        let relref = Engine::new()
            .at_level(SystemLevel::RelRef)
            .check_program_with(&program, Some(&index));
        assert!(
            !relref.defs[0].skipped_unchanged,
            "a RelRef engine must not replay RelCost verdicts"
        );
        assert_ne!(Engine::new().fingerprint(), {
            Engine::new().at_level(SystemLevel::RelRef).fingerprint()
        });
    }

    #[test]
    fn shared_program_cache_is_wired_through_the_engine() {
        use rel_constraint::SharedProgramCache;
        // A def whose constraints reach the numeric layer, so bytecode gets
        // compiled: a cost-bound claim settled by grid evaluation.
        let src = "def two : UU int @ 2 = 1 + 1 + 1 ~ 3;";
        let program = parse_program(src).unwrap();
        let programs = Arc::new(SharedProgramCache::new());
        let engine = Engine::new().with_program_cache(Arc::clone(&programs));

        let first = engine.check_program(&program);
        assert!(first.all_ok());
        let compiled_cold = first.programs_compiled();

        let second = engine.check_program(&program);
        assert!(second.all_ok());
        assert_eq!(
            second.programs_compiled(),
            0,
            "every program must come from the shared memo on the second run"
        );
        if compiled_cold > 0 {
            assert!(second.program_cache_hits() > 0);
            assert!(programs.stats().entries > 0);
        }
    }

    #[test]
    fn relref_level_ignores_costs() {
        let src = "def f : intr ->[0] intr = lam x. x + 1;";
        // At the RelCost level the bound 0 on the arrow is fine (the relative
        // cost of the two identical bodies is 0)…
        assert!(check(src).all_ok());
        // …and at the RelRef level costs are ignored entirely.
        let report = Engine::new()
            .at_level(SystemLevel::RelRef)
            .check_program(&parse_program(src).unwrap());
        assert!(report.all_ok());
    }
}
