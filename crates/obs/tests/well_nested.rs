//! Property test: whatever nesting shape the code takes, the recorder's
//! per-thread event streams are well-nested span trees (RAII guarantees
//! the Ends; this checks the recorder preserves order and thread identity).

use proptest::proptest;
use rel_obs::recorder::{check_well_nested, set_recording, take_events};
use rel_obs::{event_with, span_with};

/// Tiny deterministic PRNG so each proptest case derives a distinct,
/// reproducible nesting script from its seed.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

const NAMES: [&str; 4] = ["prop.a", "prop.b", "prop.c", "prop.d"];

/// Runs a randomized script of spans/events: at each level open 0..4
/// children, each either an instant event or a nested span (depth-capped).
fn nest(rng: &mut SplitMix, depth: usize) {
    let n = (rng.next() % 4) as usize;
    for _ in 0..n {
        let choice = rng.next() % 3;
        if choice == 0 || depth >= 6 {
            event_with("prop.event", rng.next() % 100);
        } else {
            let name = NAMES[(rng.next() % NAMES.len() as u64) as usize];
            let _g = span_with(name, depth as u64);
            nest(rng, depth + 1);
        }
    }
}

proptest! {
    #[test]
    fn randomized_nesting_stays_well_nested_per_thread(seed in 0u64..u64::MAX) {
        let _ = take_events();
        set_recording(true);
        let handles: Vec<_> = (0..3u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut rng = SplitMix(seed ^ (t.wrapping_mul(0x517C_C1B7_2722_0A95)));
                    nest(&mut rng, 0);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("script thread panicked");
        }
        set_recording(false);
        let events = take_events();
        if let Err(e) = check_well_nested(&events) {
            panic!("seed {seed}: {e}");
        }
        // The trees must also reassemble without inventing or dropping
        // spans: every Begin in the drained stream appears as a node.
        let begins = events
            .iter()
            .filter(|e| e.kind == rel_obs::EventKind::Begin)
            .count();
        let mut nodes = 0usize;
        for tree in rel_obs::build_trees(&events) {
            for root in &tree.roots {
                root.walk(&mut |_, _| nodes += 1);
            }
        }
        assert_eq!(nodes, begins, "seed {seed}: span tree lost or invented nodes");
    }
}
