//! With the recorder off (`RelObsConfig::off`, the default), the span and
//! event entry points on the solver hot path must not allocate at all —
//! asserted by counting allocations, not by timing.
//!
//! This file holds exactly one test so no sibling test thread can allocate
//! between the snapshot and the assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_and_cached_metrics_do_not_allocate() {
    rel_obs::RelObsConfig::off().apply();

    let counter = rel_obs::counter!("zero_alloc.counter");
    let histogram = rel_obs::histogram!("zero_alloc.hist");
    let hot_path = |i: u64| {
        let _outer = rel_obs::span("zero_alloc.outer");
        let _inner = rel_obs::span_with("zero_alloc.inner", i);
        rel_obs::event("zero_alloc.event");
        rel_obs::event_with("zero_alloc.event_arg", i);
        counter.add(1);
        rel_obs::counter!("zero_alloc.counter").incr();
        histogram.observe_ns(i);
        rel_obs::histogram!("zero_alloc.hist").observe_ns(i);
    };

    // Warm-up: the first use of each counter!/histogram! call site
    // registers the metric (allocates once, by design); everything after
    // must not.
    hot_path(0);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1_000u64 {
        hot_path(i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "hot path allocated with recording off: {} allocations in 1000 iterations",
        after - before
    );
    assert_eq!(counter.get(), 2_002);
}
