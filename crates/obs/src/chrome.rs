//! Trace exporters: chrome://tracing JSON and the span-tree builder.
//!
//! [`chrome_trace`] turns a drained event list into a JSON document that
//! loads directly in chrome://tracing / Perfetto (`--trace-out`).
//! [`build_trees`] reassembles the same events into per-thread span trees;
//! `birelcost explain` walks those trees to narrate a verdict.
//!
//! Both are tolerant of ring-buffer wrap: an `End` whose `Begin` was
//! overwritten is dropped, and a `Begin` still open when the buffer was
//! drained is closed at the last timestamp seen on its thread.

use crate::metrics::push_json_str;
use crate::recorder::{Event, EventKind};

/// One completed span: a `Begin`/`End` pair with everything recorded
/// strictly inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
    /// The argument recorded at `Begin` (span-specific: existential count,
    /// row count, …; 0 when the span carried none).
    pub arg: u64,
    pub children: Vec<SpanNode>,
    /// Instant events recorded inside this span but not inside any child.
    pub events: Vec<Event>,
}

impl SpanNode {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Depth-first walk over this node and all descendants.
    pub fn walk(&self, f: &mut impl FnMut(&SpanNode, usize)) {
        self.walk_at(0, f);
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(&SpanNode, usize)) {
        f(self, depth);
        for c in &self.children {
            c.walk_at(depth + 1, f);
        }
    }
}

/// All spans recorded by one thread, as a forest of roots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTree {
    pub tid: u32,
    pub roots: Vec<SpanNode>,
    /// Instant events recorded outside any span.
    pub events: Vec<Event>,
}

/// Reassembles a drained event list (see [`crate::recorder::take_events`])
/// into per-thread span trees, ordered by thread id.
pub fn build_trees(events: &[Event]) -> Vec<ThreadTree> {
    let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut trees = Vec::with_capacity(tids.len());
    for tid in tids {
        let mut roots = Vec::new();
        let mut stray = Vec::new();
        let mut stack: Vec<SpanNode> = Vec::new();
        let mut last_ts = 0u64;
        for e in events.iter().filter(|e| e.tid == tid) {
            last_ts = last_ts.max(e.ts_ns);
            match e.kind {
                EventKind::Begin => stack.push(SpanNode {
                    name: e.name,
                    start_ns: e.ts_ns,
                    end_ns: e.ts_ns,
                    arg: e.arg,
                    children: Vec::new(),
                    events: Vec::new(),
                }),
                EventKind::End => {
                    // An End with no open span means the Begin was lost to
                    // ring wrap; drop it rather than inventing a span.
                    if let Some(mut node) = stack.pop() {
                        node.end_ns = e.ts_ns;
                        attach(&mut stack, &mut roots, node);
                    }
                }
                EventKind::Instant => match stack.last_mut() {
                    Some(open) => open.events.push(*e),
                    None => stray.push(*e),
                },
            }
        }
        // Close spans still open at drain time (the drain itself, or wrap).
        while let Some(mut node) = stack.pop() {
            node.end_ns = last_ts;
            attach(&mut stack, &mut roots, node);
        }
        trees.push(ThreadTree {
            tid,
            roots,
            events: stray,
        });
    }
    trees
}

fn attach(stack: &mut [SpanNode], roots: &mut Vec<SpanNode>, node: SpanNode) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    }
}

/// Serializes a drained event list as chrome://tracing "trace event
/// format" JSON: duration events (`ph: "B"`/`"E"`) plus instants
/// (`ph: "i"`), one process, one chrome-thread per recorder thread,
/// timestamps in microseconds.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, e.name);
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        out.push_str(&format!(
            ",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03}",
            ph,
            e.tid,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000
        ));
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if e.arg != 0 {
            out.push_str(&format!(",\"args\":{{\"v\":{}}}", e.arg));
        }
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: EventKind, tid: u32, ts_ns: u64, arg: u64) -> Event {
        Event {
            name,
            kind,
            tid,
            ts_ns,
            arg,
        }
    }

    #[test]
    fn builds_nested_tree_per_thread() {
        let events = vec![
            ev("outer", EventKind::Begin, 1, 10, 0),
            ev("inner", EventKind::Begin, 1, 20, 7),
            ev("mark", EventKind::Instant, 1, 25, 0),
            ev("inner", EventKind::End, 1, 30, 0),
            ev("outer", EventKind::End, 1, 40, 0),
            ev("other", EventKind::Begin, 2, 15, 0),
            ev("other", EventKind::End, 2, 16, 0),
        ];
        let trees = build_trees(&events);
        assert_eq!(trees.len(), 2);
        let t1 = &trees[0];
        assert_eq!(t1.tid, 1);
        assert_eq!(t1.roots.len(), 1);
        let outer = &t1.roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.duration_ns(), 30);
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(
            (inner.name, inner.arg, inner.duration_ns()),
            ("inner", 7, 10)
        );
        assert_eq!(inner.events.len(), 1);
        assert_eq!(inner.events[0].name, "mark");
        assert_eq!(trees[1].tid, 2);
    }

    #[test]
    fn tolerates_wrap_truncation() {
        // Begin lost to ring wrap: orphan End is dropped.  Dangling Begin
        // at drain time is closed at the thread's last timestamp.
        let events = vec![
            ev("lost", EventKind::End, 3, 5, 0),
            ev("open", EventKind::Begin, 3, 10, 0),
            ev("tick", EventKind::Instant, 3, 12, 0),
        ];
        let trees = build_trees(&events);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].roots.len(), 1);
        let open = &trees[0].roots[0];
        assert_eq!(open.name, "open");
        assert_eq!(open.end_ns, 12);
        assert_eq!(open.events.len(), 1);
        assert!(trees[0].events.is_empty());
    }

    #[test]
    fn stray_instants_land_on_the_thread() {
        let events = vec![ev("ping", EventKind::Instant, 4, 1, 9)];
        let trees = build_trees(&events);
        assert_eq!(trees[0].roots.len(), 0);
        assert_eq!(trees[0].events, vec![events[0]]);
    }

    #[test]
    fn chrome_trace_emits_loadable_duration_events() {
        let events = vec![
            ev("solve", EventKind::Begin, 1, 1_500, 3),
            ev("hit", EventKind::Instant, 1, 2_000, 0),
            ev("solve", EventKind::End, 1, 3_250, 0),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains(
            "{\"name\":\"solve\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.500,\"args\":{\"v\":3}}"
        ));
        assert!(json.contains(
            "{\"name\":\"hit\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":2.000,\"s\":\"t\"}"
        ));
        assert!(json.contains("{\"name\":\"solve\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":3.250}"));
    }

    #[test]
    fn recorded_spans_round_trip_into_a_tree() {
        crate::recorder::test_support::with_armed_recorder(|| {
            {
                let _outer = crate::recorder::span("rt.outer");
                let _inner = crate::recorder::span_with("rt.inner", 42);
            }
            let events = crate::recorder::take_events();
            let trees = build_trees(&events);
            let mine: Vec<_> = trees
                .iter()
                .flat_map(|t| t.roots.iter())
                .filter(|r| r.name == "rt.outer")
                .collect();
            assert_eq!(mine.len(), 1);
            assert_eq!(mine[0].children.len(), 1);
            assert_eq!(mine[0].children[0].name, "rt.inner");
            assert_eq!(mine[0].children[0].arg, 42);
            assert!(mine[0].end_ns >= mine[0].children[0].end_ns);
        });
    }
}
