//! Capped exponential backoff with deterministic jitter — the retry policy
//! shared by everything in the daemon that supervises a flaky dependency
//! (replication peer sessions, the persist-save flusher).
//!
//! The policy is the standard one: the n-th consecutive failure waits
//! `base · 2ⁿ`, capped, with ±25 % jitter so a fleet of daemons that all
//! lost the same peer at the same instant does not reconnect in lockstep.
//! Jitter comes from a seeded xorshift instead of a clock or OS entropy:
//! the workspace is offline (no `rand`), and a deterministic sequence makes
//! the backoff schedule reproducible in tests.

/// Capped exponential backoff state for one supervised dependency.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Delay after the first failure, in milliseconds.
    base_ms: u64,
    /// Ceiling on any single delay, in milliseconds.
    cap_ms: u64,
    /// Consecutive failures so far.
    failures: u32,
    /// Jitter PRNG state (xorshift64*).
    rng: u64,
}

impl Backoff {
    /// A fresh (zero-failure) backoff with the given base and cap, jittered
    /// from `seed` (any value; 0 is remapped).
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            failures: 0,
            rng: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Records a failure and returns how long to wait before the next
    /// attempt: `base · 2^(failures-1)` capped at `cap`, ±25 % jitter.
    pub fn next_delay_ms(&mut self) -> u64 {
        self.failures = self.failures.saturating_add(1);
        let exp = self.failures.saturating_sub(1).min(32);
        let raw = self.base_ms.saturating_mul(1u64 << exp).min(self.cap_ms);
        // xorshift64*: cheap, seedable, good enough to de-synchronize peers.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let jitter_span = raw / 2; // ±25% → a span of 50% centered on raw
        if jitter_span == 0 {
            return raw.max(1);
        }
        let offset = self.rng % (jitter_span + 1);
        (raw - jitter_span / 2 + offset).max(1)
    }

    /// Records a success: the next failure starts the schedule over at the
    /// base delay.
    pub fn reset(&mut self) {
        self.failures = 0;
    }

    /// Consecutive failures recorded since the last reset.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Whether the schedule is currently backing off (≥ 1 failure).
    pub fn active(&self) -> bool {
        self.failures > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_to_the_cap() {
        let mut b = Backoff::new(100, 2_000, 42);
        let delays: Vec<u64> = (0..8).map(|_| b.next_delay_ms()).collect();
        // Jitter is ±25%, so delay n sits within [0.75, 1.25]·min(base·2ⁿ, cap).
        for (n, d) in delays.iter().enumerate() {
            let raw = (100u64 << n.min(32)).min(2_000);
            assert!(
                *d >= raw * 3 / 4 && *d <= raw * 5 / 4,
                "delay {n} = {d}, raw {raw}"
            );
        }
        // And the late delays are capped, never growing unbounded.
        assert!(delays[7] <= 2_500);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut b = Backoff::new(100, 10_000, 7);
        for _ in 0..5 {
            b.next_delay_ms();
        }
        assert!(b.active());
        b.reset();
        assert!(!b.active());
        assert!(b.next_delay_ms() <= 125);
    }

    #[test]
    fn jitter_desynchronizes_identical_schedules() {
        let mut a = Backoff::new(100, 10_000, 1);
        let mut b = Backoff::new(100, 10_000, 2);
        let a_delays: Vec<u64> = (0..6).map(|_| a.next_delay_ms()).collect();
        let b_delays: Vec<u64> = (0..6).map(|_| b.next_delay_ms()).collect();
        assert_ne!(a_delays, b_delays);
    }

    #[test]
    fn zero_base_is_remapped_to_one() {
        let mut b = Backoff::new(0, 0, 3);
        assert!(b.next_delay_ms() >= 1);
    }
}
