//! Named counters and log-scaled latency histograms behind one registry.
//!
//! Two kinds of registry exist in a process:
//!
//! * [`global()`] — the process-wide registry the solver layers publish
//!   monotonic counters into (`SolveStats::publish` in rel-constraint,
//!   persist load/save counters, …).  Handles are cached per call site by
//!   the [`counter!`]/[`histogram!`] macros, so after the first call an
//!   increment is a single atomic add: no locking, no allocation.
//! * Private [`Registry`] instances — `rel-service` gives every `Service`
//!   its own registry for per-request latency histograms and cache gauges,
//!   so parallel services (and parallel tests in one binary) never bleed
//!   into each other.
//!
//! A snapshot serializes to the versioned JSON schema documented in
//! DESIGN.md §8.2; [`SCHEMA_VERSION`] bumps on any breaking field change.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version stamp of the metrics JSON schema (the `schema_version` field of
/// every dump).  Bump on any field rename, removal or type change.
pub const SCHEMA_VERSION: u64 = 1;

/// Histogram bucket count: bucket `i` holds observations whose bit length
/// is `i` (i.e. values in `[2^(i-1), 2^i)`), so nanosecond latencies from
/// 1 ns to ~146 years land in distinct buckets.
const BUCKETS: usize = 64;

/// A monotonic named counter.  Cloning shares the underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistInner {
    fn new() -> HistInner {
        HistInner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-scaled latency histogram (nanosecond observations).  Cloning
/// shares the underlying buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

/// Bucket index of a value: its bit length, clamped to the table.
#[inline]
fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Upper bound of a bucket, used as the representative value when reading
/// percentiles back out (pessimistic by at most 2x, which is the deal one
/// signs with log-scale buckets).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 63 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

impl Histogram {
    /// Records one observation (typically a span duration in nanoseconds).
    #[inline]
    pub fn observe_ns(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] observation.
    #[inline]
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Starts an RAII timer that observes the elapsed wall clock on this
    /// histogram when dropped — the shape serving loops want around a
    /// request body with several exit paths.
    pub fn start_timer(&self) -> Timer {
        Timer {
            histogram: self.clone(),
            start: std::time::Instant::now(),
        }
    }

    /// Reads a consistent-enough snapshot (relaxed loads; counts may lag
    /// concurrent writers by a few observations, which is fine for a dump).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (i, b) in inner.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
            count += buckets[i];
        }
        let percentile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum_ns: inner.sum.load(Ordering::Relaxed),
            p50_ns: percentile(0.50),
            p90_ns: percentile(0.90),
            p99_ns: percentile(0.99),
            max_ns: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard from [`Histogram::start_timer`]: records the elapsed time on
/// drop, so every return path of a request handler is measured without a
/// per-path `observe` call.
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    start: std::time::Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed());
    }
}

/// Point-in-time summary of one histogram, as exported in the JSON dump.
/// Percentiles are bucket upper bounds (within 2x of the true value); the
/// max is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// A named-metric registry: counters, gauges and latency histograms.
///
/// Lookup by name takes a mutex, so callers on hot paths cache the handle
/// (see [`counter!`]/[`histogram!`]); the handles themselves are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered under `name`, creating it at zero on
    /// first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        map.entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it empty on
    /// first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        map.entry(name.to_owned())
            .or_insert_with(|| Histogram(Arc::new(HistInner::new())))
            .clone()
    }

    /// Sets a gauge to an absolute value.  Gauges are for level quantities
    /// (cache entries, bytes on disk) refreshed at snapshot time, not for
    /// hot-path increments.
    pub fn set_gauge(&self, name: &str, value: i64) {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        map.insert(name.to_owned(), value);
    }

    /// Reads every metric into a sorted snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let counters = {
            let map = self.counters.lock().expect("counter map poisoned");
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let gauges = {
            let map = self.gauges.lock().expect("gauge map poisoned");
            map.iter().map(|(k, v)| (k.clone(), *v)).collect()
        };
        let histograms = {
            let map = self.histograms.lock().expect("histogram map poisoned");
            map.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect()
        };
        RegistrySnapshot {
            schema_version: SCHEMA_VERSION,
            counters,
            gauges,
            histograms,
        }
    }

    /// Serializes [`Registry::snapshot`] to the versioned JSON schema.
    pub fn dump_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time dump of a registry, sorted by name within each section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    pub schema_version: u64,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// The value of a counter by name, when present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of a gauge by name, when present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Serializes to the versioned schema:
    ///
    /// ```json
    /// {"schema_version": 1,
    ///  "counters": {"fm.proved": 12, ...},
    ///  "gauges": {"cache.validity.entries": 40, ...},
    ///  "histograms": {"serve.request_ns": {"count": 3, "sum_ns": ...,
    ///     "p50_ns": ..., "p90_ns": ..., "p99_ns": ..., "max_ns": ...}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"schema_version\":");
        out.push_str(&self.schema_version.to_string());
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                h.count, h.sum_ns, h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes included).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The process-wide registry.  Solver layers publish monotonic counters
/// here; snapshot consumers merge it with any service-private registries.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A counter on the [`global`] registry, with the handle cached in a
/// per-call-site static: the registry mutex is taken once per call site
/// per process, after which this is one relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::global().counter($name))
            .clone()
    }};
}

/// A histogram on the [`global`] registry, handle cached per call site
/// like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::global().histogram($name))
            .clone()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new();
        let a = reg.counter("a");
        let a2 = reg.counter("a");
        a.add(3);
        a2.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.counter("a").get(), 4);
        assert_eq!(reg.counter("b").get(), 0);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.observe_ns(100); // bucket 7, upper 127
        }
        for _ in 0..10 {
            h.observe_ns(1_000_000); // bucket 20, upper (1<<20)-1
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_ns, 90 * 100 + 10 * 1_000_000);
        assert_eq!(s.p50_ns, 127);
        assert_eq!(s.p90_ns, 127);
        assert_eq!(s.p99_ns, (1 << 20) - 1);
        assert_eq!(s.max_ns, 1_000_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let reg = Registry::new();
        let s = reg.histogram("empty").snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum_ns: 0,
                p50_ns: 0,
                p90_ns: 0,
                p99_ns: 0,
                max_ns: 0
            }
        );
    }

    #[test]
    fn dump_json_is_sorted_and_versioned() {
        let reg = Registry::new();
        reg.counter("zeta").add(2);
        reg.counter("alpha").incr();
        reg.set_gauge("g", -5);
        reg.histogram("h").observe_ns(1);
        let json = reg.dump_json();
        assert!(json.starts_with("{\"schema_version\":1,"));
        let alpha = json.find("\"alpha\":1").expect("alpha missing");
        let zeta = json.find("\"zeta\":2").expect("zeta missing");
        assert!(alpha < zeta, "counters must be name-sorted");
        assert!(json.contains("\"g\":-5"));
        assert!(json.contains(
            "\"h\":{\"count\":1,\"sum_ns\":1,\"p50_ns\":1,\"p90_ns\":1,\"p99_ns\":1,\"max_ns\":1}"
        ));
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn timer_observes_on_every_exit_path() {
        let reg = Registry::new();
        let h = reg.histogram("timed");
        {
            let _t = h.start_timer();
        }
        let early_return = || -> Result<(), ()> {
            let _t = h.start_timer();
            Err(())? // the guard records even when the body bails
        };
        let _ = early_return();
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn global_macros_cache_handles() {
        let c = counter!("obs.test.macro_counter");
        c.incr();
        let again = counter!("obs.test.macro_counter");
        again.incr();
        assert!(global().counter("obs.test.macro_counter").get() >= 2);
        let h = histogram!("obs.test.macro_hist");
        h.observe_ns(7);
        assert!(global().histogram("obs.test.macro_hist").snapshot().count >= 1);
    }
}
