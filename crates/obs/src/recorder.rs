//! The span/event recorder: thread-local ring buffers of raw events.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.**  Every entry point starts with one relaxed atomic
//!    load; when recording is off it returns an inert value without touching
//!    thread-local storage, the interner, or the allocator.  The solver hot
//!    path is instrumented unconditionally, so this is what keeps the
//!    `fm_vs_grid` and `compiled` perf gates green with instrumentation
//!    compiled in.
//! 2. **Lock-cheap when on.**  Each thread owns its ring buffer; the only
//!    lock taken per event is the buffer's own mutex, which is uncontended
//!    except while a drain ([`take_events`]) is in progress.  Names are
//!    interned once into `u16` ids so a raw event is 24 bytes of plain data.
//! 3. **Bounded.**  A ring holds [`RING_CAPACITY`] events; older events are
//!    overwritten and counted as dropped, so a pathological run cannot grow
//!    memory without bound.  The tree builder tolerates the missing
//!    prefixes this produces.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each thread's ring buffer can hold before it wraps (2^17; one raw
/// event is 24 bytes, so an armed thread owns at most 3 MiB of trace).
pub const RING_CAPACITY: usize = 1 << 17;

/// Whether the recorder is armed (see [`crate::RelObsConfig`]).
static RECORDING: AtomicBool = AtomicBool::new(false);

/// `true` when spans/events are being recorded.
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Arms or disarms the recorder process-wide.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// The process-start epoch all timestamps are measured against.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process epoch (monotonic).
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Interned span-name id.  `u16` bounds the name table at 65 536 distinct
/// static names — instrumentation sites, not data, so a few dozen in
/// practice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u16);

/// The intern table: `&'static str` → dense id.  Linear scan on intern —
/// the table stays tiny and interning happens per span open, not per
/// event field.
struct Interner {
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner { names: Vec::new() }))
}

fn intern(name: &'static str) -> NameId {
    let mut table = interner().lock().expect("obs interner poisoned");
    if let Some(i) = table
        .names
        .iter()
        .position(|n| std::ptr::eq(*n, name) || *n == name)
    {
        return NameId(i as u16);
    }
    assert!(table.names.len() < u16::MAX as usize, "obs name table full");
    table.names.push(name);
    NameId((table.names.len() - 1) as u16)
}

fn resolve(id: NameId) -> &'static str {
    let table = interner().lock().expect("obs interner poisoned");
    table
        .names
        .get(id.0 as usize)
        .copied()
        .unwrap_or("<unknown>")
}

/// What one raw event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed (matches the innermost open `Begin` of the same name).
    End,
    /// A point event with no duration.
    Instant,
}

/// One fixed-size recorded event.
#[derive(Debug, Clone, Copy)]
struct RawEvent {
    name: NameId,
    kind: EventKind,
    ts_ns: u64,
    /// One free integer payload (a cap value, a count) — rendered in the
    /// chrome trace as `args.v` and surfaced by `explain`.
    arg: u64,
}

/// A drained, name-resolved event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The interned span/event name.
    pub name: &'static str,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Dense id of the recording thread (assigned at first record).
    pub tid: u32,
    /// Nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// The free integer payload.
    pub arg: u64,
}

/// One thread's ring buffer.
struct ThreadBuf {
    tid: u32,
    events: Vec<RawEvent>,
    /// Next write position.
    head: usize,
    /// Whether the ring has wrapped since the last drain.
    wrapped: bool,
    /// Events overwritten since the last drain.
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, e: RawEvent) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.wrapped = true;
            self.dropped += 1;
        }
        self.head = (self.head + 1) % RING_CAPACITY;
    }

    /// Drains in chronological order and resets the ring.
    fn drain(&mut self) -> Vec<RawEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        if self.wrapped {
            out.extend_from_slice(&self.events[self.head..]);
        }
        out.extend_from_slice(&self.events[..self.head.min(self.events.len())]);
        self.events.clear();
        self.head = 0;
        self.wrapped = false;
        self.dropped = 0;
        out
    }
}

/// Registry of every thread buffer ever armed (buffers outlive their
/// threads so a drain after a worker pool exits still sees its events).
fn buffers() -> &'static Mutex<Vec<Arc<Mutex<ThreadBuf>>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<Mutex<ThreadBuf>>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LOCAL: std::cell::OnceCell<Arc<Mutex<ThreadBuf>>> =
        const { std::cell::OnceCell::new() };
}

fn record(name: NameId, kind: EventKind, arg: u64) {
    let e = RawEvent {
        name,
        kind,
        ts_ns: now_ns(),
        arg,
    };
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            let buf = Arc::new(Mutex::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Vec::new(),
                head: 0,
                wrapped: false,
                dropped: 0,
            }));
            buffers()
                .lock()
                .expect("obs buffer registry poisoned")
                .push(Arc::clone(&buf));
            buf
        });
        buf.lock().expect("obs thread buffer poisoned").push(e);
    });
}

/// RAII guard for one span: records `Begin` on creation (when recording is
/// armed) and the matching `End` on drop.  Inert — carrying no name and
/// touching nothing on drop — when created while recording was off.
#[must_use = "a span guard records its End when dropped"]
pub struct SpanGuard {
    name: Option<NameId>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Record the End even if recording was switched off mid-span, so
        // drained traces stay well-nested under racy disarmament.
        if let Some(name) = self.name {
            record(name, EventKind::End, 0);
        }
    }
}

/// Opens a span.  `name` must be a static instrumentation-site label
/// (dot-separated by convention: `"solver.fm_prove"`).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, 0)
}

/// [`span`] with an integer payload on the `Begin` event.
#[inline]
pub fn span_with(name: &'static str, arg: u64) -> SpanGuard {
    if !recording() {
        return SpanGuard { name: None };
    }
    let id = intern(name);
    record(id, EventKind::Begin, arg);
    SpanGuard { name: Some(id) }
}

/// Records a point event.
#[inline]
pub fn event(name: &'static str) {
    event_with(name, 0);
}

/// [`event`] with an integer payload.
#[inline]
pub fn event_with(name: &'static str, arg: u64) {
    if !recording() {
        return;
    }
    record(intern(name), EventKind::Instant, arg);
}

/// Drains every thread's ring buffer, resolving names.  Events come back
/// grouped by thread, chronological within each thread.
pub fn take_events() -> Vec<Event> {
    let registry = buffers().lock().expect("obs buffer registry poisoned");
    let mut out = Vec::new();
    for buf in registry.iter() {
        let mut buf = buf.lock().expect("obs thread buffer poisoned");
        let tid = buf.tid;
        for raw in buf.drain() {
            out.push(Event {
                name: resolve(raw.name),
                kind: raw.kind,
                tid,
                ts_ns: raw.ts_ns,
                arg: raw.arg,
            });
        }
    }
    out
}

/// Checks the stack discipline of a drained trace: within each thread,
/// every `End` must match the innermost open `Begin` and nothing may remain
/// open at the end.  (Production traces may legitimately violate this after
/// a ring wrap drops `Begin`s; tests drain before wrapping.)
pub fn check_well_nested(events: &[Event]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<u32, Vec<&'static str>> = HashMap::new();
    for e in events {
        let stack = stacks.entry(e.tid).or_default();
        match e.kind {
            EventKind::Begin => stack.push(e.name),
            EventKind::End => match stack.pop() {
                Some(open) if open == e.name => {}
                Some(open) => {
                    return Err(format!(
                        "thread {}: End({}) closes open span {open}",
                        e.tid, e.name
                    ))
                }
                None => {
                    return Err(format!(
                        "thread {}: End({}) with no open span",
                        e.tid, e.name
                    ))
                }
            },
            EventKind::Instant => {}
        }
    }
    for (tid, stack) in stacks {
        if !stack.is_empty() {
            return Err(format!("thread {tid}: spans left open: {stack:?}"));
        }
    }
    Ok(())
}

/// Unit-test support: the recorder is process-global, so tests that arm it
/// must serialize against each other (used by this module's tests and the
/// `chrome` tests in the same binary).
#[cfg(test)]
pub(crate) mod test_support {
    use super::{set_recording, take_events};
    use std::sync::Mutex;

    pub(crate) fn with_armed_recorder<R>(f: impl FnOnce() -> R) -> R {
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().expect("recorder test gate poisoned");
        let _ = take_events(); // drop leftovers from other tests
        set_recording(true);
        let r = f();
        set_recording(false);
        let _ = take_events();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::with_armed_recorder;
    use super::*;

    #[test]
    fn spans_record_begin_end_pairs_with_args() {
        let events = with_armed_recorder(|| {
            {
                let _outer = span_with("t.outer", 7);
                let _inner = span("t.inner");
                event_with("t.mark", 42);
            }
            take_events()
        });
        let names: Vec<(&str, EventKind)> = events.iter().map(|e| (e.name, e.kind)).collect();
        assert_eq!(
            names,
            [
                ("t.outer", EventKind::Begin),
                ("t.inner", EventKind::Begin),
                ("t.mark", EventKind::Instant),
                ("t.inner", EventKind::End),
                ("t.outer", EventKind::End),
            ]
        );
        assert_eq!(events[0].arg, 7);
        assert_eq!(events[2].arg, 42);
        check_well_nested(&events).expect("RAII spans are well-nested");
        let mut last = 0;
        for e in &events {
            assert!(e.ts_ns >= last, "timestamps are monotone per thread");
            last = e.ts_ns;
        }
    }

    #[test]
    fn disarmed_recorder_records_nothing() {
        let events = with_armed_recorder(|| {
            set_recording(false);
            let _s = span("t.ghost");
            event("t.ghost_event");
            set_recording(true);
            take_events()
        });
        assert!(events.is_empty(), "got: {events:?}");
    }

    #[test]
    fn interner_is_stable_across_drains() {
        let (a, b) = with_armed_recorder(|| {
            {
                let _s = span("t.stable");
            }
            let a = take_events();
            {
                let _s = span("t.stable");
            }
            (a, take_events())
        });
        assert_eq!(a[0].name, "t.stable");
        assert_eq!(b[0].name, "t.stable");
    }

    #[test]
    fn threads_get_distinct_ids_and_separate_buffers() {
        let events = with_armed_recorder(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        let _s = span("t.worker");
                        event("t.tick");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            take_events()
        });
        let tids: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.name == "t.worker")
            .map(|e| e.tid)
            .collect();
        assert!(
            tids.len() >= 4,
            "each worker thread records under its own tid"
        );
        check_well_nested(&events).expect("per-thread traces are well-nested");
    }
}
