//! `rel-obs`: the flight recorder for the BiRelCost pipeline.
//!
//! PRs 4–5 made the checker a multi-layer decision pipeline (symbolic search
//! → Fourier–Motzkin proving with four memo layers → indexed existential
//! elimination → compiled grid sweeps); this crate is the window into it.
//! It is deliberately dependency-free — the build environment has no
//! registry access, so `tracing`/`metrics` crates are out — and splits into
//! three pieces (DESIGN.md §8):
//!
//! * [`recorder`] — a lock-cheap span/event recorder: thread-local ring
//!   buffers of fixed-size raw events, monotonic timestamps against one
//!   process-start epoch, `u16`-interned span names, and an explicit
//!   [`SpanGuard`] RAII type.  Recording is off by default; when off, the
//!   hot-path entry points are a single relaxed atomic load and **zero
//!   allocations** (counter-asserted in `tests/zero_alloc.rs`).
//! * [`metrics`] — a named-counter + log-scaled latency-histogram registry.
//!   The [`counter!`]/[`histogram!`] macros cache the handle in a per-call-
//!   site static, so after the first call an increment is one atomic add.
//!   [`global`] is the process-wide registry the solver layers publish into;
//!   services own additional private [`Registry`] instances for per-request
//!   metrics that must not bleed between instances.
//! * [`chrome`] — the chrome://tracing JSON exporter (`--trace-out`) plus
//!   the span-tree builder behind the `birelcost explain` verdict narrative.
//!
//! The metrics JSON schema is versioned ([`metrics::SCHEMA_VERSION`]); the
//! field table lives in DESIGN.md §8.2 and `rel-service` ships the checker.

pub mod backoff;
pub mod chrome;
pub mod metrics;
pub mod recorder;

pub use backoff::Backoff;
pub use chrome::{build_trees, chrome_trace, SpanNode, ThreadTree};
pub use metrics::{
    global, Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, Timer,
    SCHEMA_VERSION,
};
pub use recorder::{
    check_well_nested, event, event_with, recording, set_recording, span, span_with, take_events,
    Event, EventKind, SpanGuard,
};

/// The observability configuration of one process: whether the span/event
/// recorder is armed.  Metrics counters are *always* live — they are plain
/// atomics with no allocation or locking on the increment path — so the
/// only thing worth a switch is the recorder, whose events occupy memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelObsConfig {
    /// Record spans and events into the thread-local ring buffers.
    pub record_spans: bool,
}

impl RelObsConfig {
    /// Everything off: span entry points return inert guards without
    /// touching thread-local state (the zero-allocation mode the solver hot
    /// path runs under by default).
    pub fn off() -> RelObsConfig {
        RelObsConfig {
            record_spans: false,
        }
    }

    /// Recorder armed (used by `--trace-out` and `birelcost explain`).
    pub fn on() -> RelObsConfig {
        RelObsConfig { record_spans: true }
    }

    /// Installs this configuration process-wide.
    pub fn apply(&self) {
        recorder::set_recording(self.record_spans);
    }
}

impl Default for RelObsConfig {
    fn default() -> Self {
        RelObsConfig::off()
    }
}
