//! Type errors shared by the unary and relational checkers.

use std::fmt;

/// A structural type error.
///
/// Constraint *violations* are not type errors: the bidirectional rules
/// always succeed structurally and emit constraints, and it is the solver
/// that decides whether the constraints hold.  `TypeError` covers the cases
/// where no rule applies at all (unbound variables, arity mismatches,
/// un-inferable expressions, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable was not bound in the typing context.
    UnboundVariable(String),
    /// The expression is an introduction form whose type cannot be inferred;
    /// an annotation is required.
    CannotInfer(String),
    /// An elimination form was applied to a value of the wrong shape
    /// (e.g. applying a non-function).
    ShapeMismatch {
        /// What the rule expected (e.g. "a function type").
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// Checking a term against a type whose head constructor does not match
    /// the term's introduction form.
    CheckMismatch {
        /// The term's head constructor.
        term: String,
        /// The type it was checked against.
        ty: String,
    },
    /// No subtyping path exists between two types.
    NotASubtype {
        /// Pretty-printed subtype candidate.
        sub: String,
        /// Pretty-printed supertype candidate.
        sup: String,
    },
    /// The two related expressions are structurally dissimilar and no unary
    /// fallback applies at the checked type.
    StructurallyDissimilar {
        /// Head constructor of the left expression.
        left: String,
        /// Head constructor of the right expression.
        right: String,
    },
    /// A construct was used that the selected [`rel_syntax::SystemLevel`]
    /// does not include.
    UnsupportedAtLevel {
        /// Description of the construct.
        construct: String,
        /// The active system level.
        level: String,
    },
    /// Catch-all with a descriptive message.
    Other(String),
}

impl TypeError {
    /// Convenience constructor for [`TypeError::Other`].
    pub fn other(msg: impl Into<String>) -> TypeError {
        TypeError::Other(msg.into())
    }

    /// Convenience constructor for [`TypeError::ShapeMismatch`].
    pub fn shape(expected: impl Into<String>, found: impl Into<String>) -> TypeError {
        TypeError::ShapeMismatch {
            expected: expected.into(),
            found: found.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::CannotInfer(what) => write!(
                f,
                "cannot infer a type for {what}; add a type annotation `(e : ty)`"
            ),
            TypeError::ShapeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            TypeError::CheckMismatch { term, ty } => {
                write!(f, "cannot check a `{term}` against the type `{ty}`")
            }
            TypeError::NotASubtype { sub, sup } => {
                write!(f, "`{sub}` is not a subtype of `{sup}`")
            }
            TypeError::StructurallyDissimilar { left, right } => write!(
                f,
                "the related expressions are structurally dissimilar (`{left}` vs `{right}`) and no unary fallback applies"
            ),
            TypeError::UnsupportedAtLevel { construct, level } => {
                write!(f, "{construct} is not available in {level}")
            }
            TypeError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TypeError::UnboundVariable("zs".into());
        assert!(e.to_string().contains("zs"));
        let e = TypeError::shape("a function type", "boolr");
        assert!(e.to_string().contains("function"));
        let e = TypeError::CannotInfer("a lambda".into());
        assert!(e.to_string().contains("annotation"));
    }
}
