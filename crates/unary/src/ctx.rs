//! Typing contexts.
//!
//! Both judgments of the paper share the same context structure: a context
//! `∆` of universally quantified index variables, a set of assumed
//! constraints `Φₐ`, and a variable environment (`Ω` mapping variables to
//! unary types, or `Γ` mapping variables to relational types).

use rel_constraint::Constr;
use rel_index::{IdxVar, IdxVarGen, Sort};
use rel_syntax::{RelType, UnaryType, Var};

use crate::error::TypeError;

/// A shared generator of fresh index variables (the `ψ` variables introduced
/// by the algorithmic rules).  One generator is threaded through a whole
/// checker run so generated names never collide.
#[derive(Debug, Default)]
pub struct FreshVars {
    gen: IdxVarGen,
}

impl FreshVars {
    /// Creates a fresh-variable generator.
    pub fn new() -> FreshVars {
        FreshVars::default()
    }

    /// A fresh existential size variable (sort `ℕ`).
    pub fn size(&mut self, hint: &str) -> IdxVar {
        self.gen.fresh(hint, Sort::Nat)
    }

    /// A fresh existential cost variable (sort `ℝ`).
    pub fn cost(&mut self, hint: &str) -> IdxVar {
        self.gen.fresh(hint, Sort::Real)
    }

    /// Number of variables generated so far (reported in statistics).
    pub fn count(&self) -> u64 {
        self.gen.count()
    }
}

/// The unary typing context `∆; Φₐ; Ω`.
#[derive(Debug, Clone)]
pub struct UnaryCtx {
    /// Universally quantified index variables with their sorts.
    pub delta: Vec<(IdxVar, Sort)>,
    /// Assumed constraints.
    pub assumptions: Constr,
    /// Program variables and their unary types (innermost last).
    pub vars: Vec<(Var, UnaryType)>,
    /// Which projection of a relational derivation this context belongs to
    /// (1 = left run, 2 = right run).  Used to interpret relational type
    /// annotations encountered during unary checking.
    pub side: u8,
}

impl Default for UnaryCtx {
    fn default() -> Self {
        UnaryCtx::new()
    }
}

impl UnaryCtx {
    /// The empty context (left projection by default).
    pub fn new() -> UnaryCtx {
        UnaryCtx {
            delta: Vec::new(),
            assumptions: Constr::Top,
            vars: Vec::new(),
            side: 1,
        }
    }

    /// Extends the context with a program variable.
    pub fn bind_var(&self, x: Var, ty: UnaryType) -> UnaryCtx {
        let mut ctx = self.clone();
        ctx.vars.push((x, ty));
        ctx
    }

    /// Extends the context with an index variable.
    pub fn bind_idx(&self, i: IdxVar, sort: Sort) -> UnaryCtx {
        let mut ctx = self.clone();
        ctx.delta.push((i, sort));
        ctx
    }

    /// Adds an assumption.
    pub fn assume(&self, c: Constr) -> UnaryCtx {
        let mut ctx = self.clone();
        ctx.assumptions = ctx.assumptions.and(c);
        ctx
    }

    /// Looks up a program variable (innermost binding wins).
    pub fn lookup(&self, x: &Var) -> Result<&UnaryType, TypeError> {
        self.vars
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
            .ok_or_else(|| TypeError::UnboundVariable(x.name().to_string()))
    }

    /// The universally quantified index variables, for the solver.
    pub fn universals(&self) -> Vec<(IdxVar, Sort)> {
        self.delta.clone()
    }
}

/// The relational typing context `∆; Φₐ; Γ`.
#[derive(Debug, Clone, Default)]
pub struct RelCtx {
    /// Universally quantified index variables with their sorts.
    pub delta: Vec<(IdxVar, Sort)>,
    /// Assumed constraints.
    pub assumptions: Constr,
    /// Program variables and their relational types (innermost last).
    pub vars: Vec<(Var, RelType)>,
}

impl RelCtx {
    /// The empty context.
    pub fn new() -> RelCtx {
        RelCtx {
            delta: Vec::new(),
            assumptions: Constr::Top,
            vars: Vec::new(),
        }
    }

    /// Extends the context with a program variable.
    pub fn bind_var(&self, x: Var, ty: RelType) -> RelCtx {
        let mut ctx = self.clone();
        ctx.vars.push((x, ty));
        ctx
    }

    /// Extends the context with an index variable.
    pub fn bind_idx(&self, i: IdxVar, sort: Sort) -> RelCtx {
        let mut ctx = self.clone();
        ctx.delta.push((i, sort));
        ctx
    }

    /// Adds an assumption.
    pub fn assume(&self, c: Constr) -> RelCtx {
        let mut ctx = self.clone();
        ctx.assumptions = ctx.assumptions.and(c);
        ctx
    }

    /// Looks up a program variable (innermost binding wins).
    pub fn lookup(&self, x: &Var) -> Result<&RelType, TypeError> {
        self.vars
            .iter()
            .rev()
            .find(|(y, _)| y == x)
            .map(|(_, t)| t)
            .ok_or_else(|| TypeError::UnboundVariable(x.name().to_string()))
    }

    /// The universally quantified index variables, for the solver.
    pub fn universals(&self) -> Vec<(IdxVar, Sort)> {
        self.delta.clone()
    }

    /// The unary projection `|Γ|ᵢ` of the context (paper §4): every binding's
    /// type is projected to its left (`side = 1`) or right (`side = 2`) unary
    /// type; `∆` and `Φₐ` are unchanged.
    pub fn project(&self, side: u8) -> UnaryCtx {
        UnaryCtx {
            delta: self.delta.clone(),
            assumptions: self.assumptions.clone(),
            vars: self
                .vars
                .iter()
                .map(|(x, t)| (x.clone(), t.project(side)))
                .collect(),
            side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_index::Idx;

    #[test]
    fn lookup_finds_innermost_binding() {
        let ctx = RelCtx::new()
            .bind_var(Var::new("x"), RelType::BoolR)
            .bind_var(Var::new("x"), RelType::IntR);
        assert_eq!(ctx.lookup(&Var::new("x")).unwrap(), &RelType::IntR);
        assert!(ctx.lookup(&Var::new("y")).is_err());
    }

    #[test]
    fn binding_is_persistent_not_destructive() {
        let base = RelCtx::new();
        let extended = base.bind_var(Var::new("x"), RelType::BoolR);
        assert!(base.lookup(&Var::new("x")).is_err());
        assert!(extended.lookup(&Var::new("x")).is_ok());
    }

    #[test]
    fn assumptions_accumulate() {
        let ctx = RelCtx::new()
            .assume(Constr::leq(Idx::var("a"), Idx::var("n")))
            .assume(Constr::eq(Idx::var("n"), Idx::nat(3)));
        assert_eq!(ctx.assumptions.atom_count(), 2);
    }

    #[test]
    fn projection_projects_every_binding() {
        let ctx = RelCtx::new()
            .bind_var(
                Var::new("l"),
                RelType::list(Idx::var("n"), Idx::var("a"), RelType::IntR),
            )
            .bind_idx(IdxVar::new("n"), Sort::Nat);
        let u = ctx.project(1);
        assert_eq!(u.vars.len(), 1);
        assert_eq!(u.vars[0].1, UnaryType::list(Idx::var("n"), UnaryType::Int));
        assert_eq!(u.delta.len(), 1);
    }

    #[test]
    fn fresh_vars_are_generated_with_sorted_hints() {
        let mut fv = FreshVars::new();
        let a = fv.cost("t");
        let b = fv.size("i");
        assert_ne!(a, b);
        assert!(a.is_generated());
        assert_eq!(fv.count(), 2);
    }
}
