//! Unary (single-execution) typing for the BiRelCost stack.
//!
//! RelRefU and RelCost embed a DML-style *unary* refinement type system: the
//! judgment `∆; Φₐ; Ω ⊢ᵗₖ e : A` types a single expression `e` at unary type
//! `A` with a lower bound `k` and an upper bound `t` on its evaluation cost
//! (§4–§5 of the paper).  The relational checker falls back to this system
//! through the `switch` rule whenever relational reasoning does not apply
//! (heuristic 5).
//!
//! This crate provides:
//!
//! * [`cost_model`] — the evaluation-cost constants shared by the type system
//!   and the cost-instrumented evaluator,
//! * [`ctx`] — typing contexts (index variables `∆`, assumptions `Φₐ`,
//!   unary and relational variable environments),
//! * [`error`] — the common type-error representation,
//! * [`subtype`] — algorithmic unary subtyping (constraint-generating),
//! * [`bidir`] — the bidirectional unary checker (`infer` / `check`), the
//!   unary half of BiRelCost.

pub mod bidir;
pub mod cost_model;
pub mod ctx;
pub mod error;
pub mod subtype;

pub use bidir::{UnaryChecker, UnaryInference};
pub use cost_model::CostModel;
pub use ctx::{FreshVars, RelCtx, UnaryCtx};
pub use error::TypeError;
