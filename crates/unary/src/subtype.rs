//! Algorithmic unary subtyping.
//!
//! Unary subtyping `∆; Φₐ ⊨ A₁ ⊑ A₂` is the standard DML-style relation:
//! structural, contravariant in argument positions, and constraint-dependent
//! for refinements (list lengths must be provably equal, `exec` intervals
//! must widen).  The algorithmic version generates the arithmetic side
//! conditions as a [`Constr`] instead of consulting the solver eagerly, in
//! line with the paper's design where all constraints are collected first and
//! solved at the end.

use rel_constraint::Constr;
use rel_index::Idx;
use rel_syntax::{pretty, UnaryType};

use crate::error::TypeError;

/// Computes the constraint under which `sub ⊑ sup` holds.
///
/// # Errors
///
/// Returns [`TypeError::NotASubtype`] when the two types are structurally
/// incompatible (no constraint could make the relation hold).
pub fn unary_subtype(sub: &UnaryType, sup: &UnaryType) -> Result<Constr, TypeError> {
    use UnaryType::*;
    match (sub, sup) {
        (Unit, Unit) | (Bool, Bool) | (Int, Int) => Ok(Constr::Top),
        (TVar(a), TVar(b)) if a == b => Ok(Constr::Top),
        (Arrow(a1, c1, b1), Arrow(a2, c2, b2)) => {
            // Contravariant domain, covariant codomain; the exec interval of
            // the supertype must contain the subtype's: k₂ ≤ k₁ and t₁ ≤ t₂.
            let dom = unary_subtype(a2, a1)?;
            let cod = unary_subtype(b1, b2)?;
            Ok(dom
                .and(cod)
                .and(Constr::leq(c2.lo.clone(), c1.lo.clone()))
                .and(Constr::leq(c1.hi.clone(), c2.hi.clone())))
        }
        (List(n1, a1), List(n2, a2)) => {
            let elem = unary_subtype(a1, a2)?;
            Ok(elem.and(Constr::eq(n1.clone(), n2.clone())))
        }
        (Prod(a1, b1), Prod(a2, b2)) => Ok(unary_subtype(a1, a2)?.and(unary_subtype(b1, b2)?)),
        (Forall(i1, s1, a1), Forall(i2, s2, a2)) if s1 == s2 => {
            // α-rename the right binder to the left one.
            let a2 = a2.subst_idx(i2, &Idx::Var(i1.clone()));
            unary_subtype(a1, &a2)
        }
        (Exists(i1, s1, a1), Exists(i2, s2, a2)) if s1 == s2 => {
            let a2 = a2.subst_idx(i2, &Idx::Var(i1.clone()));
            unary_subtype(a1, &a2)
        }
        (CAnd(c1, a1), CAnd(c2, a2)) => {
            let inner = unary_subtype(a1, a2)?;
            Ok(c1.clone().implies(c2.clone().and(inner)))
        }
        (CAnd(c1, a1), _) => {
            // The constraint is known to hold on the left, so it may be
            // assumed while establishing the rest.
            let inner = unary_subtype(a1, sup)?;
            Ok(c1.clone().implies(inner))
        }
        (_, CAnd(c2, a2)) => {
            let inner = unary_subtype(sub, a2)?;
            Ok(c2.clone().and(inner))
        }
        (CImpl(c1, a1), CImpl(c2, a2)) => {
            let inner = unary_subtype(a1, a2)?;
            Ok(c2.clone().implies(c1.clone().and(inner)))
        }
        (CImpl(c1, a1), _) => {
            // Using a conditional type requires discharging its condition.
            let inner = unary_subtype(a1, sup)?;
            Ok(c1.clone().and(inner))
        }
        (_, CImpl(c2, a2)) => {
            let inner = unary_subtype(sub, a2)?;
            Ok(c2.clone().implies(inner))
        }
        _ => Err(TypeError::NotASubtype {
            sub: pretty::unary_type(sub),
            sup: pretty::unary_type(sup),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_index::{IdxVar, Sort};
    use rel_syntax::CostBounds;

    #[test]
    fn base_types_are_reflexive() {
        for t in [UnaryType::Unit, UnaryType::Bool, UnaryType::Int] {
            assert_eq!(unary_subtype(&t, &t).unwrap(), Constr::Top);
        }
        assert!(unary_subtype(&UnaryType::Bool, &UnaryType::Int).is_err());
    }

    #[test]
    fn list_subtyping_requires_equal_lengths() {
        let a = UnaryType::list(Idx::var("n"), UnaryType::Int);
        let b = UnaryType::list(Idx::var("m"), UnaryType::Int);
        let c = unary_subtype(&a, &b).unwrap();
        assert_eq!(c, Constr::eq(Idx::var("n"), Idx::var("m")));
    }

    #[test]
    fn arrow_exec_intervals_widen() {
        let sub = UnaryType::arrow(
            UnaryType::Int,
            CostBounds::new(Idx::nat(2), Idx::nat(3)),
            UnaryType::Int,
        );
        let sup = UnaryType::arrow(
            UnaryType::Int,
            CostBounds::new(Idx::nat(1), Idx::nat(5)),
            UnaryType::Int,
        );
        let c = unary_subtype(&sub, &sup).unwrap();
        // 1 ≤ 2 and 3 ≤ 5: both constraints present.
        assert_eq!(c.atom_count(), 2);
        assert!(c.eval_bounded(&rel_index::IdxEnv::new(), 4));
        // The reverse direction produces an unsatisfiable constraint.
        let c = unary_subtype(&sup, &sub).unwrap();
        assert!(!c.eval_bounded(&rel_index::IdxEnv::new(), 4));
    }

    #[test]
    fn quantifiers_alpha_rename() {
        let a = UnaryType::forall(
            "i",
            Sort::Nat,
            UnaryType::list(Idx::var("i"), UnaryType::Int),
        );
        let b = UnaryType::forall(
            "j",
            Sort::Nat,
            UnaryType::list(Idx::var("j"), UnaryType::Int),
        );
        let c = unary_subtype(&a, &b).unwrap();
        assert_eq!(c, Constr::eq(Idx::var("i"), Idx::var("i")));
    }

    #[test]
    fn constraint_types_produce_implications() {
        let guarded = UnaryType::CAnd(
            Constr::leq(Idx::var("b"), Idx::var("a")),
            Box::new(UnaryType::Int),
        );
        // Forgetting a `C &` wrapper is unconditionally allowed (the inner
        // subtyping is trivial, so the implication simplifies to `tt`).
        let c = unary_subtype(&guarded, &UnaryType::Int).unwrap();
        assert!(c.is_top());
        // In the other direction the constraint itself must be established.
        let c = unary_subtype(&UnaryType::Int, &guarded).unwrap();
        assert_eq!(c, Constr::leq(Idx::var("b"), Idx::var("a")));
    }

    #[test]
    fn contravariance_of_arrow_domains() {
        // (list[n] int -> int)  ⊑  (list[m] int -> int) requires m = n
        // (the equation is generated with the supertype's index on the left).
        let sub = UnaryType::arrow(
            UnaryType::list(Idx::var("n"), UnaryType::Int),
            CostBounds::unbounded(),
            UnaryType::Int,
        );
        let sup = UnaryType::arrow(
            UnaryType::list(Idx::var("m"), UnaryType::Int),
            CostBounds::unbounded(),
            UnaryType::Int,
        );
        let c = unary_subtype(&sub, &sup).unwrap();
        assert!(c.mentions(&IdxVar::new("n")) && c.mentions(&IdxVar::new("m")));
    }
}
