//! The evaluation-cost model.
//!
//! RelCost's operational semantics charges cost at elimination forms
//! (function application, case analysis, conditionals, projections,
//! primitive operations) and treats introduction forms as free.  The exact
//! constants are a parameter of the system; what matters for the paper's
//! results is that the *type system and the operational semantics agree*, so
//! this module is the single source of truth consumed both by the unary
//! typing rules (`rel-unary`, `birelcost`) and by the cost-instrumented
//! evaluator (`rel-eval`).

use rel_index::Idx;

/// Evaluation cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a function application (β-reduction step).
    pub app: u64,
    /// Cost of a list case analysis.
    pub case_list: u64,
    /// Cost of a conditional.
    pub if_then_else: u64,
    /// Cost of a primitive operation.
    pub prim: u64,
    /// Cost of a `let` binding.
    pub let_bind: u64,
    /// Cost of a pair projection (`fst` / `snd`).
    pub proj: u64,
    /// Cost of eliminating a quantifier / existential / constraint wrapper
    /// (`e []`, `unpack`, `clet`, `celim`) — zero in RelCost, where these are
    /// erased at runtime.
    pub index_elim: u64,
}

impl CostModel {
    /// The cost model used throughout the reproduction: one unit per
    /// application, case, conditional, primitive, let and projection;
    /// index-level constructs are free.
    pub const fn standard() -> CostModel {
        CostModel {
            app: 1,
            case_list: 1,
            if_then_else: 1,
            prim: 1,
            let_bind: 1,
            proj: 1,
            index_elim: 0,
        }
    }

    /// A model in which every step is free — useful for testing the pure
    /// refinement fragment (RelRef) where costs are irrelevant.
    pub const fn free() -> CostModel {
        CostModel {
            app: 0,
            case_list: 0,
            if_then_else: 0,
            prim: 0,
            let_bind: 0,
            proj: 0,
            index_elim: 0,
        }
    }

    /// The application cost as an index term.
    pub fn app_idx(&self) -> Idx {
        Idx::nat(self.app)
    }

    /// The list-case cost as an index term.
    pub fn case_idx(&self) -> Idx {
        Idx::nat(self.case_list)
    }

    /// The conditional cost as an index term.
    pub fn if_idx(&self) -> Idx {
        Idx::nat(self.if_then_else)
    }

    /// The primitive-operation cost as an index term.
    pub fn prim_idx(&self) -> Idx {
        Idx::nat(self.prim)
    }

    /// The let-binding cost as an index term.
    pub fn let_idx(&self) -> Idx {
        Idx::nat(self.let_bind)
    }

    /// The projection cost as an index term.
    pub fn proj_idx(&self) -> Idx {
        Idx::nat(self.proj)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_model_charges_eliminations() {
        let m = CostModel::standard();
        assert_eq!(m.app, 1);
        assert_eq!(m.index_elim, 0);
        assert_eq!(m.app_idx(), Idx::nat(1));
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(
            m.app + m.case_list + m.if_then_else + m.prim + m.let_bind + m.proj,
            0
        );
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(CostModel::default(), CostModel::standard());
    }
}
