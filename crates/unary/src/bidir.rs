//! The bidirectional unary checker.
//!
//! This is the unary half of BiRelCost: the algorithmic version of the DML-
//! style judgment `∆; Φₐ; Ω ⊢ᵗₖ e : A`.  As in the paper, the *checking* mode
//! takes the type and both cost bounds as inputs, while the *inference* mode
//! outputs the type, the cost bounds, and a set `ψ` of freshly generated
//! existential index variables that the constraint pipeline must instantiate.
//!
//! The mode of the effect mirrors the mode of the type (one of the summary
//! observations of §5): checking checks both, inference infers both.

use rel_constraint::{Constr, Quantified};
use rel_index::{Idx, IdxVar, Sort};
use rel_syntax::{Expr, UnaryType};

use crate::cost_model::CostModel;
use crate::ctx::{FreshVars, UnaryCtx};
use crate::error::TypeError;
use crate::subtype::unary_subtype;

/// The result of unary type inference.
#[derive(Debug, Clone)]
pub struct UnaryInference {
    /// The inferred unary type.
    pub ty: UnaryType,
    /// Inferred lower bound on the evaluation cost.
    pub lo: Idx,
    /// Inferred upper bound on the evaluation cost.
    pub hi: Idx,
    /// Constraints that must hold for the inference to be valid.
    pub constr: Constr,
    /// Existential variables introduced by the rules (the set `ψ`).
    pub existentials: Vec<Quantified>,
}

impl UnaryInference {
    fn value(ty: UnaryType) -> UnaryInference {
        UnaryInference {
            ty,
            lo: Idx::zero(),
            hi: Idx::zero(),
            constr: Constr::Top,
            existentials: Vec::new(),
        }
    }
}

/// The bidirectional unary checker.
#[derive(Debug, Clone, Default)]
pub struct UnaryChecker {
    /// The cost model charged by elimination forms.
    pub cost_model: CostModel,
}

impl UnaryChecker {
    /// Creates a checker with the standard cost model.
    pub fn new() -> UnaryChecker {
        UnaryChecker::default()
    }

    /// Creates a checker with an explicit cost model.
    pub fn with_cost_model(cost_model: CostModel) -> UnaryChecker {
        UnaryChecker { cost_model }
    }

    // ------------------------------------------------------------------
    // Checking mode: ∆; ψ; Φₐ; Ω ⊢ e ↓ A, [k, t] ⇒ Φ
    // ------------------------------------------------------------------

    /// Checks `e` against type `ty` with cost bounds `[lo, hi]`, returning
    /// the constraint that must hold.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] when no typing rule applies structurally.
    pub fn check(
        &self,
        fresh: &mut FreshVars,
        ctx: &UnaryCtx,
        e: &Expr,
        ty: &UnaryType,
        lo: &Idx,
        hi: &Idx,
    ) -> Result<Constr, TypeError> {
        // Type-directed rules first: the type connectives that have no
        // corresponding term-level syntax (or whose syntax we auto-descend).
        match ty {
            UnaryType::Forall(i, s, body) => {
                let inner = match e {
                    Expr::ILam(b) => b.as_ref(),
                    _ => e,
                };
                let ctx = ctx.bind_idx(i.clone(), *s);
                // The body of an index abstraction is a value; its latent cost
                // is charged at instantiation sites.
                let c = self.check(fresh, &ctx, inner, body, &Idx::zero(), &Idx::zero())?;
                // Close the emitted constraint over the bound index variable so
                // callers can solve it in *their* context.
                return Ok(Constr::forall(i.clone(), *s, c)
                    .and(Constr::leq(lo.clone(), Idx::zero()))
                    .and(Constr::leq(Idx::zero(), hi.clone())));
            }
            UnaryType::Exists(i, s, body) => {
                if let Expr::Pack(inner) = e {
                    let witness = fresh.size("w");
                    let instantiated = body.subst_idx(i, &Idx::Var(witness.clone()));
                    let c = self.check(fresh, ctx, inner, &instantiated, lo, hi)?;
                    return Ok(Constr::exists(witness, *s, c));
                }
                // Fall through to ↑↓ below for non-pack expressions.
            }
            UnaryType::CAnd(cond, body) => {
                let c = self.check(fresh, ctx, e, body, lo, hi)?;
                return Ok(c.and(cond.clone()));
            }
            UnaryType::CImpl(cond, body) => {
                let ctx = ctx.assume(cond.clone());
                let c = self.check(fresh, &ctx, e, body, lo, hi)?;
                return Ok(cond.clone().implies(c));
            }
            _ => {}
        }

        match (e, ty) {
            (Expr::Lam(x, body), UnaryType::Arrow(a1, cost, a2)) => {
                let ctx = ctx.bind_var(x.clone(), (**a1).clone());
                let c = self.check(fresh, &ctx, body, a2, &cost.lo, &cost.hi)?;
                Ok(c.and(self.value_cost(lo, hi)))
            }
            (Expr::Fix(f, x, body), UnaryType::Arrow(a1, _, a2)) => {
                let ctx = ctx
                    .bind_var(f.clone(), ty.clone())
                    .bind_var(x.clone(), (**a1).clone());
                let cost = match ty {
                    UnaryType::Arrow(_, c, _) => c.clone(),
                    _ => unreachable!("matched an arrow above"),
                };
                let c = self.check(fresh, &ctx, body, a2, &cost.lo, &cost.hi)?;
                Ok(c.and(self.value_cost(lo, hi)))
            }
            (Expr::Nil, UnaryType::List(n, _)) => {
                Ok(Constr::eq(n.clone(), Idx::zero()).and(self.value_cost(lo, hi)))
            }
            (Expr::Cons(h, t), UnaryType::List(n, elem)) => {
                // The head gets an existential share of the upper budget; the
                // whole lower budget flows into the tail (sound, since costs
                // are non-negative).  This keeps the number of existentials
                // small while still letting lower bounds propagate through the
                // cons spine of recursive functions such as `merge`.
                let i = fresh.size("i");
                let th = fresh.cost("th");
                let ch = self.check(fresh, ctx, h, elem, &Idx::zero(), &Idx::Var(th.clone()))?;
                let tail_ty = UnaryType::List(Idx::Var(i.clone()), elem.clone());
                let ct = self.check(
                    fresh,
                    ctx,
                    t,
                    &tail_ty,
                    lo,
                    &(hi.clone() - Idx::Var(th.clone())),
                )?;
                let total = ch
                    .and(ct)
                    .and(Constr::eq(n.clone(), Idx::Var(i.clone()) + Idx::one()))
                    .and(Constr::leq(Idx::zero(), Idx::Var(th.clone())));
                Ok(wrap_existentials(total, [(i, Sort::Nat), (th, Sort::Real)]))
            }
            (Expr::Pair(a, b), UnaryType::Prod(ta, tb)) => {
                // Symmetrically to cons: the second component gets an
                // existential share of the upper budget, the lower budget
                // flows into the first component.
                let tbb = fresh.cost("tq");
                let ca =
                    self.check(fresh, ctx, a, ta, lo, &(hi.clone() - Idx::Var(tbb.clone())))?;
                let cb = self.check(fresh, ctx, b, tb, &Idx::zero(), &Idx::Var(tbb.clone()))?;
                let total = ca
                    .and(cb)
                    .and(Constr::leq(Idx::zero(), Idx::Var(tbb.clone())));
                Ok(wrap_existentials(total, [(tbb, Sort::Real)]))
            }
            (Expr::If(cond, then_branch, else_branch), _) => {
                let c = self.infer(fresh, ctx, cond)?;
                let step = self.cost_model.if_idx();
                let blo = lo.clone() - c.lo.clone() - step.clone();
                let bhi = hi.clone() - c.hi.clone() - step;
                let ct = self.check(fresh, ctx, then_branch, ty, &blo, &bhi)?;
                let ce = self.check(fresh, ctx, else_branch, ty, &blo, &bhi)?;
                Ok(wrap_existentials(
                    c.constr.and(ct).and(ce),
                    c.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (
                Expr::CaseList {
                    scrut,
                    nil_branch,
                    head,
                    tail,
                    cons_branch,
                },
                _,
            ) => {
                let s = self.infer(fresh, ctx, scrut)?;
                let (n, elem) = match strip_quantifier_free(&s.ty) {
                    UnaryType::List(n, elem) => (n.clone(), elem.clone()),
                    other => {
                        return Err(TypeError::shape(
                            "a list type for the case scrutinee",
                            rel_syntax::pretty::unary_type(&other),
                        ))
                    }
                };
                let step = self.cost_model.case_idx();
                let blo = lo.clone() - s.lo.clone() - step.clone();
                let bhi = hi.clone() - s.hi.clone() - step;
                // nil branch under n = 0.
                let nil_ctx = ctx.assume(Constr::eq(n.clone(), Idx::zero()));
                let cnil = self.check(fresh, &nil_ctx, nil_branch, ty, &blo, &bhi)?;
                // cons branch under n = i + 1 for a fresh universal i.
                let i = fresh.size("cu");
                let guard = Constr::eq(n.clone(), Idx::Var(i.clone()) + Idx::one());
                let cons_ctx = ctx
                    .bind_idx(i.clone(), Sort::Nat)
                    .assume(guard.clone())
                    .bind_var(head.clone(), (*elem).clone())
                    .bind_var(
                        tail.clone(),
                        UnaryType::List(Idx::Var(i.clone()), elem.clone()),
                    );
                let ccons = self.check(fresh, &cons_ctx, cons_branch, ty, &blo, &bhi)?;
                let branches = Constr::eq(n.clone(), Idx::zero())
                    .implies(cnil)
                    .and(Constr::forall(i, Sort::Nat, guard.implies(ccons)));
                Ok(wrap_existentials(
                    s.constr.and(branches),
                    s.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::Let(x, bound, body), _) => {
                let b = self.infer(fresh, ctx, bound)?;
                let step = self.cost_model.let_idx();
                let blo = lo.clone() - b.lo.clone() - step.clone();
                let bhi = hi.clone() - b.hi.clone() - step;
                let ctx = ctx.bind_var(x.clone(), b.ty.clone());
                let c = self.check(fresh, &ctx, body, ty, &blo, &bhi)?;
                Ok(wrap_existentials(
                    b.constr.and(c),
                    b.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::Unpack(packed, x, body), _) => {
                let p = self.infer(fresh, ctx, packed)?;
                let (i, s, inner) = match strip_quantifier_free(&p.ty) {
                    UnaryType::Exists(i, s, inner) => (i, s, inner),
                    other => {
                        return Err(TypeError::shape(
                            "an existential type for unpack",
                            rel_syntax::pretty::unary_type(&other),
                        ))
                    }
                };
                let skolem = fresh.size("sk");
                let inner = inner.subst_idx(&i, &Idx::Var(skolem.clone()));
                let ctx = ctx.bind_idx(skolem.clone(), s).bind_var(x.clone(), inner);
                let blo = lo.clone() - p.lo.clone();
                let bhi = hi.clone() - p.hi.clone();
                let c = self.check(fresh, &ctx, body, ty, &blo, &bhi)?;
                Ok(wrap_existentials(
                    p.constr.and(Constr::forall(skolem, s, c)),
                    p.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            (Expr::CLet(guarded, x, body), _) => {
                let g = self.infer(fresh, ctx, guarded)?;
                let (cond, inner) = match strip_quantifier_free(&g.ty) {
                    UnaryType::CAnd(c, inner) => (c, inner),
                    other => {
                        return Err(TypeError::shape(
                            "a constrained type (C & A) for clet",
                            rel_syntax::pretty::unary_type(&other),
                        ))
                    }
                };
                let ctx = ctx
                    .assume(cond.clone())
                    .bind_var(x.clone(), (*inner).clone());
                let blo = lo.clone() - g.lo.clone();
                let bhi = hi.clone() - g.hi.clone();
                let c = self.check(fresh, &ctx, body, ty, &blo, &bhi)?;
                Ok(wrap_existentials(
                    g.constr.and(cond.implies(c)),
                    g.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
            // Fallback: switch to inference mode and use subtyping (alg-↑↓).
            _ => {
                let inf = self.infer(fresh, ctx, e)?;
                let sub = unary_subtype(&inf.ty, ty)?;
                let total = inf
                    .constr
                    .and(sub)
                    .and(Constr::leq(lo.clone(), inf.lo.clone()))
                    .and(Constr::leq(inf.hi.clone(), hi.clone()));
                Ok(wrap_existentials(
                    total,
                    inf.existentials.into_iter().map(|q| (q.var, q.sort)),
                ))
            }
        }
    }

    // ------------------------------------------------------------------
    // Inference mode: ∆; ψ; Φₐ; Ω ⊢ e ↑ A ⇒ [ψ], k, t, Φ
    // ------------------------------------------------------------------

    /// Infers a type and cost bounds for `e`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for introduction forms without annotations and
    /// for structurally ill-formed eliminations.
    pub fn infer(
        &self,
        fresh: &mut FreshVars,
        ctx: &UnaryCtx,
        e: &Expr,
    ) -> Result<UnaryInference, TypeError> {
        match e {
            Expr::Var(x) => Ok(UnaryInference::value(ctx.lookup(x)?.clone())),
            Expr::Unit => Ok(UnaryInference::value(UnaryType::Unit)),
            Expr::Bool(_) => Ok(UnaryInference::value(UnaryType::Bool)),
            Expr::Int(_) => Ok(UnaryInference::value(UnaryType::Int)),
            Expr::Nil => Ok(UnaryInference::value(UnaryType::List(
                Idx::zero(),
                Box::new(UnaryType::Int),
            ))),
            Expr::Prim(op, args) => {
                let mut constr = Constr::Top;
                let mut existentials = Vec::new();
                let mut lo = self.cost_model.prim_idx();
                let mut hi = self.cost_model.prim_idx();
                for a in args {
                    let ia = self.infer(fresh, ctx, a)?;
                    constr = constr.and(ia.constr);
                    existentials.extend(ia.existentials);
                    lo = lo + ia.lo;
                    hi = hi + ia.hi;
                }
                let ty = if op.returns_bool() {
                    UnaryType::Bool
                } else {
                    UnaryType::Int
                };
                Ok(UnaryInference {
                    ty,
                    lo,
                    hi,
                    constr,
                    existentials,
                })
            }
            Expr::App(f, a) => {
                let fi = self.infer(fresh, ctx, f)?;
                let (a1, cost, a2) = match strip_quantifier_free(&fi.ty) {
                    UnaryType::Arrow(a1, cost, a2) => (a1, cost, a2),
                    other => {
                        return Err(TypeError::shape(
                            "a function type",
                            rel_syntax::pretty::unary_type(&other),
                        ))
                    }
                };
                let (ka, ta) = (fresh.cost("ka"), fresh.cost("ta"));
                let ca = self.check(
                    fresh,
                    ctx,
                    a,
                    &a1,
                    &Idx::Var(ka.clone()),
                    &Idx::Var(ta.clone()),
                )?;
                let step = self.cost_model.app_idx();
                let mut existentials = fi.existentials;
                existentials.push(Quantified::new(ka.clone(), Sort::Real));
                existentials.push(Quantified::new(ta.clone(), Sort::Real));
                Ok(UnaryInference {
                    ty: (*a2).clone(),
                    lo: fi.lo + Idx::Var(ka) + cost.lo.clone() + step.clone(),
                    hi: fi.hi + Idx::Var(ta) + cost.hi.clone() + step,
                    constr: fi.constr.and(ca),
                    existentials,
                })
            }
            Expr::IApp(inner) => {
                let ii = self.infer(fresh, ctx, inner)?;
                match strip_quantifier_free(&ii.ty) {
                    UnaryType::Forall(i, s, body) => {
                        let witness = fresh.size("inst");
                        let ty = body.subst_idx(&i, &Idx::Var(witness.clone()));
                        let mut existentials = ii.existentials;
                        existentials.push(Quantified::new(witness, s));
                        Ok(UnaryInference {
                            ty,
                            lo: ii.lo,
                            hi: ii.hi,
                            constr: ii.constr,
                            existentials,
                        })
                    }
                    other => Err(TypeError::shape(
                        "a universally quantified type",
                        rel_syntax::pretty::unary_type(&other),
                    )),
                }
            }
            Expr::Fst(inner) | Expr::Snd(inner) => {
                let ii = self.infer(fresh, ctx, inner)?;
                let (a, b) = match strip_quantifier_free(&ii.ty) {
                    UnaryType::Prod(a, b) => (a, b),
                    other => {
                        return Err(TypeError::shape(
                            "a product type",
                            rel_syntax::pretty::unary_type(&other),
                        ))
                    }
                };
                let ty = if matches!(e, Expr::Fst(_)) { *a } else { *b };
                let step = self.cost_model.proj_idx();
                Ok(UnaryInference {
                    ty,
                    lo: ii.lo + step.clone(),
                    hi: ii.hi + step,
                    constr: ii.constr,
                    existentials: ii.existentials,
                })
            }
            Expr::CElim(inner) => {
                let ii = self.infer(fresh, ctx, inner)?;
                match strip_quantifier_free(&ii.ty) {
                    UnaryType::CImpl(cond, body) => Ok(UnaryInference {
                        ty: *body,
                        lo: ii.lo,
                        hi: ii.hi,
                        constr: ii.constr.and(cond),
                        existentials: ii.existentials,
                    }),
                    other => Err(TypeError::shape(
                        "a conditional type (C => A) for celim",
                        rel_syntax::pretty::unary_type(&other),
                    )),
                }
            }
            Expr::Let(x, bound, body) => {
                let b = self.infer(fresh, ctx, bound)?;
                let ctx2 = ctx.bind_var(x.clone(), b.ty.clone());
                let i = self.infer(fresh, &ctx2, body)?;
                let step = self.cost_model.let_idx();
                let mut existentials = b.existentials;
                existentials.extend(i.existentials);
                Ok(UnaryInference {
                    ty: i.ty,
                    lo: b.lo + i.lo + step.clone(),
                    hi: b.hi + i.hi + step,
                    constr: b.constr.and(i.constr),
                    existentials,
                })
            }
            Expr::Anno(inner, rel_ty, _) => {
                let ty = rel_ty.project(ctx.side);
                let (k, t) = (fresh.cost("ak"), fresh.cost("at"));
                let c = self.check(
                    fresh,
                    ctx,
                    inner,
                    &ty,
                    &Idx::Var(k.clone()),
                    &Idx::Var(t.clone()),
                )?;
                Ok(UnaryInference {
                    ty,
                    lo: Idx::Var(k.clone()),
                    hi: Idx::Var(t.clone()),
                    constr: c,
                    existentials: vec![
                        Quantified::new(k, Sort::Real),
                        Quantified::new(t, Sort::Real),
                    ],
                })
            }
            Expr::Lam(_, _) | Expr::Fix(_, _, _) | Expr::ILam(_) | Expr::Pack(_) => Err(
                TypeError::CannotInfer(format!("the {} introduction form", e.head_constructor())),
            ),
            other => Err(TypeError::CannotInfer(format!(
                "a `{}` expression in unary inference mode",
                other.head_constructor()
            ))),
        }
    }

    /// The cost constraint of a value: `lo ≤ 0 ∧ 0 ≤ hi`.
    fn value_cost(&self, lo: &Idx, hi: &Idx) -> Constr {
        Constr::leq(lo.clone(), Idx::zero()).and(Constr::leq(Idx::zero(), hi.clone()))
    }
}

/// Strips `CAnd`/`CImpl` wrappers that merely decorate an inferred type when
/// looking for a structural head (the constraints are re-imposed by the
/// callers where needed).
fn strip_quantifier_free(ty: &UnaryType) -> UnaryType {
    match ty {
        UnaryType::CAnd(_, inner) => strip_quantifier_free(inner),
        other => other.clone(),
    }
}

/// Wraps a constraint in existential quantifiers for the given variables.
pub(crate) fn wrap_existentials(
    c: Constr,
    vars: impl IntoIterator<Item = (IdxVar, Sort)>,
) -> Constr {
    let mut out = c;
    for (v, s) in vars {
        out = Constr::exists(v, s, out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rel_constraint::Solver;
    use rel_syntax::{parse_expr, CostBounds};

    fn solve(ctx: &UnaryCtx, c: &Constr) -> bool {
        let mut s = Solver::new();
        s.entails(&ctx.universals(), &ctx.assumptions, c).is_valid()
    }

    fn check_ok(src: &str, ty: UnaryType, lo: u64, hi: u64) -> bool {
        let e = parse_expr(src).unwrap();
        let checker = UnaryChecker::new();
        let mut fresh = FreshVars::new();
        let ctx = UnaryCtx::new();
        match checker.check(&mut fresh, &ctx, &e, &ty, &Idx::nat(lo), &Idx::nat(hi)) {
            Ok(c) => solve(&ctx, &c),
            Err(_) => false,
        }
    }

    #[test]
    fn literals_are_values() {
        assert!(check_ok("3", UnaryType::Int, 0, 0));
        assert!(check_ok("true", UnaryType::Bool, 0, 0));
        assert!(check_ok("()", UnaryType::Unit, 0, 5));
        // A literal cannot have a positive lower bound.
        assert!(!check_ok("3", UnaryType::Int, 1, 5));
    }

    #[test]
    fn primitive_operations_cost_one_each() {
        // 1 + 2 costs exactly one primitive step.
        assert!(check_ok("1 + 2", UnaryType::Int, 1, 1));
        assert!(!check_ok("1 + 2", UnaryType::Int, 2, 2));
        // Nested: (1 + 2) + 3 costs two.
        assert!(check_ok("(1 + 2) + 3", UnaryType::Int, 2, 2));
    }

    #[test]
    fn lambdas_check_against_arrow_types_with_exec_bounds() {
        // λx. x + 1 : int →[1,1] int
        let ty = UnaryType::arrow(
            UnaryType::Int,
            CostBounds::new(Idx::one(), Idx::one()),
            UnaryType::Int,
        );
        assert!(check_ok("lam x. x + 1", ty.clone(), 0, 0));
        // With too-tight bounds the constraint fails.
        let bad = UnaryType::arrow(
            UnaryType::Int,
            CostBounds::new(Idx::zero(), Idx::zero()),
            UnaryType::Int,
        );
        assert!(!check_ok("lam x. x + 1", bad, 0, 0));
    }

    #[test]
    fn application_charges_the_arrow_cost() {
        // (λx. x + 1) 2 : one app + one prim = 2.
        let src = "(lam x. x + 1 : UU (int ->[1, 1] int)) 2";
        assert!(check_ok(src, UnaryType::Int, 2, 2));
        assert!(!check_ok(src, UnaryType::Int, 3, 3));
    }

    #[test]
    fn lists_track_their_length() {
        let ty = UnaryType::list(Idx::nat(2), UnaryType::Int);
        assert!(check_ok("cons(1, cons(2, nil))", ty.clone(), 0, 0));
        let wrong = UnaryType::list(Idx::nat(3), UnaryType::Int);
        assert!(!check_ok("cons(1, cons(2, nil))", wrong, 0, 0));
    }

    #[test]
    fn case_analysis_is_exhaustive_over_lengths() {
        // λl. case l of nil → 0 | h :: tl → h   at   list[n] int →[?] int
        // costs exactly one case step.
        let n = Idx::var("n");
        let ty = UnaryType::forall(
            "n",
            Sort::Nat,
            UnaryType::arrow(
                UnaryType::list(n, UnaryType::Int),
                CostBounds::new(Idx::one(), Idx::one()),
                UnaryType::Int,
            ),
        );
        assert!(check_ok(
            "Lam. lam l. case l of nil -> 0 | h :: tl -> h",
            ty,
            0,
            0
        ));
    }

    #[test]
    fn fixpoints_check_recursive_list_functions() {
        // length : ∀n. list[n] int →[n+1 steps?] int  — each element costs one
        // case + one app + one prim; bound it loosely by 3n + 1.
        let n = Idx::var("n");
        let ty = UnaryType::forall(
            "n",
            Sort::Nat,
            UnaryType::arrow(
                UnaryType::list(n.clone(), UnaryType::Int),
                CostBounds::new(Idx::zero(), Idx::nat(3) * n + Idx::one()),
                UnaryType::Int,
            ),
        );
        let src = "Lam. fix len(l). case l of nil -> 0 | h :: tl -> 1 + len tl";
        // The recursive call instantiates the Forall implicitly?  No: `len`
        // is bound at the arrow type inside the Forall, so the recursion is
        // monomorphic in n — this is exactly how the paper's examples are
        // structured (the quantifier is outside the fix).
        // However the tail has length i with n = i + 1, so checking the
        // recursive call against list[?] relies on the arrow's domain index n,
        // which no longer matches.  The example therefore quantifies inside:
        // we instead write the standard DML-style `fix len(l)` under `Lam`,
        // where the recursive occurrence is used at the same n — the body
        // then only checks because the domain of `len` mentions n, and the
        // tail call is at length n - 1, which fails.  This test documents the
        // expected failure of the monomorphic variant…
        assert!(!check_ok(src, ty.clone(), 0, 0));
        // …and the success of the polymorphic-recursion variant, where the
        // Forall is inside the fix argument annotation (as in the benchmark
        // suite's real programs, which take unit and return a ∀-type).
        let poly_ty = UnaryType::arrow(
            UnaryType::Unit,
            CostBounds::new(Idx::zero(), Idx::zero()),
            UnaryType::forall(
                "n",
                Sort::Nat,
                UnaryType::arrow(
                    UnaryType::list(Idx::var("n"), UnaryType::Int),
                    CostBounds::new(Idx::zero(), Idx::nat(4) * Idx::var("n") + Idx::one()),
                    UnaryType::Int,
                ),
            ),
        );
        let poly_src = "fix len(u). Lam. lam l. case l of nil -> 0 | h :: tl -> 1 + len () [] tl";
        assert!(check_ok(poly_src, poly_ty, 0, 0));
    }

    #[test]
    fn annotations_enable_inference_of_redexes() {
        let e = parse_expr("(lam x. x : UU (bool ->[0, 0] bool)) true").unwrap();
        let checker = UnaryChecker::new();
        let mut fresh = FreshVars::new();
        let ctx = UnaryCtx::new();
        let inf = checker.infer(&mut fresh, &ctx, &e).unwrap();
        assert_eq!(inf.ty, UnaryType::Bool);
        assert!(!inf.existentials.is_empty());
    }

    #[test]
    fn unbound_variables_are_reported() {
        let e = parse_expr("mystery").unwrap();
        let checker = UnaryChecker::new();
        let mut fresh = FreshVars::new();
        let err = checker.infer(&mut fresh, &UnaryCtx::new(), &e).unwrap_err();
        assert!(matches!(err, TypeError::UnboundVariable(_)));
    }

    #[test]
    fn lambdas_cannot_be_inferred_without_annotations() {
        let e = parse_expr("lam x. x").unwrap();
        let checker = UnaryChecker::new();
        let mut fresh = FreshVars::new();
        let err = checker.infer(&mut fresh, &UnaryCtx::new(), &e).unwrap_err();
        assert!(matches!(err, TypeError::CannotInfer(_)));
    }
}
