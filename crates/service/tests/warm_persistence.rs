//! Warm-start persistence end to end at the service layer: snapshot save and
//! restore across *service instances* (standing in for processes), the
//! incremental skip path, and the daemon's `{"cache": ...}` commands.

use std::path::PathBuf;

use rel_service::{json::Value, respond, Service, ServiceConfig};

const SRC: &str = r#"
    def not2 : boolr -> boolr = lam b. if b then false else true;
    def use : boolr -> boolr = lam b. not2 (not2 b);
"#;

/// The same two definitions under fresh names: unchanged-def skipping does
/// not apply (new input hashes), but every entailment query is identical —
/// the shape of an edited file re-using a persisted validity cache.
const SRC_RENAMED: &str = r#"
    def negate : boolr -> boolr = lam b. if b then false else true;
    def twice : boolr -> boolr = lam b. negate (negate b);
"#;

fn service() -> Service {
    Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    })
}

fn temp_cache_file(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("birelcost-warm-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("cache.birelcost")
}

#[test]
fn second_service_instance_starts_warm_from_the_snapshot() {
    let path = temp_cache_file("restart");
    let _ = std::fs::remove_file(&path);

    // First "process": cold check, then save.
    let first = service();
    let outcome = first.attach_cache_file(&path);
    assert_eq!(outcome.warning, None);
    assert_eq!(outcome.verdicts, 0, "no snapshot yet");
    let cold = first.check_source(SRC).unwrap();
    assert!(cold.all_ok());
    assert_eq!(cold.skipped_unchanged(), 0);
    assert!(cold.cache_misses() > 0);
    first.save_cache().unwrap();
    assert!(path.exists());

    // Second "process": loads the snapshot and skips every unchanged def —
    // zero solver work of any kind.
    let second = service();
    let outcome = second.attach_cache_file(&path);
    assert_eq!(outcome.warning, None);
    assert!(outcome.verdicts > 0, "snapshot must carry verdicts");
    assert_eq!(outcome.defs, 2, "snapshot must carry both def hashes");
    let warm = second.check_source(SRC).unwrap();
    assert!(warm.all_ok());
    assert_eq!(warm.skipped_unchanged(), 2);
    assert_eq!(warm.points_evaluated(), 0);
    assert_eq!(warm.cache_misses(), 0);
    assert_eq!(warm.programs_compiled(), 0);

    // Third "process", checking a *renamed* copy: defs re-check (new
    // hashes) but the persisted validity cache answers their queries.
    let third = service();
    third.attach_cache_file(&path);
    let renamed = third.check_source(SRC_RENAMED).unwrap();
    assert!(renamed.all_ok());
    assert_eq!(renamed.skipped_unchanged(), 0);
    assert!(
        renamed.cache_hits() > 0,
        "identical queries from renamed defs must hit the persisted cache"
    );
    assert_eq!(
        renamed.cache_misses(),
        0,
        "every entailment of the renamed copy was persisted"
    );
}

#[test]
fn corrupt_snapshots_degrade_to_a_cold_start_with_a_warning() {
    let path = temp_cache_file("corrupt");
    std::fs::write(&path, b"definitely not a snapshot").unwrap();

    let service = service();
    let outcome = service.attach_cache_file(&path);
    let warning = outcome.warning.expect("corrupt file must warn");
    assert!(warning.contains("ignoring cache file"), "got: {warning}");

    // The service still works (cold), and the next save replaces the bad
    // file with a loadable one.
    assert!(service.check_source(SRC).unwrap().all_ok());
    service.save_cache().unwrap();
    let recovered = Service::default().attach_cache_file(&path);
    assert_eq!(recovered.warning, None);
    assert!(recovered.verdicts > 0);
}

#[test]
fn dirty_checked_flush_skips_when_nothing_changed() {
    let path = temp_cache_file("dirty");
    let _ = std::fs::remove_file(&path);
    let service = service();

    // No cache file configured: an error, like save_cache.
    assert!(service.save_cache_if_dirty().is_err());

    service.attach_cache_file(&path);
    service.check_source(SRC).unwrap();
    assert_eq!(service.save_cache_if_dirty(), Ok(true), "first flush saves");
    assert_eq!(
        service.save_cache_if_dirty(),
        Ok(false),
        "idle flush is skipped"
    );
    assert_eq!(service.persist_stats().saves, 1);

    // New work re-dirties the state.
    service.check_source(SRC_RENAMED).unwrap();
    assert_eq!(service.save_cache_if_dirty(), Ok(true));
    assert_eq!(service.persist_stats().saves, 2);

    // An explicit save always writes, and resets the dirty stamp.
    service.save_cache().unwrap();
    assert_eq!(service.persist_stats().saves, 3);
    assert_eq!(service.save_cache_if_dirty(), Ok(false));
}

#[test]
fn daemon_cache_commands_stats_flush_clear() {
    let path = temp_cache_file("daemon");
    let _ = std::fs::remove_file(&path);
    let service = service();
    service.attach_cache_file(&path);

    let check = respond(&service, &format!("{}", check_request(SRC)));
    assert_eq!(check.get("ok"), Some(&Value::Bool(true)));

    // stats: full counters, including the def index and the configured file.
    let stats = respond(&service, r#"{"cache": "stats"}"#);
    let cache = stats.get("cache").expect("cache object");
    assert_eq!(cache.get("def_entries").and_then(Value::as_int), Some(2));
    assert_eq!(cache.get("saves").and_then(Value::as_int), Some(0));
    assert!(cache.get("entries").and_then(Value::as_int).unwrap() > 0);
    assert!(cache.get("file").and_then(Value::as_str).is_some());

    // flush: writes the snapshot and reports it.
    let flush = respond(&service, r#"{"cache": "flush"}"#);
    assert_eq!(flush.get("flushed"), Some(&Value::Bool(true)));
    assert!(flush.get("verdicts").and_then(Value::as_int).unwrap() > 0);
    assert!(path.exists());
    let stats = respond(&service, r#"{"cache": "stats"}"#);
    assert_eq!(
        stats
            .get("cache")
            .unwrap()
            .get("saves")
            .and_then(Value::as_int),
        Some(1)
    );

    // clear: every memoized layer drops to empty.
    let clear = respond(&service, r#"{"cache": "clear"}"#);
    assert_eq!(clear.get("cleared"), Some(&Value::Bool(true)));
    let cache = clear.get("cache").unwrap();
    assert_eq!(cache.get("entries").and_then(Value::as_int), Some(0));
    assert_eq!(cache.get("def_entries").and_then(Value::as_int), Some(0));
    assert_eq!(
        cache.get("program_entries").and_then(Value::as_int),
        Some(0)
    );

    // An unknown cache command is an error response, not a dead daemon.
    let bad = respond(&service, r#"{"cache": "explode"}"#);
    assert!(bad
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("explode"));

    // A daemon without a cache file reports flush as an error.
    let no_file = Service::default();
    let flush = respond(&no_file, r#"{"cache": "flush"}"#);
    assert!(flush
        .get("error")
        .and_then(Value::as_str)
        .unwrap()
        .contains("no cache file"));
}

/// Builds a `{"check": SRC}` request line with proper JSON escaping.
fn check_request(source: &str) -> Value {
    Value::Obj(vec![("check".to_string(), Value::Str(source.to_string()))])
}
