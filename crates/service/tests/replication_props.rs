//! Property tests for replication convergence, thread-free and fully
//! deterministic.
//!
//! Instead of live sessions, each case builds 2–4 services with attached
//! WAL files, harvests the frames each service's own WAL accumulates
//! (exactly the bytes an outbound session would ship), and delivers them
//! along a random strongly connected topology through the daemon's
//! `{"replica": ...}` wire objects — with checks interleaved into the
//! delivery rounds and scripted drop/duplicate/reorder/partition faults on
//! every link.  The property: once the links go quiet, every node holds
//! exactly the union of every checked program's verdicts, with zero
//! rejected frames.
//!
//! The generator is the workspace `proptest` shim's splitmix64 stream; the
//! full `proptest!` macro's 256 cases are too many for fleet cases, so the
//! suite drives [`TestRng`] directly over a fixed case count.

use std::path::PathBuf;

use proptest::TestRng;
use rel_persist::{validate_frame, wal_path};
use rel_service::json::Value;
use rel_service::{respond, Service, ServiceConfig};

/// Random fleet cases per property.
const CASES: usize = 12;

/// WAL file header bytes ahead of the first frame (magic + version +
/// fingerprint).
const WAL_FILE_HEADER: usize = 16;

/// Delivery-round ceiling; a case that cannot quiesce within this is a
/// convergence bug, not slowness (everything is in-process).
const MAX_ROUNDS: usize = 60;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct SimNode {
    service: Service,
    wal: PathBuf,
    token: String,
}

fn fresh_node(case: usize, index: usize) -> SimNode {
    let dir = std::env::temp_dir().join(format!(
        "birelcost-repl-props-{}-{case}-{index}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.birelcost");
    let service = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });
    let outcome = service.attach_cache_file(&path);
    assert_eq!(outcome.warning, None);
    SimNode {
        service,
        wal: wal_path(&path),
        token: format!("n{index}"),
    }
}

/// Reads every validated frame out of a node's WAL file — the same bytes
/// an outbound session ships, in append order.
fn harvest(node: &SimNode, fp: u64) -> Vec<Vec<u8>> {
    let Ok(bytes) = std::fs::read(&node.wal) else {
        return Vec::new();
    };
    let mut frames = Vec::new();
    let mut off = WAL_FILE_HEADER;
    while off < bytes.len() {
        match validate_frame(&bytes[off..], fp) {
            Ok((_, used)) => {
                frames.push(bytes[off..off + used].to_vec());
                off += used;
            }
            Err(_) => break,
        }
    }
    frames
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// `from` says hello to `to`: returns `to`'s contiguous applied position
/// for that source.
fn hello(to: &SimNode, from_token: &str, fp: u64) -> u64 {
    let response = respond(
        &to.service,
        &format!(
            "{{\"replica\":\"hello\",\"v\":1,\"node\":\"{from_token}\",\"fp\":\"{fp:016x}\"}}"
        ),
    );
    assert_eq!(
        response.get("replica").and_then(Value::as_str),
        Some("state"),
        "{response}"
    );
    response
        .get("applied")
        .and_then(Value::as_int)
        .expect("applied position") as u64
}

/// Delivers one frame; the response must be an ack (same engine, valid
/// bytes — a reject here would be fabricated-verdict paranoia tripping on
/// honest traffic).
fn ship(to: &SimNode, from_token: &str, seq: u64, frame: &[u8]) {
    let response = respond(
        &to.service,
        &format!(
            "{{\"replica\":\"frame\",\"node\":\"{from_token}\",\"seq\":{seq},\"data\":\"{}\"}}",
            to_hex(frame)
        ),
    );
    assert_eq!(
        response.get("replica").and_then(Value::as_str),
        Some("ack"),
        "{response}"
    );
}

/// A program whose entailment queries are distinct per `depth`.
fn source(tag: &str, depth: usize) -> String {
    let mut body = String::from("b");
    for _ in 0..depth {
        body = format!("neg_{tag} ({body})");
    }
    format!(
        "def neg_{tag} : boolr -> boolr = lam b. if b then false else true;\n\
         def use_{tag} : boolr -> boolr = lam b. {body};"
    )
}

fn inbound_counter(service: &Service, key: &str) -> i64 {
    respond(service, "{\"replica\":\"status\"}")
        .get("replica")
        .and_then(|r| r.get("inbound"))
        .and_then(|i| i.get(key))
        .and_then(Value::as_int)
        .expect("inbound counter")
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

#[test]
fn random_fleets_converge_to_the_union_of_checked_programs() {
    for case in 0..CASES {
        let mut rng = TestRng::from_label(&format!("replication-props-{case}"));
        let n = 2 + (rng.next_u64() % 3) as usize;
        let nodes: Vec<SimNode> = (0..n).map(|i| fresh_node(case, i)).collect();
        let fp = nodes[0].service.engine().fingerprint();
        assert!(nodes.iter().all(|x| x.service.engine().fingerprint() == fp));

        // Topology: a directed ring (strong connectivity, so the union can
        // reach everyone) plus random extra edges.
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..n {
            for j in 0..n {
                if i != j && !edges.contains(&(i, j)) && rng.next_u64().is_multiple_of(3) {
                    edges.push((i, j));
                }
            }
        }

        // Work: five distinct programs; each checked by a random non-empty
        // subset of nodes, in shuffled order, interleaved with delivery.
        let sources: Vec<String> = (1..=5).map(|d| source("p", d)).collect();
        let mut work: Vec<(usize, usize)> = Vec::new();
        for s in 0..sources.len() {
            let owner = (rng.next_u64() % n as u64) as usize;
            for i in 0..n {
                if i == owner || rng.next_u64().is_multiple_of(3) {
                    work.push((i, s));
                }
            }
        }
        for k in (1..work.len()).rev() {
            work.swap(k, (rng.next_u64() % (k as u64 + 1)) as usize);
        }

        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(
                rounds <= MAX_ROUNDS,
                "case {case}: no fixpoint after {MAX_ROUNDS} rounds"
            );

            // Interleave some checks into this round.
            let quota = 1 + (rng.next_u64() % 3) as usize;
            for _ in 0..quota {
                let Some((i, s)) = work.pop() else { break };
                nodes[i].service.check_source(&sources[s]).expect("parse");
            }
            // Links stay faulty while stores are still landing; the drain
            // rounds afterwards are clean, so quiescence is reachable.
            let faulty = !work.is_empty();

            for &(i, j) in &edges {
                if faulty && rng.next_u64().is_multiple_of(4) {
                    continue; // partitioned this round
                }
                let frames = harvest(&nodes[i], fp);
                let applied = hello(&nodes[j], &nodes[i].token, fp) as usize;
                let mut batch: Vec<(u64, Vec<u8>)> = frames
                    .iter()
                    .enumerate()
                    .skip(applied)
                    .map(|(k, f)| (k as u64 + 1, f.clone()))
                    .collect();
                if faulty {
                    // Reorder: swap a random adjacent pair.
                    if batch.len() >= 2 {
                        let k = (rng.next_u64() % (batch.len() as u64 - 1)) as usize;
                        batch.swap(k, k + 1);
                    }
                    let mut faulted = Vec::new();
                    for entry in batch {
                        match rng.next_u64() % 8 {
                            0 | 1 => {} // dropped
                            2 => {
                                faulted.push(entry.clone());
                                faulted.push(entry); // duplicated
                            }
                            _ => faulted.push(entry),
                        }
                    }
                    batch = faulted;
                }
                for (seq, frame) in batch {
                    ship(&nodes[j], &nodes[i].token, seq, &frame);
                }
            }

            // Quiescent: all work done and every edge fully acknowledged.
            if work.is_empty() {
                let done = edges.iter().all(|&(i, j)| {
                    let published = harvest(&nodes[i], fp).len() as u64;
                    hello(&nodes[j], &nodes[i].token, fp) == published
                });
                if done {
                    break;
                }
            }
        }

        // The union: an offline oracle checking every program holds exactly
        // the verdicts the fleet must converge to.
        let oracle = Service::new(ServiceConfig {
            workers: 1,
            cache_shards: 4,
        });
        for src in &sources {
            oracle.check_source(src).expect("parse");
        }
        let union = oracle.cache_stats().entries;
        for node in &nodes {
            assert_eq!(
                node.service.cache_stats().entries,
                union,
                "case {case}: node {} does not hold the union",
                node.token
            );
            assert_eq!(
                inbound_counter(&node.service, "frames_rejected"),
                0,
                "case {case}: honest traffic was rejected at {}",
                node.token
            );
            for src in &sources {
                let report = node.service.check_source(src).expect("parse");
                assert_eq!(
                    report.cache_misses(),
                    0,
                    "case {case}: node {} re-solved a replicated program",
                    node.token
                );
            }
        }
        assert!(
            nodes
                .iter()
                .any(|x| inbound_counter(&x.service, "frames_applied") > 0),
            "case {case}: nothing replicated"
        );
    }
}

#[test]
fn corrupted_frames_are_always_rejected_and_never_applied() {
    let mut rng = TestRng::from_label("replication-props-corruption");
    let producer = fresh_node(usize::MAX, 0);
    let fp = producer.service.engine().fingerprint();
    producer
        .service
        .check_source(&source("c", 3))
        .expect("parse");
    let frames = harvest(&producer, fp);
    assert!(!frames.is_empty());

    let victim = fresh_node(usize::MAX, 1);
    let mut attempts = 0i64;
    for _ in 0..64 {
        let frame = &frames[(rng.next_u64() % frames.len() as u64) as usize];
        let mutated = match rng.next_u64() % 3 {
            // A single bit flip anywhere in the frame: length, checksum,
            // fingerprint or payload — validation must catch all of them.
            0 => {
                let mut bytes = frame.clone();
                let k = (rng.next_u64() % bytes.len() as u64) as usize;
                bytes[k] ^= 1 << (rng.next_u64() % 8);
                bytes
            }
            // Truncation at a random point: a torn frame.
            1 => {
                let keep = (rng.next_u64() % frame.len() as u64) as usize;
                frame[..keep].to_vec()
            }
            // A well-formed frame from a foreign engine: re-encoded under a
            // perturbed fingerprint, checksum and all.
            _ => {
                let (record, _) = validate_frame(frame, fp).expect("producer frame");
                rel_persist::encode_frame(fp ^ (1 + rng.next_u64() % 0xffff), &record)
            }
        };
        attempts += 1;
        let response = respond(
            &victim.service,
            &format!(
                "{{\"replica\":\"frame\",\"node\":\"evil\",\"seq\":{attempts},\"data\":\"{}\"}}",
                to_hex(&mutated)
            ),
        );
        assert!(
            response.get("error").is_some(),
            "mutated frame was accepted: {response}"
        );
    }
    assert_eq!(
        inbound_counter(&victim.service, "frames_rejected"),
        attempts
    );
    assert_eq!(inbound_counter(&victim.service, "frames_applied"), 0);
    assert_eq!(victim.service.cache_stats().entries, 0);
}
