//! End-to-end tests of the newline-delimited JSON protocol: the exact loop
//! `birelcost serve` runs, driven over in-memory readers/writers.

use std::io::Cursor;

use rel_service::json::{self, Value};
use rel_service::{serve, Service, ServiceConfig};

fn service() -> Service {
    Service::new(ServiceConfig {
        workers: 2,
        cache_shards: 4,
    })
}

/// Runs the daemon loop over a scripted session, returning one parsed JSON
/// response per request line.
fn drive(service: &Service, lines: &[&str]) -> Vec<Value> {
    let input = lines.join("\n");
    let mut output = Vec::new();
    let summary = serve(service, Cursor::new(input), &mut output).expect("in-memory I/O");
    let text = String::from_utf8(output).expect("responses are UTF-8");
    let responses: Vec<Value> = text
        .lines()
        .map(|l| json::parse(l).expect("every response line is valid JSON"))
        .collect();
    assert_eq!(
        summary.requests,
        responses.len(),
        "one response per request"
    );
    responses
}

#[test]
fn answers_consecutive_check_requests() {
    let service = service();
    let src = "def id : boolr -> boolr = lam x. x;";
    let req = format!("{{\"check\": \"{src}\"}}");
    let responses = drive(&service, &[&req, &req, &req]);
    assert_eq!(responses.len(), 3);
    for r in &responses {
        assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
        let Some(Value::Arr(defs)) = r.get("defs") else {
            panic!("missing defs array in {r}");
        };
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].get("name").and_then(Value::as_str), Some("id"));
        assert_eq!(defs[0].get("ok"), Some(&Value::Bool(true)));
        assert!(defs[0]
            .get("typecheck_us")
            .and_then(Value::as_int)
            .is_some());
        assert!(r.get("cache").is_some(), "responses carry cache counters");
    }
}

#[test]
fn def_reports_carry_the_fm_memo_and_exelim_counters() {
    // The perf counters of the FM subproblem memo and the indexed
    // existential search are part of the wire protocol: a load harness must
    // be able to watch memo hit rates and pruned candidates per definition.
    let service = service();
    // `map` exercises both machineries: existential candidates and FM
    // branches with Eq-splits (so the memo actually registers traffic).
    let src = rel_suite::benchmark("map")
        .unwrap()
        .source
        .replace('\n', " ");
    let req = format!("{{\"check\": \"{src}\"}}");
    let responses = drive(&service, &[&req]);
    assert_eq!(responses[0].get("ok"), Some(&Value::Bool(true)));
    let Some(Value::Arr(defs)) = responses[0].get("defs") else {
        panic!("missing defs in {}", responses[0]);
    };
    let d = &defs[0];
    for field in [
        "fm_memo_hits",
        "fm_memo_misses",
        "exelim_candidates_pruned",
        "fm_proved",
        "grid_accepted",
    ] {
        assert!(
            d.get(field).and_then(Value::as_int).is_some(),
            "def report lacks `{field}`: {d}"
        );
    }
    let misses = d.get("fm_memo_misses").and_then(Value::as_int).unwrap();
    assert!(misses > 0, "map's obligations must exercise the FM memo");
    // The search-exhausted tag is part of the wire protocol too: a string
    // naming the cap when the existential search gave up, else null.
    let exhausted = d.get("search_exhausted").expect("missing search_exhausted");
    assert!(
        matches!(exhausted, Value::Null | Value::Str(_)),
        "search_exhausted must be null or a reason string, got {exhausted}"
    );
}

#[test]
fn metrics_dump_reports_the_versioned_schema() {
    let service = service();
    let src = "def id : boolr -> boolr = lam x. x;";
    let check = format!("{{\"check\": \"{src}\"}}");
    let batch = format!("{{\"batch\": [\"{src}\", \"{src}\"]}}");
    let responses = drive(&service, &[&check, &batch, r#"{"metrics": "dump"}"#]);

    let dump = responses[2]
        .get("metrics")
        .expect("missing metrics payload");
    assert_eq!(
        dump.get("schema_version").and_then(Value::as_int),
        Some(rel_obs::SCHEMA_VERSION as i64)
    );

    // The response validates against the documented schema — the same
    // checker CI runs over `--metrics-out` files.
    rel_service::validate_metrics(&responses[2].to_string())
        .expect("daemon metrics dump must satisfy the schema");

    // Per-request latency histograms are populated: the two earlier
    // requests (check + batch) were both observed before the dump.
    let hist = dump
        .get("histograms")
        .and_then(|h| h.get("serve.request_ns"))
        .expect("missing serve.request_ns histogram");
    let count = hist.get("count").and_then(Value::as_int).unwrap();
    assert!(count >= 2, "expected ≥2 observed requests, got {count}");
    assert!(hist.get("p50_ns").and_then(Value::as_int).is_some());
    assert!(hist.get("max_ns").and_then(Value::as_int).unwrap() > 0);

    // Solver counters published by the engine reach the merged dump (the
    // global registry is process-wide, hence ≥).
    let queries = dump
        .get("counters")
        .and_then(|c| c.get("solver.queries"))
        .and_then(Value::as_int)
        .expect("missing solver.queries counter");
    assert!(queries > 0);

    // Request accounting lives in the same dump.
    let requests = dump
        .get("counters")
        .and_then(|c| c.get("serve.requests"))
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(requests, 3, "check + batch + the dump request itself");
}

#[test]
fn cache_stats_and_metrics_gauges_agree() {
    // `{"cache": "stats"}` is derived from the registry's cache gauges,
    // which are themselves refreshed from the live cache atomics — one
    // source of truth, so the two views can never drift.
    let service = service();
    let src = r#"\ndef not2 : boolr -> boolr = lam b. if b then false else true;\ndef use : boolr -> boolr = lam b. not2 (not2 b);\n"#;
    let check = format!("{{\"check\": \"{src}\"}}");
    let responses = drive(
        &service,
        &[
            &check,
            &check,
            r#"{"cache": "stats"}"#,
            r#"{"metrics": "dump"}"#,
        ],
    );

    let cache = responses[2].get("cache").expect("missing cache payload");
    let gauges = responses[3]
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .expect("missing gauges");
    for (proto_field, gauge_name) in [
        ("hits", "cache.validity.hits"),
        ("misses", "cache.validity.misses"),
        ("entries", "cache.validity.entries"),
        ("program_entries", "cache.programs.entries"),
        ("def_entries", "cache.defs.entries"),
        ("loads", "persist.loads"),
        ("saves", "persist.saves"),
    ] {
        assert_eq!(
            cache.get(proto_field).and_then(Value::as_int),
            gauges.get(gauge_name).and_then(Value::as_int),
            "{proto_field} and {gauge_name} must agree"
        );
    }
    // And the underlying cache saw real traffic (second check hits).
    assert!(cache.get("hits").and_then(Value::as_int).unwrap() > 0);
}

#[test]
fn rejects_unknown_metrics_commands() {
    let service = service();
    let responses = drive(&service, &[r#"{"metrics": "reset"}"#]);
    let err = responses[0].get("error").and_then(Value::as_str).unwrap();
    assert!(err.contains("dump"), "got: {err}");
}

#[test]
fn reports_parse_errors_without_dying() {
    let service = service();
    let responses = drive(
        &service,
        &[
            r#"{"check": "def broken : boolr =", "id": "bad"}"#,
            r#"{"check": "def ok : boolr = true;", "id": "good"}"#,
        ],
    );
    assert_eq!(responses[0].get("id").and_then(Value::as_str), Some("bad"));
    let err = responses[0]
        .get("error")
        .and_then(Value::as_str)
        .expect("parse failure is reported in `error`");
    assert!(err.contains("parse error"), "got: {err}");
    // The session survived and the next request still checks.
    assert_eq!(responses[1].get("id").and_then(Value::as_str), Some("good"));
    assert_eq!(responses[1].get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn survives_malformed_and_unknown_requests() {
    let service = service();
    let responses = drive(
        &service,
        &[
            "this is not json",
            r#"{"frobnicate": 1}"#,
            r#"{"check": 42}"#,
            r#"{"batch": "not an array"}"#,
            r#"{"check": "def ok : boolr = true;"}"#,
        ],
    );
    for r in &responses[..4] {
        assert!(
            r.get("error").and_then(Value::as_str).is_some(),
            "expected an error response, got {r}"
        );
    }
    assert_eq!(responses[4].get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn multi_def_programs_report_per_def_verdicts_in_order() {
    let service = service();
    let src = r#"\ndef not2 : boolr -> boolr = lam b. if b then false else true;\ndef use : boolr -> boolr = lam b. not2 (not2 b);\ndef bad : boolr = 3;\n"#;
    let req = format!("{{\"check\": \"{src}\"}}");
    let responses = drive(&service, &[&req]);
    assert_eq!(responses[0].get("ok"), Some(&Value::Bool(false)));
    let Some(Value::Arr(defs)) = responses[0].get("defs") else {
        panic!("missing defs");
    };
    let names: Vec<&str> = defs
        .iter()
        .map(|d| d.get("name").and_then(Value::as_str).unwrap())
        .collect();
    assert_eq!(names, ["not2", "use", "bad"]);
    assert_eq!(defs[0].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(defs[1].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(defs[2].get("ok"), Some(&Value::Bool(false)));
    assert!(defs[2].get("error").and_then(Value::as_str).is_some());
}

#[test]
fn cache_counters_climb_across_requests() {
    let service = service();
    let src = r#"\ndef not2 : boolr -> boolr = lam b. if b then false else true;\ndef use : boolr -> boolr = lam b. not2 (not2 b);\n"#;
    let req = format!("{{\"check\": \"{src}\"}}");
    let responses = drive(&service, &[&req, &req, r#"{"stats": true}"#]);

    let hits = |r: &Value| {
        r.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Value::as_int)
            .expect("cache.hits")
    };
    assert_eq!(hits(&responses[0]), 0, "first request is all misses");
    assert!(hits(&responses[1]) > 0, "second request hits the cache");
    assert!(
        hits(&responses[2]) > 0,
        "stats request reports the counters"
    );
}

#[test]
fn batch_requests_check_on_the_worker_pool() {
    let service = service();
    let ok = "def ok : boolr = true;";
    let bad = "def broken : boolr =";
    let req = format!("{{\"batch\": [\"{ok}\", \"{bad}\", \"{ok}\"]}}");
    let responses = drive(&service, &[&req]);
    let r = &responses[0];
    assert_eq!(r.get("ok"), Some(&Value::Bool(false)));
    assert_eq!(r.get("jobs_ok").and_then(Value::as_int), Some(2));
    let Some(Value::Arr(jobs)) = r.get("jobs") else {
        panic!("missing jobs");
    };
    assert_eq!(jobs.len(), 3);
    assert_eq!(jobs[0].get("ok"), Some(&Value::Bool(true)));
    assert_eq!(jobs[1].get("ok"), Some(&Value::Bool(false)));
    assert!(jobs[1].get("error").and_then(Value::as_str).is_some());
    assert_eq!(jobs[2].get("ok"), Some(&Value::Bool(true)));
}
