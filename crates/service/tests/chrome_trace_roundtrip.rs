//! Round-trips a recorded span trace through the chrome://tracing exporter
//! and this crate's JSON parser: what `check --trace-out` writes must be
//! well-formed JSON with balanced, correctly-named, time-ordered events.
//!
//! Lives here rather than in `rel-obs` because the JSON parser belongs to
//! `rel-service` and the dependency points this way.

use rel_service::json::{self, Value};

#[test]
fn exported_trace_parses_and_balances() {
    // This test owns the recorder for the whole process: it is the only
    // test in this binary, so arming/draining races no one.
    rel_obs::RelObsConfig::on().apply();
    rel_obs::take_events();

    {
        let _outer = rel_obs::span_with("roundtrip.outer", 3);
        {
            let _inner = rel_obs::span("roundtrip.inner");
            rel_obs::event_with("roundtrip.marker", 42);
        }
        let _second = rel_obs::span("roundtrip.inner");
    }
    let events = rel_obs::take_events();
    rel_obs::RelObsConfig::off().apply();
    rel_obs::check_well_nested(&events).expect("recorder produced a well-nested stream");

    let trace = rel_obs::chrome_trace(&events);
    let parsed = json::parse(&trace).expect("chrome trace must be valid JSON");

    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let Some(Value::Arr(trace_events)) = parsed.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    // 2 spans × (B+E) for outer+inner, one more inner span, one instant.
    assert_eq!(trace_events.len(), 7);

    let mut depth = 0i64;
    let mut names = Vec::new();
    let mut last_ts = -1.0f64;
    for e in trace_events {
        let name = e.get("name").and_then(Value::as_str).expect("event name");
        let ph = e.get("ph").and_then(Value::as_str).expect("event phase");
        assert_eq!(e.get("pid").and_then(Value::as_int), Some(1));
        assert!(e.get("tid").and_then(Value::as_int).is_some());
        let ts = match e.get("ts").expect("event timestamp") {
            Value::Int(n) => *n as f64,
            Value::Num(x) => *x,
            other => panic!("ts must be numeric, got {other}"),
        };
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        match ph {
            "B" => {
                depth += 1;
                names.push(name);
            }
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "E without matching B");
            }
            "i" => assert_eq!(name, "roundtrip.marker"),
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(depth, 0, "every span must close");
    assert_eq!(
        names,
        ["roundtrip.outer", "roundtrip.inner", "roundtrip.inner"]
    );

    // Span arguments survive the round trip.
    let outer = trace_events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("roundtrip.outer"))
        .unwrap();
    assert_eq!(
        outer
            .get("args")
            .and_then(|a| a.get("v"))
            .and_then(Value::as_int),
        Some(3)
    );
    let marker = trace_events
        .iter()
        .find(|e| e.get("ph").and_then(Value::as_str) == Some("i"))
        .unwrap();
    assert_eq!(
        marker
            .get("args")
            .and_then(|a| a.get("v"))
            .and_then(Value::as_int),
        Some(42)
    );
}
