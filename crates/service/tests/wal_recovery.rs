//! Service-level WAL recovery: verdicts survive a daemon that never flushed,
//! compaction fires from the thresholds, the wire protocol exposes WAL
//! counters, request deadlines degrade to structured errors, and the TCP
//! listener round-trips a session.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use rel_persist::{FaultScript, FaultyFs, UnsyncedSurvival, WalLimits};
use rel_service::json::{self, Value};
use rel_service::{serve_tcp, serve_with, ServeOptions, Service, ServiceConfig};

const CACHE: &str = "/d/cache";

fn service() -> Service {
    Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    })
}

/// A source whose check actually stores constraint verdicts (the boolean
/// toys never consult the validity cache): the `map` benchmark drives the
/// FM layer and the existential search.
fn src() -> String {
    rel_suite::benchmark("map")
        .unwrap()
        .source
        .replace('\n', " ")
}

fn wide_limits() -> WalLimits {
    WalLimits {
        max_bytes: u64::MAX,
        max_records: u64::MAX,
    }
}

#[test]
fn verdicts_survive_a_crash_without_any_explicit_flush() {
    let fs = FaultyFs::new();
    let first = service();
    let outcome = first.attach_cache_file_with(Arc::new(fs.clone()), CACHE, wide_limits());
    assert_eq!(outcome.warning, None);

    let report = first.check_source(&src()).expect("source checks");
    assert!(report.all_ok());
    let stored = first.cache_stats().entries;
    assert!(stored > 0, "the check stored verdicts");
    let wal = first.persist_stats().wal.expect("wal attached");
    assert!(wal.appends >= stored, "every verdict store hit the log");
    assert_eq!(wal.append_errors, 0);

    // Kill it: no save_cache(), no drop-order courtesy.  Only synced bytes
    // survive — append_verdict syncs, so everything acked is on "disk".
    drop(first);
    let survivor = fs.surviving();

    let second = service();
    let outcome = second.attach_cache_file_with(Arc::new(survivor), CACHE, wide_limits());
    assert_eq!(outcome.warning, None, "clean replay: {:?}", outcome.warning);
    assert_eq!(outcome.verdicts, 0, "no snapshot was ever written");
    assert!(outcome.wal_records > 0, "recovery came from the wal suffix");
    assert_eq!(outcome.wal_anomalies, 0);

    let report = second.check_source(&src()).expect("source re-checks");
    assert!(report.all_ok());
    // The replayed def-index entries let every unchanged definition skip
    // re-verification outright — warm recovery without a single flush.
    assert!(
        report.skipped_unchanged() > 0,
        "replayed def hashes answered the second run"
    );
}

#[test]
fn torn_wal_tail_degrades_to_a_warning_and_a_prefix() {
    // Crash mid-append with a 1-byte torn tail surviving.
    let fs = FaultyFs::new();
    let first = service();
    first.attach_cache_file_with(Arc::new(fs.clone()), CACHE, wide_limits());
    let probe_ops = {
        // Count ops of a clean run on a scratch fs to find a mid-run index.
        let scratch = FaultyFs::new();
        let s = service();
        s.attach_cache_file_with(Arc::new(scratch.clone()), CACHE, wide_limits());
        s.check_source(&src()).unwrap();
        scratch.op_count()
    };
    let fs = FaultyFs::with_script(FaultScript::crash_at(
        probe_ops.saturating_sub(2),
        UnsyncedSurvival::Prefix(1),
    ));
    let first = service();
    first.attach_cache_file_with(Arc::new(fs.clone()), CACHE, wide_limits());
    let _ = first.check_source(&src());
    drop(first);

    let second = service();
    let outcome = second.attach_cache_file_with(Arc::new(fs.surviving()), CACHE, wide_limits());
    // Whatever happened, attach recovered a consistent prefix and, because
    // the tail was torn, flagged it and folded the log on startup.
    if outcome.wal_anomalies > 0 {
        let warning = outcome.warning.expect("anomalies carry a warning");
        assert!(warning.contains("wal"), "unexpected warning: {warning}");
    }
    assert!(second.check_source(&src()).expect("still serves").all_ok());
}

#[test]
fn compaction_threshold_folds_the_log_into_the_snapshot() {
    let fs = FaultyFs::new();
    let svc = service();
    let limits = WalLimits {
        max_bytes: u64::MAX,
        max_records: 1,
    };
    svc.attach_cache_file_with(Arc::new(fs.clone()), CACHE, limits);
    svc.check_source(&src()).expect("source checks");

    // More than one record appended → the observer marked compaction due.
    assert_eq!(svc.compact_if_due(), Ok(true));
    assert_eq!(
        svc.compact_if_due(),
        Ok(false),
        "due flag is edge-triggered"
    );
    let wal = svc.persist_stats().wal.expect("wal attached");
    assert_eq!(wal.compactions, 1);
    assert_eq!(wal.records, 1, "only the compaction marker remains");
    drop(svc);

    // The snapshot now carries the verdicts; replay is ~empty.
    let second = service();
    let outcome = second.attach_cache_file_with(Arc::new(fs.surviving()), CACHE, limits);
    assert_eq!(outcome.warning, None);
    assert!(outcome.verdicts > 0, "folded verdicts live in the snapshot");
    assert_eq!(outcome.wal_records, 0);
    let report = second.check_source(&src()).expect("serves");
    assert!(report.all_ok());
    assert!(
        report.skipped_unchanged() > 0,
        "snapshot warmed the def index"
    );
}

#[test]
fn cache_stats_response_carries_the_wal_counters() {
    let fs = FaultyFs::new();
    let svc = service();
    svc.attach_cache_file_with(Arc::new(fs), CACHE, wide_limits());
    svc.check_source(&src()).expect("source checks");

    let mut output = Vec::new();
    serve_with(
        &svc,
        Cursor::new("{\"cache\": \"stats\"}"),
        &mut output,
        ServeOptions::default(),
    )
    .expect("in-memory I/O");
    let response = json::parse(String::from_utf8(output).unwrap().lines().next().unwrap())
        .expect("valid JSON");
    let wal = response
        .get("cache")
        .and_then(|c| c.get("wal"))
        .expect("cache.wal object");
    for field in [
        "records",
        "bytes",
        "appends",
        "append_errors",
        "compactions",
        "replayed",
        "truncated_tails",
        "corrupt_skipped",
        "fingerprint_rejected",
        "tmp_reaped",
    ] {
        assert!(
            wal.get(field).and_then(Value::as_int).is_some(),
            "cache.wal.{field} missing in {wal}"
        );
    }
    assert!(wal.get("appends").and_then(Value::as_int).unwrap() > 0);
}

#[test]
fn a_zero_deadline_times_out_with_a_structured_error() {
    let svc = service();
    let req = format!("{{\"id\": 7, \"check\": \"{}\"}}", src());
    let mut output = Vec::new();
    let summary = serve_with(
        &svc,
        Cursor::new(req),
        &mut output,
        ServeOptions {
            request_timeout: Some(Duration::ZERO),
            io_timeout: None,
        },
    )
    .expect("in-memory I/O");
    assert_eq!(summary.requests, 1);
    assert_eq!(summary.deadlines, 1);

    let response = json::parse(String::from_utf8(output).unwrap().lines().next().unwrap()).unwrap();
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("deadline")
    );
    assert_eq!(response.get("id").and_then(Value::as_int), Some(7));
    assert_eq!(response.get("timeout_ms").and_then(Value::as_int), Some(0));

    // The drained worker finished in the background; the service is intact.
    assert!(svc.check_source(&src()).expect("still serves").all_ok());
}

#[test]
fn generous_deadlines_do_not_interfere_with_answers() {
    let svc = service();
    let req = format!("{{\"check\": \"{}\"}}", src());
    let mut output = Vec::new();
    let summary = serve_with(
        &svc,
        Cursor::new(req),
        &mut output,
        ServeOptions {
            request_timeout: Some(Duration::from_secs(60)),
            io_timeout: None,
        },
    )
    .expect("in-memory I/O");
    assert_eq!(summary.deadlines, 0);
    let response = json::parse(String::from_utf8(output).unwrap().lines().next().unwrap()).unwrap();
    assert_eq!(response.get("ok"), Some(&Value::Bool(true)));
}

#[test]
fn tcp_listener_answers_and_honors_shutdown() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let svc = service();
        serve_tcp(
            &svc,
            &listener,
            ServeOptions {
                request_timeout: Some(Duration::from_secs(30)),
                io_timeout: Some(Duration::from_secs(5)),
            },
        )
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{{\"check\": \"{}\"}}", src()).unwrap();
    writeln!(stream, "{{\"shutdown\": true}}").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = json::parse(line.trim()).expect("check response");
    assert_eq!(response.get("ok"), Some(&Value::Bool(true)));

    line.clear();
    reader.read_line(&mut line).unwrap();
    let bye = json::parse(line.trim()).expect("shutdown response");
    assert_eq!(bye.get("bye"), Some(&Value::Bool(true)));

    let summary = server.join().expect("server thread").expect("serve_tcp ok");
    assert!(summary.shutdown);
    assert_eq!(summary.requests, 2);
}
