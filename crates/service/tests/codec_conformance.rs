//! Protocol conformance for the two serving planes.
//!
//! The contract under test (DESIGN.md §10): the NDJSON and HTTP codecs are
//! *framings* of one content protocol, so for any request the response's
//! JSON content — the NDJSON line, the HTTP body — is byte-identical across
//! the planes.  The suite drives a live reactor with both listeners bound
//! and compares raw bytes for every deterministic response shape
//! (cache-stats, stats, error, deadline, backpressure), compares
//! nondeterministic ones (check timings, metrics counters) structurally,
//! and then feeds each plane the malformed input it is most likely to meet
//! in production: oversized frames, truncated requests, and a slow-loris
//! half-header that only `--idle-timeout-ms` can reap.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rel_service::json::{self, Value};
use rel_service::{
    serve_reactor, CodecKind, CodecLimits, ReactorOptions, ReactorSummary, Service, ServiceConfig,
};

const READ_TIMEOUT: Duration = Duration::from_secs(20);

/// A live reactor with one NDJSON and one HTTP listener over one service.
struct Planes {
    ndjson: SocketAddr,
    http: SocketAddr,
    handle: JoinHandle<std::io::Result<ReactorSummary>>,
}

impl Planes {
    fn start(workers: usize, configure: impl FnOnce(&mut ReactorOptions)) -> Planes {
        let service = Service::new(ServiceConfig {
            workers,
            cache_shards: 16,
        });
        let nd_listener = TcpListener::bind("127.0.0.1:0").expect("bind ndjson");
        let http_listener = TcpListener::bind("127.0.0.1:0").expect("bind http");
        let ndjson = nd_listener.local_addr().unwrap();
        let http = http_listener.local_addr().unwrap();
        let mut options = ReactorOptions {
            workers,
            ..ReactorOptions::default()
        };
        configure(&mut options);
        let handle = std::thread::spawn(move || {
            serve_reactor(
                &service,
                vec![
                    (nd_listener, CodecKind::Ndjson),
                    (http_listener, CodecKind::Http),
                ],
                options,
            )
        });
        Planes {
            ndjson,
            http,
            handle,
        }
    }

    /// Stops the reactor via the wire protocol and returns its summary.
    fn stop(self) -> ReactorSummary {
        let bye = ndjson_request(self.ndjson, "{\"shutdown\": true}");
        assert_eq!(bye, "{\"bye\":true}\n");
        self.handle
            .join()
            .expect("reactor thread")
            .expect("reactor I/O")
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
    stream
}

/// One NDJSON request on a fresh connection; returns the raw response line
/// (trailing newline included, so byte comparisons cover the full content).
fn ndjson_request(addr: SocketAddr, line: &str) -> String {
    let mut stream = connect(addr);
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("response line");
    response
}

/// One HTTP request on a fresh connection (`Connection: close`), returning
/// (status code, raw head, content bytes).  Chunked bodies are de-chunked so
/// the content compares 1:1 with NDJSON lines.
fn http_request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> HttpResponse {
    let mut request = format!("{method} {path} HTTP/1.1\r\n");
    if let Some(body) = body {
        request.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    request.push_str("Connection: close\r\n\r\n");
    if let Some(body) = body {
        request.push_str(body);
    }
    http_raw(addr, request.as_bytes())
}

struct HttpResponse {
    status: u16,
    head: String,
    content: Vec<u8>,
}

fn http_raw(addr: SocketAddr, request: &[u8]) -> HttpResponse {
    let mut stream = connect(addr);
    stream.write_all(request).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_http(&raw)
}

fn parse_http(raw: &[u8]) -> HttpResponse {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no head terminator in {:?}", String::from_utf8_lossy(raw)));
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head}"));
    let body = &raw[head_end + 4..];
    let content = if head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked")
    {
        dechunk(body)
    } else {
        body.to_vec()
    };
    HttpResponse {
        status,
        head,
        content,
    }
}

/// Decodes HTTP/1.1 chunked transfer encoding down to the content bytes.
fn dechunk(mut body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&body[..line_end]).expect("chunk size utf8");
        let size = usize::from_str_radix(size_text.trim(), 16).expect("chunk size hex");
        body = &body[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&body[..size]);
        assert_eq!(&body[size..size + 2], b"\r\n", "chunk terminator");
        body = &body[size + 2..];
    }
}

fn parse_content(content: &[u8]) -> Value {
    json::parse(std::str::from_utf8(content).unwrap().trim()).expect("response JSON")
}

/// The source of a bundled benchmark, by name.
fn bench_source(name: &str) -> String {
    rel_suite::all_benchmarks()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no bundled benchmark `{name}`"))
        .source
        .to_string()
}

/// A `POST /check`-able wire object as a JSON string.
fn wire(fields: Vec<(&str, Value)>) -> String {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
    .to_string()
}

// ---------------------------------------------------------------------------
// Content identity
// ---------------------------------------------------------------------------

#[test]
fn deterministic_responses_are_byte_identical_across_planes() {
    let planes = Planes::start(2, |_| {});

    // Each (request, expected HTTP status) pair answers a response whose
    // content does not depend on timing, so the NDJSON line and the HTTP
    // body must match byte for byte.
    let cases: Vec<(String, u16)> = vec![
        (wire(vec![("stats", Value::Bool(true))]), 200),
        // Unknown request object → identical error text on both planes.
        (wire(vec![("nonsense", Value::Int(1))]), 400),
        // Malformed JSON: the same bytes hit the same parser, so even the
        // byte-offset in the error message agrees.
        ("{\"check\": ".to_string(), 400),
        // Bad field type.
        (wire(vec![("check", Value::Int(7))]), 400),
    ];
    for (request, expected_status) in cases {
        let nd_line = ndjson_request(planes.ndjson, &request);
        let http = http_request(planes.http, "POST", "/check", Some(&request));
        assert_eq!(
            nd_line.as_bytes(),
            http.content.as_slice(),
            "content diverged for {request}: ndjson={nd_line:?} http={:?}",
            String::from_utf8_lossy(&http.content)
        );
        assert_eq!(http.status, expected_status, "{request}: {}", http.head);
    }

    // The GET aliases answer the same content as their wire-object spellings
    // (no mutating traffic in between, so the counters cannot move).
    let nd_cache = ndjson_request(planes.ndjson, "{\"cache\": \"stats\"}");
    let http_cache = http_request(planes.http, "GET", "/cache/stats", None);
    assert_eq!(nd_cache.as_bytes(), http_cache.content.as_slice());
    assert_eq!(http_cache.status, 200);
    assert!(
        http_cache
            .head
            .contains("Content-Type: application/x-ndjson"),
        "{}",
        http_cache.head
    );

    let summary = planes.stop();
    assert!(summary.shutdown);
    assert_eq!(summary.conn_errors, 0);
}

#[test]
fn check_and_metrics_agree_across_planes() {
    let planes = Planes::start(2, |_| {});
    let src = "def not2 : boolr -> boolr = lam b. if b then false else true;";
    let request = wire(vec![("check", Value::Str(src.to_string()))]);

    // Timings and cache counters differ between two executions, so `check`
    // conformance is structural: same verdicts, same def names, same shape.
    let nd = parse_content(ndjson_request(planes.ndjson, &request).as_bytes());
    let http_response = http_request(planes.http, "POST", "/check", Some(&request));
    let http = parse_content(&http_response.content);
    assert_eq!(http_response.status, 200);
    for response in [&nd, &http] {
        assert_eq!(response.get("ok"), Some(&Value::Bool(true)));
        let Some(Value::Arr(defs)) = response.get("defs") else {
            panic!("no defs in {response}");
        };
        assert_eq!(defs.len(), 1);
        assert_eq!(
            defs[0].get("name"),
            Some(&Value::Str("not2".to_string())),
            "{response}"
        );
    }

    // Metrics: histograms accumulate between any two requests, so compare
    // the schema and the key sets — and require the per-codec latency series
    // to exist for both planes (both planes have answered by now).
    let nd_metrics =
        parse_content(ndjson_request(planes.ndjson, "{\"metrics\": \"dump\"}").as_bytes());
    let http_metrics = parse_content(&http_request(planes.http, "GET", "/metrics", None).content);
    let keys = |v: &Value, section: &str| -> Vec<String> {
        let Some(Value::Obj(entries)) = v.get("metrics").and_then(|m| m.get(section)) else {
            panic!("no {section} in {v}");
        };
        entries.iter().map(|(k, _)| k.clone()).collect()
    };
    for metrics in [&nd_metrics, &http_metrics] {
        assert_eq!(
            metrics.get("metrics").and_then(|m| m.get("schema_version")),
            Some(&Value::Int(rel_obs::SCHEMA_VERSION as i64))
        );
        let histograms = keys(metrics, "histograms");
        assert!(
            histograms.iter().any(|k| k == "serve.request_ns.ndjson"),
            "missing ndjson latency series: {histograms:?}"
        );
        assert!(
            histograms.iter().any(|k| k == "serve.request_ns.http"),
            "missing http latency series: {histograms:?}"
        );
    }
    assert_eq!(
        keys(&nd_metrics, "counters"),
        keys(&http_metrics, "counters")
    );
    assert_eq!(
        keys(&nd_metrics, "histograms"),
        keys(&http_metrics, "histograms")
    );

    planes.stop();
}

#[test]
fn deadline_responses_are_byte_identical_across_planes() {
    // A zero budget expires every request at the dequeue gate (or the
    // reactor's scan, whichever runs first — both build the same payload),
    // making the deadline response deterministic.
    let planes = Planes::start(2, |o| o.request_timeout = Some(Duration::ZERO));
    let request = wire(vec![
        ("id", Value::Int(9)),
        ("check", Value::Str("def x : boolr = true;".to_string())),
    ]);
    let nd_line = ndjson_request(planes.ndjson, &request);
    assert_eq!(
        nd_line,
        "{\"id\":9,\"error\":\"deadline\",\"timeout_ms\":0}\n"
    );
    let http = http_request(planes.http, "POST", "/check", Some(&request));
    assert_eq!(nd_line.as_bytes(), http.content.as_slice());
    assert_eq!(http.status, 504, "{}", http.head);
    let summary = planes.stop();
    assert!(summary.deadlines >= 2, "{summary:?}");
}

#[test]
fn backpressure_refusals_are_byte_identical_across_planes() {
    // One worker, queue depth one: occupy the worker with a genuinely slow
    // cold check, fill the queue, and every further request must be refused
    // immediately with the structured backpressure error.
    let planes = Planes::start(1, |o| o.max_queue = 1);
    let slow = wire(vec![
        ("id", Value::Str("slow".to_string())),
        ("check", Value::Str(bench_source("bsplit"))),
    ]);
    let mut busy = connect(planes.ndjson);
    busy.write_all(slow.as_bytes()).unwrap();
    busy.write_all(b"\n").unwrap();
    // Give the reactor time to hand the slow job to the worker...
    std::thread::sleep(Duration::from_millis(150));
    // ...then fill the queue with one more.
    let mut filler = connect(planes.ndjson);
    filler
        .write_all(b"{\"id\": \"queued\", \"stats\": true}\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let probe = wire(vec![
        ("id", Value::Str("bp".to_string())),
        ("stats", Value::Bool(true)),
    ]);
    let nd_line = ndjson_request(planes.ndjson, &probe);
    assert_eq!(
        nd_line,
        "{\"id\":\"bp\",\"error\":\"backpressure\",\"max_queue\":1}\n"
    );
    let http = http_request(planes.http, "POST", "/check", Some(&probe));
    assert_eq!(nd_line.as_bytes(), http.content.as_slice());
    assert_eq!(http.status, 503, "{}", http.head);

    // The refusals cost the queued work nothing: both in-flight requests
    // still answer.
    let mut busy_reader = BufReader::new(busy);
    let mut response = String::new();
    busy_reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"id\":\"slow\""), "{response}");
    let mut filler_reader = BufReader::new(filler);
    response.clear();
    filler_reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"id\":\"queued\""), "{response}");

    let summary = planes.stop();
    assert!(summary.backpressure >= 2, "{summary:?}");
}

// ---------------------------------------------------------------------------
// Health probe
// ---------------------------------------------------------------------------

#[test]
fn health_probe_is_byte_identical_and_degrades_to_503() {
    use std::sync::Arc;

    use rel_service::{ReplicaOptions, SimNet};

    // A bespoke reactor start: the probe must flip with the service's
    // replication state, so the test owns the service instead of using
    // `Planes::start`.
    let service = Service::new(ServiceConfig {
        workers: 2,
        cache_shards: 16,
    });
    let nd_listener = TcpListener::bind("127.0.0.1:0").expect("bind ndjson");
    let http_listener = TcpListener::bind("127.0.0.1:0").expect("bind http");
    let ndjson = nd_listener.local_addr().unwrap();
    let http = http_listener.local_addr().unwrap();
    let reactor_service = service.clone();
    let handle = std::thread::spawn(move || {
        serve_reactor(
            &reactor_service,
            vec![
                (nd_listener, CodecKind::Ndjson),
                (http_listener, CodecKind::Http),
            ],
            ReactorOptions {
                workers: 2,
                ..ReactorOptions::default()
            },
        )
    });

    // Ready: byte-identical content on both planes, 200 over HTTP, and the
    // GET alias answers the same bytes as the wire-object spelling.
    let nd_line = ndjson_request(ndjson, "{\"health\": true}");
    assert_eq!(nd_line, "{\"health\":\"ready\",\"reasons\":[]}\n");
    let get = http_request(http, "GET", "/healthz", None);
    assert_eq!(nd_line.as_bytes(), get.content.as_slice());
    assert_eq!(get.status, 200, "{}", get.head);
    let post = http_request(http, "POST", "/check", Some("{\"health\": true}"));
    assert_eq!(nd_line.as_bytes(), post.content.as_slice());
    assert_eq!(post.status, 200, "{}", post.head);

    // Degrade: replication to a peer nobody listens on — all peers down.
    // A never-connected peer is treated as booting until its connect
    // attempts exhaust the health grace budget, so poll until the session
    // has provably failed enough times (tens of milliseconds at this
    // backoff schedule) rather than asserting the first probe.
    let net = SimNet::new();
    service.enable_replication(
        Arc::new(net.endpoint("probe")),
        ReplicaOptions {
            peers: vec!["ghost".to_string()],
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            ..ReplicaOptions::default()
        },
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let nd_line = loop {
        let line = ndjson_request(ndjson, "{\"health\": true}");
        if line.contains("degraded") || std::time::Instant::now() >= deadline {
            break line;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    assert_eq!(
        nd_line,
        "{\"health\":\"degraded\",\"reasons\":[\"peers-down\"]}\n"
    );
    let get = http_request(http, "GET", "/healthz", None);
    assert_eq!(
        nd_line.as_bytes(),
        get.content.as_slice(),
        "degraded content diverged"
    );
    assert_eq!(get.status, 503, "{}", get.head);

    // Recover: dropping the replication plane clears the reason and the
    // HTTP status returns to 200.
    service.shutdown_replication();
    let get = http_request(http, "GET", "/healthz", None);
    assert_eq!(get.status, 200, "{}", get.head);
    assert_eq!(
        get.content.as_slice(),
        b"{\"health\":\"ready\",\"reasons\":[]}\n"
    );

    let bye = ndjson_request(ndjson, "{\"shutdown\": true}");
    assert_eq!(bye, "{\"bye\":true}\n");
    handle.join().expect("reactor thread").expect("reactor I/O");
}

// ---------------------------------------------------------------------------
// Multiplexing behavior
// ---------------------------------------------------------------------------

#[test]
fn ndjson_pipelining_answers_in_finish_order_with_id_echo() {
    let planes = Planes::start(2, |_| {});
    let mut stream = connect(planes.ndjson);
    let slow = wire(vec![
        ("id", Value::Str("slow".to_string())),
        ("check", Value::Str(bench_source("bsplit"))),
    ]);
    let fast = wire(vec![
        ("id", Value::Str("fast".to_string())),
        ("stats", Value::Bool(true)),
    ]);
    stream.write_all(slow.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.write_all(fast.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    // The cheap request overtakes the expensive one on the same connection —
    // that is the multiplexing win, and why responses carry the id echo.
    assert!(first.contains("\"id\":\"fast\""), "{first}");
    assert!(second.contains("\"id\":\"slow\""), "{second}");
    planes.stop();
}

#[test]
fn streaming_batch_answers_per_job_on_both_planes() {
    let planes = Planes::start(2, |_| {});
    let sources = [bench_source("append"), bench_source("map")];
    let request = wire(vec![
        ("id", Value::Int(3)),
        (
            "batch",
            Value::Arr(sources.iter().map(|s| Value::Str(s.clone())).collect()),
        ),
        ("stream", Value::Bool(true)),
    ]);

    // NDJSON: one line per job, then the terminal summary line.
    let mut stream = connect(planes.ndjson);
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream);
    let mut nd_lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        nd_lines.push(parse_content(line.as_bytes()));
    }

    // HTTP: the same frames as chunks of one chunked response.
    let http = http_request(planes.http, "POST", "/check", Some(&request));
    assert_eq!(http.status, 200);
    assert!(
        http.head
            .to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{}",
        http.head
    );
    let http_lines: Vec<Value> = std::str::from_utf8(&http.content)
        .unwrap()
        .lines()
        .map(|l| parse_content(l.as_bytes()))
        .collect();

    for lines in [&nd_lines, &http_lines] {
        assert_eq!(lines.len(), 3);
        for (seq, line) in lines[..2].iter().enumerate() {
            assert_eq!(line.get("id"), Some(&Value::Int(3)), "{line}");
            assert_eq!(line.get("seq"), Some(&Value::Int(seq as i64)), "{line}");
            let job = line.get("job").expect("job frame");
            assert_eq!(job.get("ok"), Some(&Value::Bool(true)), "{line}");
        }
        let end = &lines[2];
        assert_eq!(end.get("done"), Some(&Value::Bool(true)), "{end}");
        assert_eq!(end.get("jobs"), Some(&Value::Int(2)), "{end}");
        assert_eq!(end.get("jobs_ok"), Some(&Value::Int(2)), "{end}");
    }
    planes.stop();
}

#[test]
fn http_keep_alive_serves_sequential_requests() {
    let planes = Planes::start(2, |_| {});
    let mut stream = connect(planes.http);
    let body = "{\"stats\": true}";
    let one = format!(
        "POST /check HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    // Two pipelined requests on one connection: HTTP/1.1 keep-alive with
    // in-order responses (the half-duplex plane).
    stream.write_all(one.as_bytes()).unwrap();
    stream.write_all(one.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..2 {
        let response = read_one_http_response(&mut reader);
        assert_eq!(response.status, 200);
        assert!(
            response.head.contains("Connection: keep-alive"),
            "{}",
            response.head
        );
        parse_content(&response.content);
    }
    planes.stop();
}

/// Reads exactly one `Content-Length`-framed response off a keep-alive
/// connection.
fn read_one_http_response(reader: &mut BufReader<TcpStream>) -> HttpResponse {
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" {
            break;
        }
        head.push_str(&line);
    }
    let length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut content = vec![0u8; length];
    reader.read_exact(&mut content).expect("body");
    let status = head.split(' ').nth(1).unwrap().parse().unwrap();
    HttpResponse {
        status,
        head,
        content,
    }
}

// ---------------------------------------------------------------------------
// Malformed input and abuse
// ---------------------------------------------------------------------------

#[test]
fn oversized_frames_get_a_final_response_then_the_connection_closes() {
    let planes = Planes::start(2, |o| {
        o.limits = CodecLimits {
            max_request_bytes: 256,
            max_head_bytes: 256,
        };
    });

    // NDJSON: a line over the limit answers the structured refusal and
    // closes (there is no trustworthy next line boundary).
    let mut stream = connect(planes.ndjson);
    let long = format!("{{\"check\": \"{}\"}}\n", "x".repeat(1024));
    stream.write_all(long.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .expect("final response then EOF");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.contains("request too large"), "{text}");
    assert!(text.contains("\"max_request_bytes\":256"), "{text}");

    // HTTP: an oversized declared body is 413 + close, before the body is
    // even transmitted.
    let http = http_raw(
        planes.http,
        b"POST /check HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
    );
    assert_eq!(http.status, 413, "{}", http.head);
    assert!(http.head.contains("Connection: close"), "{}", http.head);

    // An oversized preamble is 431 + close.
    let mut huge_head = b"GET /metrics HTTP/1.1\r\n".to_vec();
    huge_head.extend_from_slice(format!("X-Junk: {}\r\n", "j".repeat(512)).as_bytes());
    huge_head.extend_from_slice(b"\r\n");
    let http = http_raw(planes.http, &huge_head);
    assert_eq!(http.status, 431, "{}", http.head);

    // The daemon survives all of it.
    let pulse = ndjson_request(planes.ndjson, "{\"stats\": true}");
    assert!(pulse.contains("\"cache\""), "{pulse}");
    planes.stop();
}

#[test]
fn truncated_requests_do_not_wedge_the_daemon() {
    let planes = Planes::start(2, |_| {});

    // A connection that dies mid-frame (no newline, no complete head) is
    // just garbage-collected; later traffic is unaffected.
    let mut nd = connect(planes.ndjson);
    nd.write_all(b"{\"check\": \"trunca").unwrap();
    drop(nd);
    let mut http = connect(planes.http);
    http.write_all(b"POST /check HTTP/1.1\r\nContent-Le")
        .unwrap();
    drop(http);

    let pulse = ndjson_request(planes.ndjson, "{\"stats\": true}");
    assert!(pulse.contains("\"cache\""), "{pulse}");
    let response = http_request(planes.http, "GET", "/cache/stats", None);
    assert_eq!(response.status, 200);
    planes.stop();
}

#[test]
fn slow_loris_partial_header_is_reaped_by_the_idle_timeout() {
    let planes = Planes::start(2, |o| o.idle_timeout = Some(Duration::from_millis(200)));
    let baseline = rel_obs::global().counter("serve.idle_disconnects").get();

    let mut loris = connect(planes.http);
    loris.write_all(b"POST /check HT").unwrap(); // ...and then nothing
    let started = Instant::now();
    let mut raw = Vec::new();
    loris
        .read_to_end(&mut raw)
        .expect("server must close the connection");
    assert!(raw.is_empty(), "{:?}", String::from_utf8_lossy(&raw));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "idle reap took {:?}",
        started.elapsed()
    );
    assert!(
        rel_obs::global().counter("serve.idle_disconnects").get() > baseline,
        "idle disconnect not counted"
    );
    let summary = planes.stop();
    assert!(summary.idle_disconnects >= 1, "{summary:?}");
}

// ---------------------------------------------------------------------------
// The dequeue-time disconnect gate
// ---------------------------------------------------------------------------

/// Makes `close()` send RST instead of FIN, simulating a client process
/// killed mid-request (plain `drop` performs an orderly half-close, which a
/// server must keep serving — `printf req | nc` relies on it).
#[cfg(target_os = "linux")]
fn abort_connection(stream: TcpStream) {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_LINGER)");
    drop(stream);
}

#[cfg(target_os = "linux")]
#[test]
fn disconnected_clients_queued_jobs_are_dropped_at_dequeue() {
    // One worker: occupy it, queue a job behind it, then kill that job's
    // connection abruptly.  Pre-reactor, the daemon would compute the
    // answer and discover the disconnect only at the failed write; the
    // dequeue-time gate must instead skip the work and count the drop.
    let planes = Planes::start(1, |_| {});
    let baseline = rel_obs::global().counter("serve.conn_errors").get();

    let mut busy = connect(planes.ndjson);
    let slow = wire(vec![
        ("id", Value::Str("slow".to_string())),
        ("check", Value::Str(bench_source("bsplit"))),
    ]);
    busy.write_all(slow.as_bytes()).unwrap();
    busy.write_all(b"\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Queue a cheap job behind the slow one, then die without warning.
    let mut doomed = connect(planes.ndjson);
    doomed.write_all(b"{\"stats\": true}\n").unwrap();
    std::thread::sleep(Duration::from_millis(100));
    abort_connection(doomed);

    // The busy request still answers (the worker was never disturbed)...
    let mut reader = BufReader::new(busy);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"id\":\"slow\""), "{response}");

    // ...and the dead client's job was dropped at dequeue, under the
    // existing serve.conn_errors counter.  Eventual: the worker has to
    // reach the queued job first.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if rel_obs::global().counter("serve.conn_errors").get() > baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dequeue-time disconnect drop never counted"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let summary = planes.stop();
    assert!(summary.conn_errors >= 1, "{summary:?}");
}
