//! Fault-injected replication fleets over the in-memory `SimNet`.
//!
//! The contract under test (DESIGN.md §11): a fleet of daemons shipping WAL
//! frames to each other converges to the *union* of every acknowledged
//! verdict, and a frame can only ever be applied after passing the same
//! checksum + engine-fingerprint validation as crash recovery — so a faulty
//! link (drops, duplicates, reorders, partitions) or a killed-and-restarted
//! node can delay convergence, never corrupt it.
//!
//! Each scenario builds a small fleet where every node is a real [`Service`]
//! with a real accept loop answering the replica wire protocol through
//! [`respond`], connected through the scripted [`SimNet`] transport.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rel_persist::{encode_frame, WalRecord};
use rel_service::json::Value;
use rel_service::{
    respond, NetFault, NetScript, ReplicaOptions, Service, ServiceConfig, SimConn, SimNet,
};

/// Fleets settle in well under a second on an idle machine; the margin is
/// for loaded CI runners.
const SETTLE: Duration = Duration::from_secs(30);

// ---------------------------------------------------------------------------
// Fleet harness
// ---------------------------------------------------------------------------

/// One daemon in the fleet: a service plus its accept pump on the `SimNet`.
struct Node {
    name: &'static str,
    service: Service,
    net: SimNet,
    kill: Arc<AtomicBool>,
}

impl Node {
    /// Starts a node listening as `name`, replicating to `peers`.
    fn start(net: &SimNet, name: &'static str, peers: &[&str]) -> Node {
        Node::start_with(net, name, peers, |_| {})
    }

    fn start_with(
        net: &SimNet,
        name: &'static str,
        peers: &[&str],
        tune: impl FnOnce(&mut ReplicaOptions),
    ) -> Node {
        let service = Service::new(ServiceConfig {
            workers: 1,
            cache_shards: 4,
        });
        let kill = Arc::new(AtomicBool::new(false));
        let inbox = net.listen(name);
        {
            let service = service.clone();
            let kill = Arc::clone(&kill);
            thread::spawn(move || {
                while let Ok(conn) = inbox.recv() {
                    if kill.load(Ordering::SeqCst) {
                        return;
                    }
                    let service = service.clone();
                    let kill = Arc::clone(&kill);
                    thread::spawn(move || serve_conn(&service, &kill, conn));
                }
            });
        }
        let mut options = ReplicaOptions {
            peers: peers.iter().map(|p| p.to_string()).collect(),
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            ..ReplicaOptions::default()
        };
        tune(&mut options);
        if !options.peers.is_empty() {
            service.enable_replication(Arc::new(net.endpoint(name)), options);
        }
        Node {
            name,
            service,
            net: net.clone(),
            kill,
        }
    }

    /// `kill -9`: tears down the listener and abandons the service state.
    /// Existing connection handlers die at their next receive.
    fn kill(&self) {
        self.kill.store(true, Ordering::SeqCst);
        self.net.unlisten(self.name);
        self.service.shutdown_replication();
    }

    /// Orderly stop at the end of a scenario.
    fn stop(&self) {
        self.kill();
    }
}

/// The per-connection server loop: the replica wire protocol is plain
/// daemon traffic, so every inbound line goes through [`respond`].
fn serve_conn(service: &Service, kill: &AtomicBool, mut conn: SimConn) {
    loop {
        if kill.load(Ordering::SeqCst) {
            return;
        }
        let line = match conn.wire.recv() {
            Ok(line) => line,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
            Err(_) => return,
        };
        let response = respond(service, &line);
        if conn.wire.send(&response.to_string()).is_err() {
            return;
        }
    }
}

/// Waits until every outbound session in the fleet is connected with zero
/// lag — the quiescent state after which stores are fully shipped.
fn await_settled(nodes: &[&Node]) {
    let deadline = Instant::now() + SETTLE;
    loop {
        let settled = nodes.iter().all(|n| {
            let status = n.service.replica_status();
            status.peers.iter().all(|p| p.connected && p.lag == 0)
        });
        if settled {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never settled: {:#?}",
            nodes
                .iter()
                .map(|n| (n.name, n.service.replica_status()))
                .collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// The union cardinality the fleet must converge to: verdict keys are
/// deterministic across instances, so an offline service that checks every
/// source holds exactly the union of the fleet's verdicts.
fn union_entries(sources: &[String]) -> u64 {
    let oracle = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });
    for src in sources {
        oracle.check_source(src).expect("parse");
    }
    oracle.cache_stats().entries
}

/// Waits until every node holds the full union of verdicts.  Unlike
/// [`await_settled`], this is a receiver-side condition: it cannot be
/// fooled by a sender still acking into a silently dead connection (the
/// kill scenarios), only satisfied once heartbeats notice and anti-entropy
/// actually heals the restarted peer.
fn await_converged(nodes: &[&Node], expected_entries: u64) {
    let deadline = Instant::now() + SETTLE;
    loop {
        if nodes
            .iter()
            .all(|n| n.service.cache_stats().entries == expected_entries)
        {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "fleet never converged to {expected_entries} entries: {:?}",
            nodes
                .iter()
                .map(|n| (n.name, n.service.cache_stats().entries))
                .collect::<Vec<_>>()
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// A program whose entailment queries are distinct per `depth` (the cost
/// bound of the nested body differs), with names parameterized by `tag` so
/// renamed copies re-check defs against the same queries.
fn source(tag: &str, depth: usize) -> String {
    let mut body = String::from("b");
    for _ in 0..depth {
        body = format!("neg_{tag} ({body})");
    }
    format!(
        "def neg_{tag} : boolr -> boolr = lam b. if b then false else true;\n\
         def use_{tag} : boolr -> boolr = lam b. {body};"
    )
}

/// Asserts `node` answers every program without any solver work: the
/// replicated def index skips unchanged defs, and any re-checked def's
/// queries hit the replicated validity cache.
fn assert_warm(node: &Node, sources: &[String]) {
    for src in sources {
        let report = node.service.check_source(src).expect("parse");
        assert_eq!(
            report.cache_misses(),
            0,
            "node {} had to re-solve `{}`",
            node.name,
            &src[..src.len().min(60)]
        );
    }
}

/// Asserts no node ever applied a frame that failed validation — the
/// zero-fabrication invariant.
fn assert_no_rejects(nodes: &[&Node]) {
    for node in nodes {
        let inbound = node.service.replica_status().inbound;
        assert_eq!(
            inbound.frames_rejected, 0,
            "node {} rejected frames: {inbound:?}",
            node.name
        );
    }
}

// ---------------------------------------------------------------------------
// Fleet scenarios
// ---------------------------------------------------------------------------

#[test]
fn two_nodes_converge_over_a_faulty_link() {
    let net = SimNet::new();
    // Drop, duplicate and reorder scripted into both directions of the
    // replica traffic: retry/backoff plus idempotent application must
    // absorb all of it.
    net.script(
        "a",
        "b",
        NetScript::new()
            .fault_at(3, NetFault::Drop)
            .fault_at(5, NetFault::Duplicate)
            .fault_at(7, NetFault::Reorder)
            .fault_at(11, NetFault::Sever)
            .fault_at(15, NetFault::Drop),
    );
    net.script(
        "b",
        "a",
        NetScript::new()
            .fault_at(2, NetFault::Drop)
            .fault_at(6, NetFault::Sever)
            .fault_at(9, NetFault::Duplicate),
    );
    let a = Node::start(&net, "a", &["b"]);
    let b = Node::start(&net, "b", &["a"]);

    // Different work on each side: convergence is the union, not one-way
    // mirroring.
    let on_a: Vec<String> = (1..=3).map(|d| source("left", d)).collect();
    let on_b: Vec<String> = (1..=3).map(|d| source("right", d)).collect();
    for src in &on_a {
        a.service.check_source(src).expect("parse");
    }
    for src in &on_b {
        b.service.check_source(src).expect("parse");
    }

    await_settled(&[&a, &b]);
    let everything: Vec<String> = on_a.iter().chain(&on_b).cloned().collect();
    assert_warm(&a, &everything);
    assert_warm(&b, &everything);
    assert_no_rejects(&[&a, &b]);

    // The faulty link really fired: severs force reconnects.
    let status = a.service.replica_status();
    assert!(
        status.peers[0].reconnects >= 1,
        "sever never exercised the retry path: {status:?}"
    );
    a.stop();
    b.stop();
}

#[test]
fn chain_replication_is_transitive() {
    // a ships only to b, b only to c: frames applied at b re-enter b's own
    // WAL/observer path and ship onward, so work done at a lands at c.
    let net = SimNet::new();
    let a = Node::start(&net, "a", &["b"]);
    let b = Node::start(&net, "b", &["c"]);
    let c = Node::start(&net, "c", &[]);

    let programs: Vec<String> = (1..=3).map(|d| source("chain", d)).collect();
    for src in &programs {
        a.service.check_source(src).expect("parse");
    }

    await_settled(&[&a, &b]);
    // b's outbound lag covers frames b re-published from a's stores; once
    // both hops report zero lag the tail node holds everything.
    assert_warm(&c, &programs);
    // A renamed copy re-checks defs (fresh hashes) but every entailment
    // query must hit c's replicated validity cache — verdict replication,
    // not just def skipping.
    let renamed: Vec<String> = (1..=3).map(|d| source("renamed", d)).collect();
    assert_warm(&c, &renamed);
    assert_no_rejects(&[&a, &b, &c]);
    a.stop();
    b.stop();
    c.stop();
}

#[test]
fn partition_heals_by_anti_entropy() {
    let net = SimNet::new();
    // queue: 2 so the partition overflows the replication queue and the
    // session degrades to catch-up instead of buffering unboundedly.
    let a = Node::start_with(&net, "a", &["b"], |o| o.queue = 2);
    let b = Node::start(&net, "b", &[]);

    let before = [source("pre", 1)];
    a.service.check_source(&before[0]).expect("parse");
    await_settled(&[&a]);

    net.partition("a", "b");
    // Work done during the partition: more stores than the queue holds.
    let during: Vec<String> = (1..=4).map(|d| source("cut", d)).collect();
    for src in &during {
        a.service.check_source(src).expect("parse");
    }
    // Let the session discover the dead link and start backing off.
    let deadline = Instant::now() + SETTLE;
    loop {
        let peer = &a.service.replica_status().peers[0];
        if !peer.connected && peer.reconnects >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "partition never observed");
        thread::sleep(Duration::from_millis(20));
    }

    net.heal("a", "b");
    await_settled(&[&a]);
    let everything: Vec<String> = before.iter().chain(&during).cloned().collect();
    assert_warm(&b, &everything);
    assert_no_rejects(&[&a, &b]);

    let peer = &a.service.replica_status().peers[0];
    assert!(
        peer.queue_dropped > 0 || peer.snapshots_sent > 0 || peer.acked > 0,
        "healed session shows no anti-entropy evidence: {peer:?}"
    );
    a.stop();
    b.stop();
}

#[test]
fn killed_node_restarts_empty_and_heals_by_snapshot() {
    let net = SimNet::new();
    // ring: 1 forces any meaningful catch-up past the ring, so the restart
    // heals by full snapshot transfer rather than suffix replay.
    let a = Node::start_with(&net, "a", &["b"], |o| o.ring = 1);
    let b = Node::start(&net, "b", &[]);

    let first: Vec<String> = (1..=2).map(|d| source("one", d)).collect();
    for src in &first {
        a.service.check_source(src).expect("parse");
    }
    await_settled(&[&a]);

    // kill -9: b's listener and state vanish mid-stream.
    b.kill();
    let second: Vec<String> = (1..=2).map(|d| source("two", d)).collect();
    for src in &second {
        a.service.check_source(src).expect("parse");
    }

    // Restart: a *fresh* service re-listens under the same address.  a's
    // session may still be acking into the dead wire — the heartbeat
    // notices, reconnects, reads applied=0 (far behind a's one-frame
    // ring), and must heal by full snapshot.
    let b2 = Node::start(&net, "b", &[]);
    let everything: Vec<String> = first.iter().chain(&second).cloned().collect();
    await_converged(&[&a, &b2], union_entries(&everything));
    await_settled(&[&a]);
    assert_warm(&b2, &everything);
    assert_no_rejects(&[&a, &b2]);
    let peer = &a.service.replica_status().peers[0];
    assert!(
        peer.snapshots_sent >= 1,
        "restart must heal by snapshot transfer: {peer:?}"
    );
    assert!(
        peer.reconnects >= 1,
        "the kill must force a reconnect: {peer:?}"
    );
    a.stop();
    b2.stop();
}

#[test]
fn three_node_fleet_survives_kill_partition_and_restart() {
    // The full chaos matrix on one fleet: a ring of three daemons, one
    // partition, one kill -9 + restart, new work at every stage — and the
    // survivors still converge to the union with zero fabricated verdicts.
    let net = SimNet::new();
    let a = Node::start(&net, "a", &["b", "c"]);
    let b = Node::start(&net, "b", &["c", "a"]);
    let c = Node::start(&net, "c", &["a", "b"]);

    let stage1: Vec<String> = (1..=2).map(|d| source("s1", d)).collect();
    for src in &stage1 {
        a.service.check_source(src).expect("parse");
    }
    await_settled(&[&a, &b, &c]);

    net.partition("a", "b");
    let stage2 = vec![source("s2", 1)];
    b.service.check_source(&stage2[0]).expect("parse");

    c.kill();
    let stage3 = vec![source("s3", 1)];
    a.service.check_source(&stage3[0]).expect("parse");

    net.heal("a", "b");
    let c2 = Node::start(&net, "c", &["a", "b"]);
    let everything: Vec<String> = stage1
        .iter()
        .chain(&stage2)
        .chain(&stage3)
        .cloned()
        .collect();
    await_converged(&[&a, &b, &c2], union_entries(&everything));
    await_settled(&[&a, &b, &c2]);
    for node in [&a, &b, &c2] {
        assert_warm(node, &everything);
    }
    assert_no_rejects(&[&a, &b, &c2]);
    a.stop();
    b.stop();
    c2.stop();
}

// ---------------------------------------------------------------------------
// The validation gate, frame by frame
// ---------------------------------------------------------------------------

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn frame_request(seq: u64, data: &str) -> String {
    format!("{{\"replica\":\"frame\",\"node\":\"matrix\",\"seq\":{seq},\"data\":\"{data}\"}}")
}

fn inbound_counter(service: &Service, key: &str) -> i64 {
    respond(service, "{\"replica\":\"status\"}")
        .get("replica")
        .and_then(|r| r.get("inbound"))
        .and_then(|i| i.get(key))
        .and_then(Value::as_int)
        .expect("inbound counter")
}

/// The unit matrix for inbound validation: a mismatched or corrupted frame
/// is *never* applied — it answers the structured error and bumps
/// `frames_rejected` — while the same bytes with the right fingerprint ack.
#[test]
fn fingerprint_mismatch_matrix_rejects_without_applying() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });
    let fp = service.engine().fingerprint();
    let record = WalRecord::Compaction { folded: 0 };

    // A foreign engine's frame: valid checksum, wrong fingerprint.
    let foreign = encode_frame(fp ^ 0xdead_beef, &record);
    let response = respond(&service, &frame_request(1, &to_hex(&foreign)));
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("replica-fingerprint-mismatch"),
        "{response}"
    );

    // A bit flip in the payload: checksum reject.
    let mut corrupt = encode_frame(fp, &record);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    let response = respond(&service, &frame_request(1, &to_hex(&corrupt)));
    assert!(
        response.get("error").is_some(),
        "corrupt frame must not ack: {response}"
    );

    // A torn frame: truncated mid-payload.
    let whole = encode_frame(fp, &record);
    let torn = &whole[..whole.len() - 2];
    let response = respond(&service, &frame_request(1, &to_hex(torn)));
    assert!(
        response.get("error").is_some(),
        "torn frame must not ack: {response}"
    );

    // Not hex at all.
    let response = respond(&service, &frame_request(1, "zz"));
    assert!(response.get("error").is_some(), "{response}");

    // Every reject was counted; nothing was applied.
    assert_eq!(inbound_counter(&service, "frames_rejected"), 4);
    assert_eq!(inbound_counter(&service, "frames_applied"), 0);

    // The same record under the right fingerprint validates and acks.
    let good = encode_frame(fp, &record);
    let response = respond(&service, &frame_request(1, &to_hex(&good)));
    assert_eq!(
        response.get("replica").and_then(Value::as_str),
        Some("ack"),
        "{response}"
    );
    assert_eq!(
        response.get("applied").and_then(Value::as_int),
        Some(1),
        "{response}"
    );
    // A compaction marker advances the position but carries no state, so it
    // lands under the duplicate counter, not applied.
    assert_eq!(inbound_counter(&service, "frames_applied"), 0);
    assert_eq!(inbound_counter(&service, "frames_duplicate"), 1);
    assert_eq!(inbound_counter(&service, "frames_rejected"), 4);
}

/// A hello with a foreign fingerprint parks the handshake: the structured
/// mismatch error, no state answer, and the reject is counted under
/// `hellos_rejected` — never `frames_rejected`, which is reserved for
/// frame validation failures (a rolling engine upgrade must not read as
/// frame corruption).
#[test]
fn foreign_fingerprint_hello_is_refused() {
    let service = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });
    let fp = service.engine().fingerprint();

    let hello = |fp_hex: &str| {
        respond(
            &service,
            &format!("{{\"replica\":\"hello\",\"v\":1,\"node\":\"h\",\"fp\":\"{fp_hex}\"}}"),
        )
    };

    let refused = hello(&format!("{:016x}", fp ^ 1));
    assert_eq!(
        refused.get("error").and_then(Value::as_str),
        Some("replica-fingerprint-mismatch"),
        "{refused}"
    );

    // The right fingerprint answers the state position.
    let state = hello(&format!("{fp:016x}"));
    assert_eq!(
        state.get("replica").and_then(Value::as_str),
        Some("state"),
        "{state}"
    );
    assert_eq!(state.get("applied").and_then(Value::as_int), Some(0));
    assert_eq!(
        state.get("fp").and_then(Value::as_str),
        Some(format!("{fp:016x}").as_str())
    );

    // An unsupported protocol version is refused before the fingerprint.
    let response = respond(
        &service,
        &format!("{{\"replica\":\"hello\",\"v\":99,\"node\":\"h\",\"fp\":\"{fp:016x}\"}}"),
    );
    assert!(
        response
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("version"),
        "{response}"
    );
    assert_eq!(inbound_counter(&service, "hellos_rejected"), 1);
    assert_eq!(inbound_counter(&service, "frames_rejected"), 0);
}

/// Health treats a never-connected peer as booting, not down: a fresh
/// daemon with peers configured answers ready until the session burns
/// through the connect grace budget, then flips to `peers-down`.
#[test]
fn health_grants_never_connected_peers_a_boot_grace() {
    let net = SimNet::new();
    let service = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });

    // A huge backoff parks the session after its first failed connect:
    // one attempt is inside the grace, so the probe stays ready.
    service.enable_replication(
        Arc::new(net.endpoint("grace-a")),
        ReplicaOptions {
            peers: vec!["ghost".to_string()],
            backoff_base_ms: 60_000,
            backoff_cap_ms: 60_000,
            ..ReplicaOptions::default()
        },
    );
    let deadline = Instant::now() + SETTLE;
    loop {
        let status = service.replica_status();
        let attempted = status.peers.iter().any(|p| p.reconnects >= 1);
        let health = service.health();
        assert!(
            health.ready,
            "one failed connect must stay inside the boot grace: {health:?}"
        );
        if attempted || Instant::now() >= deadline {
            assert!(attempted, "session never attempted a connect");
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }
    service.shutdown_replication();

    // A tight backoff exhausts the grace in tens of milliseconds: the
    // same unreachable peer is then provably down.
    service.enable_replication(
        Arc::new(net.endpoint("grace-b")),
        ReplicaOptions {
            peers: vec!["ghost".to_string()],
            backoff_base_ms: 5,
            backoff_cap_ms: 20,
            ..ReplicaOptions::default()
        },
    );
    let deadline = Instant::now() + SETTLE;
    loop {
        let health = service.health();
        if !health.ready {
            assert_eq!(health.reasons, vec!["peers-down".to_string()]);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "unreachable peer never established as down"
        );
        thread::sleep(Duration::from_millis(5));
    }
    service.shutdown_replication();
    assert!(service.health().ready, "no peers configured means ready");
}

/// A peer that completed a handshake and then died is down without any
/// grace: `ever_connected` distinguishes "was up, now is not" from a
/// session still booting.
#[test]
fn health_reports_peers_down_once_a_connected_peer_dies() {
    let net = SimNet::new();
    let b = Node::start(&net, "health-b", &[]);
    // A huge backoff keeps reconnect attempts below the boot grace, so
    // only the ever-connected path can flip the probe.
    let a = Node::start_with(&net, "health-a", &["health-b"], |o| {
        o.backoff_base_ms = 60_000;
        o.backoff_cap_ms = 60_000;
    });
    await_settled(&[&a]);
    assert!(a.service.health().ready, "connected fleet must probe ready");

    b.kill();
    let deadline = Instant::now() + SETTLE;
    loop {
        let health = a.service.health();
        if !health.ready {
            assert_eq!(health.reasons, vec!["peers-down".to_string()]);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead peer never reported down: {:?}",
            a.service.replica_status()
        );
        thread::sleep(Duration::from_millis(10));
    }
    a.stop();
}

/// Regression: the hub's snapshot source must not capture the service (or
/// strong store Arcs) — the store observers hold the hub, so that capture
/// is an Arc cycle and a service dropped *without* `shutdown_replication`
/// (library and test users) would leak the engine, persistence state and
/// caches for the lifetime of the parked session threads.
#[test]
fn dropping_a_service_without_shutdown_frees_it() {
    let net = SimNet::new();
    let service = Service::new(ServiceConfig {
        workers: 1,
        cache_shards: 4,
    });
    let engine = Arc::downgrade(service.engine());
    service.enable_replication(
        Arc::new(net.endpoint("leak-probe")),
        ReplicaOptions {
            peers: vec!["ghost".to_string()],
            backoff_base_ms: 60_000,
            backoff_cap_ms: 60_000,
            ..ReplicaOptions::default()
        },
    );
    drop(service);
    assert!(
        engine.upgrade().is_none(),
        "service state leaked through the replication hub"
    );
}
