//! Concurrency test: a batch over the bundled benchmark suite on a multi-
//! worker pool must produce verdicts identical to plain sequential checking,
//! and a warm validity cache must actually get hit.

use birelcost::Engine;
use rel_service::{BatchJob, Service, ServiceConfig};
use rel_suite::{all_benchmarks, VerificationStatus};
use rel_syntax::parse_program;

/// Two replicas of every *verified* benchmark.  The unverified programs are
/// excluded for the same reason the seed's own suite test excludes them:
/// their constraint problems take the numeric solver layer minutes, not
/// milliseconds (see tests/suite_typechecks.rs).  Replicas give the scheduler
/// more jobs than workers and give the cache repeats to hit.
fn suite_jobs() -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    for copy in 0..2 {
        jobs.extend(
            all_benchmarks()
                .into_iter()
                .filter(|b| b.status == VerificationStatus::Verified)
                .map(|b| BatchJob::new(format!("{}#{copy}", b.name), b.source)),
        );
    }
    jobs
}

/// Per-def verdicts of one batch run, flattened as (job, def, ok) triples.
fn verdicts(results: &[rel_service::BatchResult]) -> Vec<(String, String, bool)> {
    results
        .iter()
        .flat_map(|r| {
            let report = r.outcome.as_ref().expect("all benchmarks parse");
            report
                .defs
                .iter()
                .map(|d| (r.name.clone(), d.name.clone(), d.ok))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn concurrent_batch_matches_sequential_and_warm_cache_hits() {
    // Baseline: the plain engine, no cache, no threads — the seed behaviour.
    let engine = Engine::new();
    let baseline: Vec<(String, String, bool)> = suite_jobs()
        .iter()
        .flat_map(|job| {
            let program = parse_program(&job.source).expect("benchmark parses");
            engine
                .check_program(&program)
                .defs
                .iter()
                .map(|d| (job.name.clone(), d.name.clone(), d.ok))
                .collect::<Vec<_>>()
        })
        .collect();

    // 4 workers regardless of the host's parallelism: the scheduler must be
    // correct even when threads outnumber cores.
    let service = Service::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
    });
    let jobs = suite_jobs();

    let cold = service.check_batch(&jobs);
    assert_eq!(
        verdicts(&cold),
        baseline,
        "cold concurrent batch diverged from sequential checking"
    );

    // Warm pass: identical verdicts again, now served from the cache.
    let hits_before = service.cache_stats().hits;
    let warm = service.check_batch(&jobs);
    assert_eq!(
        verdicts(&warm),
        baseline,
        "warm concurrent batch diverged from sequential checking"
    );
    let stats = service.cache_stats();
    assert!(
        stats.hits > hits_before,
        "warm batch over the suite must hit the validity cache (stats: {stats:?})"
    );
    assert!(stats.entries > 0);
}

#[test]
fn repeated_concurrent_batches_are_deterministic() {
    let service = Service::new(ServiceConfig {
        workers: 4,
        cache_shards: 8,
    });
    let jobs = suite_jobs();
    let first = verdicts(&service.check_batch(&jobs));
    for _ in 0..2 {
        assert_eq!(verdicts(&service.check_batch(&jobs)), first);
    }
}
