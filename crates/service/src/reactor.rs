//! The non-blocking serving plane: one readiness loop multiplexing many
//! connections over the shared worker pool.
//!
//! The PR 1–7 daemon dedicated one OS thread to each connection; this module
//! replaces that with a `poll(2)`-driven reactor (an in-tree readiness loop —
//! the build environment is offline, so no tokio/mio) plus a bounded job
//! queue drained by a fixed worker pool:
//!
//! ```text
//!            ┌ listener (NDJSON) ┐             ┌ worker 0 ┐
//!  clients ──┤                   ├─ reactor ───┤ worker 1 ├── Service
//!            └ listener (HTTP)  ─┘   poll(2)   └ worker N ┘   (engine,
//!                 nonblocking        1 thread     bounded      caches)
//!                 sockets            owns conns   queue
//! ```
//!
//! * The **reactor thread** owns every connection: it accepts, reads bytes,
//!   runs each connection's [`Codec`] state machine, enqueues decoded
//!   requests, writes completed responses, and enforces per-request
//!   deadlines and per-connection idle timeouts.
//! * **Workers** pull jobs off the bounded queue and answer them against the
//!   shared [`Service`].  At dequeue time a job whose connection already
//!   closed is dropped (counted under `serve.conn_errors` — the PR 7 design
//!   would have computed it and discovered the disconnect only when the
//!   response write failed), and a job already past its deadline is answered
//!   with the structured deadline error without doing the work.
//! * **Backpressure is explicit**: when the queue is full the reactor
//!   immediately answers `{"error": "backpressure", ...}` (HTTP 503) instead
//!   of buffering unboundedly — the client knows to back off, and the
//!   daemon's memory stays bounded no matter the offered load.
//! * **Cancellation** reuses the PR 7 deadline machinery: a request that
//!   blows [`ReactorOptions::request_timeout`] is answered with the same
//!   `{"error": "deadline", "timeout_ms": N}` object the blocking loop
//!   produces.  If a worker is already running it, the work completes in the
//!   background (its cache stores still land) and the late response is
//!   dropped; if it is still queued, the dequeue check skips the work
//!   entirely.
//! * **Streaming**: `{"batch": [...], "stream": true}` answers one frame per
//!   job as it finishes (NDJSON lines on one plane, HTTP chunks on the
//!   other) and a terminal `{"done": true, ...}` summary, so a client
//!   replaying a large suite sees results as they land.
//!
//! Responses on the NDJSON plane complete in *finish* order, not submission
//! order — pipelining clients tag requests with `"id"` and match on the
//! echo.  The HTTP plane is half-duplex per connection (HTTP/1.1 responses
//! must land in request order), so multiplexing there comes from many
//! connections.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::codec::{make_codec, Codec, CodecKind, CodecLimits, Decode};
use crate::daemon;
use crate::json::Value;
use crate::service::Service;

/// Knobs for [`serve_reactor`].
#[derive(Debug, Clone)]
pub struct ReactorOptions {
    /// Worker threads answering requests (defaults to the machine's
    /// parallelism).
    pub workers: usize,
    /// Bound on queued-but-not-started requests across all connections;
    /// excess requests are answered with an explicit backpressure error.
    pub max_queue: usize,
    /// Wall-clock budget per request (the PR 7 deadline machinery); `None`
    /// is unbounded.
    pub request_timeout: Option<Duration>,
    /// Disconnect a connection with no traffic and no in-flight work for
    /// this long (also what reaps slow-loris half-requests).
    pub idle_timeout: Option<Duration>,
    /// Codec size limits (request line / HTTP body / header caps).
    pub limits: CodecLimits,
}

impl Default for ReactorOptions {
    fn default() -> Self {
        let workers = crate::service::available_workers();
        ReactorOptions {
            workers,
            max_queue: (workers * 32).max(64),
            request_timeout: None,
            idle_timeout: None,
            limits: CodecLimits::default(),
        }
    }
}

/// Counters for one reactor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorSummary {
    /// Requests decoded (including malformed ones answered with errors).
    pub requests: u64,
    /// Responses that carried an `error` field.
    pub errors: u64,
    /// Requests answered with the structured deadline error.
    pub deadlines: u64,
    /// Requests refused with the structured backpressure error.
    pub backpressure: u64,
    /// Connections that died with work pending: jobs dropped at dequeue
    /// after a disconnect, plus failed response writes.
    pub conn_errors: u64,
    /// Connections reaped by the idle timeout.
    pub idle_disconnects: u64,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Whether the run ended on a shutdown request rather than an error.
    pub shutdown: bool,
}

// ---------------------------------------------------------------------------
// Readiness (poll(2) on Linux, a sleep-scan fallback elsewhere)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    // std already links libc on Linux; declaring the one symbol we need
    // keeps the reactor dependency-free in an offline build.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)` with EINTR retry.  `revents` is populated in place.
    pub fn wait(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Readiness of one registered source after a wait.
#[derive(Debug, Clone, Copy, Default)]
struct Ready {
    readable: bool,
    hangup: bool,
}

/// One readiness wait over (listeners ∪ wake pipe ∪ connections).
///
/// On Linux this is one `poll(2)` call; elsewhere every registered source is
/// reported ready and the loop relies on nonblocking ops returning
/// `WouldBlock`, with a small sleep to avoid spinning.
#[cfg(target_os = "linux")]
fn wait_ready(
    sources: &[(&TcpStream, bool, bool)],
    listeners: &[&TcpListener],
    timeout: Duration,
) -> io::Result<(Vec<Ready>, Vec<bool>)> {
    use std::os::unix::io::AsRawFd;
    let mut fds: Vec<sys::PollFd> = Vec::with_capacity(sources.len() + listeners.len());
    for (stream, want_read, want_write) in sources {
        let mut events = 0i16;
        if *want_read {
            events |= sys::POLLIN;
        }
        if *want_write {
            events |= sys::POLLOUT;
        }
        fds.push(sys::PollFd {
            fd: stream.as_raw_fd(),
            events,
            revents: 0,
        });
    }
    for listener in listeners {
        fds.push(sys::PollFd {
            fd: listener.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
    }
    let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    sys::wait(&mut fds, timeout_ms)?;
    let ready = fds[..sources.len()]
        .iter()
        .map(|fd| Ready {
            readable: fd.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
            hangup: fd.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
        })
        .collect();
    let accept_ready = fds[sources.len()..]
        .iter()
        .map(|fd| fd.revents & sys::POLLIN != 0)
        .collect();
    Ok((ready, accept_ready))
}

#[cfg(not(target_os = "linux"))]
fn wait_ready(
    sources: &[(&TcpStream, bool, bool)],
    listeners: &[&TcpListener],
    timeout: Duration,
) -> io::Result<(Vec<Ready>, Vec<bool>)> {
    // Portable fallback: report everything ready and lean on nonblocking
    // I/O; the sleep bounds the scan rate.
    std::thread::sleep(timeout.min(Duration::from_millis(2)));
    Ok((
        sources
            .iter()
            .map(|(_, r, _)| Ready {
                readable: *r,
                hangup: false,
            })
            .collect(),
        listeners.iter().map(|_| true).collect(),
    ))
}

// ---------------------------------------------------------------------------
// Jobs, tokens, queues
// ---------------------------------------------------------------------------

/// Reactor-side identity of one request, shared with the worker that answers
/// it.  The `answered` flag is the cancellation handshake: whichever side
/// transitions it first (worker completing, or the reactor's deadline scan)
/// owns the response; the loser drops its frames.
#[derive(Debug)]
struct RequestToken {
    conn_id: u64,
    codec: CodecKind,
    /// Set by the reactor when the connection dies; checked by workers at
    /// dequeue so a dead client's queued work is skipped, not computed.
    conn_closed: Arc<AtomicBool>,
    answered: AtomicBool,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// The request's `id` field, echoed into reactor-built responses
    /// (deadline errors; workers echo it through `respond_parsed`).
    id: Option<Value>,
    /// Configured timeout in ms (for the deadline error payload).
    timeout_ms: u64,
}

impl RequestToken {
    /// Claims the right to answer; `true` exactly once.
    fn try_answer(&self) -> bool {
        !self.answered.swap(true, Ordering::AcqRel)
    }

    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// One queued request.
struct Job {
    token: Arc<RequestToken>,
    request: Value,
    /// `{"batch": [...], "stream": true}` — answer frame-by-frame.
    streaming: bool,
}

/// A response frame traveling from a worker back to the reactor.
enum Frame {
    /// The single response of a non-streamed request.
    Response(Value),
    /// Opens a streamed response.
    StreamBegin,
    /// One streamed item.
    StreamItem(Value),
    /// The terminal summary of a streamed response.
    StreamEnd(Value),
}

struct Completion {
    token: Arc<RequestToken>,
    frame: Frame,
}

/// The bounded in-flight queue.  `try_push` refuses instead of blocking —
/// refusal is the backpressure signal the reactor turns into an explicit
/// error response.
struct JobQueue {
    inner: Mutex<(std::collections::VecDeque<Job>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new((std::collections::VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if inner.1 || inner.0.len() >= self.cap {
            return Err(job);
        }
        inner.0.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            inner = self.ready.wait(inner).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("job queue poisoned").1 = true;
        self.ready.notify_all();
    }
}

/// State shared between the reactor thread and the workers.
struct Shared {
    service: Service,
    queue: JobQueue,
    completions: Mutex<Vec<Completion>>,
    /// Write end of the wake pipe: one byte per completion batch, so the
    /// reactor's poll wakes as soon as a response is ready.
    waker: Mutex<TcpStream>,
    /// Jobs dropped at dequeue because their connection had closed.
    dropped_for_closed_conn: AtomicU64,
    /// Jobs answered with the deadline error at dequeue (already expired
    /// before any work started).
    expired_at_dequeue: AtomicU64,
}

impl Shared {
    /// Queues a frame for the reactor and kicks its poll loop.
    fn complete(&self, token: Arc<RequestToken>, frame: Frame) {
        self.completions
            .lock()
            .expect("completions poisoned")
            .push(Completion { token, frame });
        let mut waker = self.waker.lock().expect("waker poisoned");
        wake(&mut waker);
    }
}

/// Writes one wake byte to the (nonblocking) wake pipe without ever
/// blocking a worker or losing a wakeup:
///
/// * `WouldBlock` means the pipe's buffer is full — at least one unread
///   byte is already pending, so the reactor's next poll wakes regardless
///   and this byte is redundant.
/// * `Interrupted` retries: a signal landing between the buffer push in
///   [`Shared::complete`] and the write must not swallow the wakeup.
/// * `Ok(0)`/other errors mean the reactor side is gone (shutdown teardown);
///   nothing to wake.
fn wake(waker: &mut TcpStream) {
    loop {
        match waker.write(&[1]) {
            Ok(_) => return,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// The structured deadline error — field-for-field the object the blocking
/// loop's deadline machinery produces, so both serving planes (and both
/// codecs) answer identical content.
fn deadline_payload(timeout_ms: u64, id: Option<&Value>) -> Value {
    let mut fields = vec![
        ("error".to_string(), Value::Str("deadline".to_string())),
        ("timeout_ms".to_string(), Value::Int(timeout_ms as i64)),
    ];
    if let Some(id) = id {
        fields.insert(0, ("id".to_string(), id.clone()));
    }
    Value::Obj(fields)
}

/// The structured backpressure refusal.
fn backpressure_payload(max_queue: usize, id: Option<&Value>) -> Value {
    let mut fields = vec![
        ("error".to_string(), Value::Str("backpressure".to_string())),
        ("max_queue".to_string(), Value::Int(max_queue as i64)),
    ];
    if let Some(id) = id {
        fields.insert(0, ("id".to_string(), id.clone()));
    }
    Value::Obj(fields)
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let now = Instant::now();
        // Dequeue-time gates: never burn solver time for a client that is
        // gone, and answer an already-blown deadline without starting.
        if job.token.conn_closed.load(Ordering::Acquire) {
            shared
                .dropped_for_closed_conn
                .fetch_add(1, Ordering::Relaxed);
            rel_obs::counter!("serve.conn_errors").incr();
            continue;
        }
        if job.token.expired(now) && job.token.try_answer() {
            shared.expired_at_dequeue.fetch_add(1, Ordering::Relaxed);
            let payload = deadline_payload(job.token.timeout_ms, job.token.id.as_ref());
            shared.complete(job.token, Frame::Response(payload));
            continue;
        }
        if job.streaming {
            stream_batch(shared, &job);
            continue;
        }
        let payload = daemon::respond_parsed(&shared.service, &job.request);
        // The deadline scan may have answered while we were computing; the
        // work still warmed the caches, only the late response is dropped.
        if job.token.try_answer() {
            shared.complete(job.token, Frame::Response(payload));
        }
    }
}

/// Answers `{"batch": [...], "stream": true}`: one frame per job in
/// submission order as each finishes, then a terminal summary.  Claims the
/// answer up front — once frames are flowing, the deadline scan must not
/// interleave its own response into the stream.
fn stream_batch(shared: &Shared, job: &Job) {
    if !job.token.try_answer() {
        return; // deadline fired while queued
    }
    let id = job.token.id.as_ref();
    shared.complete(Arc::clone(&job.token), Frame::StreamBegin);
    let sources: Vec<String> = match job.request.get("batch") {
        Some(Value::Arr(items)) if items.iter().all(|v| v.as_str().is_some()) => items
            .iter()
            .map(|v| v.as_str().expect("checked").to_string())
            .collect(),
        _ => {
            shared.service.metrics().counter("serve.errors").incr();
            let mut payload = Value::obj([(
                "error",
                Value::Str("the `batch` field must be an array of source strings".to_string()),
            )]);
            echo_id(&mut payload, id);
            shared.complete(Arc::clone(&job.token), Frame::StreamEnd(payload));
            return;
        }
    };
    let mut jobs_ok = 0usize;
    let total = sources.len();
    let mut aborted = false;
    for (seq, source) in sources.iter().enumerate() {
        if job.token.conn_closed.load(Ordering::Acquire) {
            // The client is gone: stop checking the remainder (the frames
            // would be dropped anyway); this is the streaming face of the
            // dequeue-time disconnect gate.
            shared
                .dropped_for_closed_conn
                .fetch_add(1, Ordering::Relaxed);
            rel_obs::counter!("serve.conn_errors").incr();
            aborted = true;
            break;
        }
        let job_spec = crate::batch::BatchJob::new(format!("job-{seq}"), source.clone());
        let result = crate::batch::check_job_with(
            shared.service.engine(),
            Some(shared.service.def_index().as_ref()),
            &job_spec,
        );
        if result.ok() {
            jobs_ok += 1;
        }
        let mut item = Value::obj([
            ("seq", Value::Int(seq as i64)),
            ("job", daemon::job_value(&result)),
        ]);
        echo_id(&mut item, id);
        shared.complete(Arc::clone(&job.token), Frame::StreamItem(item));
    }
    let mut end = Value::obj([
        ("done", Value::Bool(true)),
        ("ok", Value::Bool(jobs_ok == total && !aborted)),
        ("jobs_ok", Value::Int(jobs_ok as i64)),
        ("jobs", Value::Int(total as i64)),
        ("cache", daemon::cache_value(&shared.service)),
    ]);
    echo_id(&mut end, id);
    shared.complete(Arc::clone(&job.token), Frame::StreamEnd(end));
}

fn echo_id(payload: &mut Value, id: Option<&Value>) {
    if let (Some(id), Value::Obj(fields)) = (id, payload) {
        fields.insert(0, ("id".to_string(), id.clone()));
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    codec: Box<dyn Codec>,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Shared with every token minted for this connection.
    closed: Arc<AtomicBool>,
    last_activity: Instant,
    /// Requests decoded but not yet fully answered.
    inflight: usize,
    /// HTTP half-duplex gate: stop decoding until the current request's
    /// response has been queued.
    awaiting_response: bool,
    /// Close once the write buffer drains (fatal framing error, HTTP
    /// `Connection: close`, shutdown's `{"bye": true}`).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, kind: CodecKind, limits: CodecLimits) -> Conn {
        Conn {
            stream,
            codec: make_codec(kind, limits),
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            closed: Arc::new(AtomicBool::new(false)),
            last_activity: Instant::now(),
            inflight: 0,
            awaiting_response: false,
            close_after_flush: false,
        }
    }

    /// Flushes as much of the write buffer as the socket accepts.
    /// `Ok(true)` means fully drained.
    fn flush(&mut self) -> io::Result<bool> {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_buf.drain(..n);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// The reactor proper
// ---------------------------------------------------------------------------

/// How long one poll sleeps when nothing is due sooner: bounds the latency
/// of deadline/idle scans without measurable idle cost (50 wakeups/s).
const TICK: Duration = Duration::from_millis(20);

/// Runs the multiplexed serving plane over `listeners` until a client sends
/// `{"shutdown": true}` (or `POST /shutdown`), answering every request
/// against `service`.  Each listener speaks the codec it is paired with;
/// all of them multiplex over one worker pool and one bounded queue.
pub fn serve_reactor(
    service: &Service,
    listeners: Vec<(TcpListener, CodecKind)>,
    options: ReactorOptions,
) -> io::Result<ReactorSummary> {
    for (listener, _) in &listeners {
        listener.set_nonblocking(true)?;
    }
    // Self-connected wake pipe: workers write a byte to unblock the poll
    // as soon as a completion is queued (loopback TCP is the portable,
    // dependency-free self-pipe).
    let wake_listener = TcpListener::bind("127.0.0.1:0")?;
    let wake_tx = TcpStream::connect(wake_listener.local_addr()?)?;
    let (wake_rx, _) = wake_listener.accept()?;
    wake_rx.set_nonblocking(true)?;
    // The write side must be nonblocking too: a blocking write from a worker
    // against a full pipe buffer would park the worker (and with it the
    // waker mutex) until the reactor drains — a lost-wakeup deadlock if the
    // reactor is itself sleeping in poll.  `wake` treats WouldBlock as
    // success because pending bytes already guarantee the next poll wakes.
    wake_tx.set_nonblocking(true)?;
    drop(wake_listener);

    let shared = Arc::new(Shared {
        service: service.clone(),
        queue: JobQueue::new(options.max_queue),
        completions: Mutex::new(Vec::new()),
        waker: Mutex::new(wake_tx),
        dropped_for_closed_conn: AtomicU64::new(0),
        expired_at_dequeue: AtomicU64::new(0),
    });
    let workers: Vec<_> = (0..options.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    let result = reactor_loop(&shared, &listeners, &wake_rx, &options);

    shared.queue.close();
    for handle in workers {
        let _ = handle.join();
    }
    let mut summary = result?;
    summary.conn_errors += shared.dropped_for_closed_conn.load(Ordering::Relaxed);
    summary.deadlines += shared.expired_at_dequeue.load(Ordering::Relaxed);
    Ok(summary)
}

fn reactor_loop(
    shared: &Shared,
    listeners: &[(TcpListener, CodecKind)],
    wake_rx: &TcpStream,
    options: &ReactorOptions,
) -> io::Result<ReactorSummary> {
    let mut summary = ReactorSummary::default();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id: u64 = 0;
    // Outstanding request tokens, scanned for deadline expiry.
    let mut outstanding: Vec<Arc<RequestToken>> = Vec::new();
    let mut stopping = false;

    loop {
        // ---- wait for readiness ------------------------------------------
        let mut ids: Vec<u64> = conns.keys().copied().collect();
        ids.sort_unstable();
        let sources: Vec<(&TcpStream, bool, bool)> = std::iter::once((wake_rx, true, false))
            .chain(ids.iter().map(|id| {
                let c = &conns[id];
                let want_read = !(c.close_after_flush
                    || stopping
                    || (c.codec.half_duplex() && c.awaiting_response));
                (&c.stream, want_read, !c.write_buf.is_empty())
            }))
            .collect();
        let listener_refs: Vec<&TcpListener> = if stopping {
            Vec::new()
        } else {
            listeners.iter().map(|(l, _)| l).collect()
        };
        let timeout = poll_timeout(&outstanding, &conns, options);
        let (ready, accept_ready) = wait_ready(&sources, &listener_refs, timeout)?;

        // ---- drain the wake pipe -----------------------------------------
        if ready[0].readable {
            let mut scratch = [0u8; 256];
            loop {
                match (&*wake_rx).read(&mut scratch) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        // ---- apply completions -------------------------------------------
        let completions: Vec<Completion> = {
            let mut pending = shared.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *pending)
        };
        for completion in completions {
            let token = &completion.token;
            let Some(conn) = conns.get_mut(&token.conn_id) else {
                continue; // connection died; drop the frame
            };
            let finished = match &completion.frame {
                Frame::Response(payload) => {
                    conn.codec.encode_response(payload, &mut conn.write_buf);
                    if payload.get("error").is_some() {
                        summary.errors += 1;
                    }
                    true
                }
                Frame::StreamBegin => {
                    conn.codec.encode_stream_begin(&mut conn.write_buf);
                    false
                }
                Frame::StreamItem(payload) => {
                    conn.codec.encode_stream_item(payload, &mut conn.write_buf);
                    false
                }
                Frame::StreamEnd(payload) => {
                    conn.codec.encode_stream_end(payload, &mut conn.write_buf);
                    if payload.get("error").is_some() {
                        summary.errors += 1;
                    }
                    true
                }
            };
            if finished {
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.awaiting_response = false;
                if conn.codec.close_after_response() {
                    conn.close_after_flush = true;
                }
                observe_latency(shared, token);
            }
        }
        outstanding.retain(|t| !t.answered.load(Ordering::Acquire));

        // ---- deadline scan ------------------------------------------------
        let now = Instant::now();
        let mut expired: Vec<Arc<RequestToken>> = Vec::new();
        outstanding.retain(|t| {
            if t.expired(now) && t.try_answer() {
                expired.push(Arc::clone(t));
                false
            } else {
                true
            }
        });
        for token in expired {
            summary.deadlines += 1;
            shared.service.metrics().counter("serve.deadlines").incr();
            if let Some(conn) = conns.get_mut(&token.conn_id) {
                let payload = deadline_payload(token.timeout_ms, token.id.as_ref());
                conn.codec.encode_response(&payload, &mut conn.write_buf);
                summary.errors += 1;
                conn.inflight = conn.inflight.saturating_sub(1);
                conn.awaiting_response = false;
                observe_latency(shared, &token);
            }
        }

        // ---- resume half-duplex pipelines ---------------------------------
        // A keep-alive client may have pipelined its next request behind the
        // one just answered; those bytes are already in `read_buf` and no
        // further readable event will announce them, so decode them now that
        // `awaiting_response` has cleared.
        if !stopping {
            let buffered: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| !c.read_buf.is_empty())
                .map(|(id, _)| *id)
                .collect();
            for id in buffered {
                let conn = conns.get_mut(&id).expect("conn present");
                decode_conn(
                    shared,
                    conn,
                    id,
                    &mut summary,
                    &mut outstanding,
                    &mut stopping,
                    options,
                );
            }
        }

        // ---- accept -------------------------------------------------------
        for (i, ready_flag) in accept_ready.iter().enumerate() {
            if !ready_flag {
                continue;
            }
            let (listener, kind) = &listeners[i];
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        // Small responses; write them as one segment.
                        let _ = stream.set_nodelay(true);
                        summary.connections += 1;
                        let id = next_conn_id;
                        next_conn_id += 1;
                        conns.insert(id, Conn::new(stream, *kind, options.limits));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        summary.conn_errors += 1;
                        rel_obs::counter!("serve.conn_errors").incr();
                        break;
                    }
                }
            }
        }

        // ---- read + decode ------------------------------------------------
        let mut to_close: Vec<(u64, bool)> = Vec::new(); // (conn, is_error)
        for (slot, id) in ids.iter().enumerate() {
            let readiness = ready[slot + 1];
            let Some(conn) = conns.get_mut(id) else {
                continue;
            };
            if readiness.hangup && conn.write_buf.is_empty() {
                // Not counted here: any job the dead client still has queued
                // is counted (once) by the dequeue-time check in the worker.
                to_close.push((*id, false));
                continue;
            }
            if !readiness.readable || stopping {
                continue;
            }
            if conn.codec.half_duplex() && conn.awaiting_response {
                continue;
            }
            let mut scratch = [0u8; 16 * 1024];
            let mut saw_eof = false;
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        conn.last_activity = Instant::now();
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        to_close.push((*id, false));
                        saw_eof = true;
                        break;
                    }
                }
            }
            // Decode everything decodable before honoring EOF: a client may
            // send a request and immediately shut down its write side.
            decode_conn(
                shared,
                conn,
                *id,
                &mut summary,
                &mut outstanding,
                &mut stopping,
                options,
            );
            if saw_eof && conn.write_buf.is_empty() && conn.inflight == 0 {
                to_close.push((*id, false));
            } else if saw_eof {
                // Keep the conn around to flush pending responses; stop
                // reading from it by marking it half-closed via the codec
                // gate.  A failed flush below will close it for real.
                conn.awaiting_response = conn.codec.half_duplex();
            }
        }

        // ---- flush --------------------------------------------------------
        let flush_ids: Vec<u64> = conns.keys().copied().collect();
        for id in flush_ids {
            let conn = conns.get_mut(&id).expect("conn present");
            match conn.flush() {
                Ok(true) if conn.close_after_flush => to_close.push((id, false)),
                Ok(_) => {}
                Err(_) => {
                    // A computed response could not be delivered: that is a
                    // connection error in its own right (queued jobs, if
                    // any, are additionally counted at dequeue).
                    to_close.push((id, true));
                }
            }
        }

        // ---- close --------------------------------------------------------
        for (id, is_error) in to_close {
            if let Some(conn) = conns.remove(&id) {
                conn.closed.store(true, Ordering::Release);
                if is_error {
                    summary.conn_errors += 1;
                    rel_obs::counter!("serve.conn_errors").incr();
                }
            }
        }

        // ---- idle reaping -------------------------------------------------
        if let Some(idle) = options.idle_timeout {
            let now = Instant::now();
            let idle_ids: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| {
                    c.inflight == 0
                        && c.write_buf.is_empty()
                        && now.duration_since(c.last_activity) >= idle
                })
                .map(|(id, _)| *id)
                .collect();
            for id in idle_ids {
                if let Some(conn) = conns.remove(&id) {
                    conn.closed.store(true, Ordering::Release);
                    summary.idle_disconnects += 1;
                    rel_obs::counter!("serve.idle_disconnects").incr();
                }
            }
        }

        // ---- shutdown -----------------------------------------------------
        if stopping {
            let unflushed = conns.values().any(|c| !c.write_buf.is_empty());
            let inflight: usize = conns.values().map(|c| c.inflight).sum();
            if !unflushed && inflight == 0 {
                summary.shutdown = true;
                for conn in conns.values() {
                    conn.closed.store(true, Ordering::Release);
                }
                return Ok(summary);
            }
        }
    }
}

/// Records one finished request on the service's latency histograms — the
/// all-plane `serve.request_ns` plus the per-codec
/// `serve.request_ns.{ndjson,http}` series the load harness reads back.
fn observe_latency(shared: &Shared, token: &RequestToken) {
    let elapsed = token.enqueued.elapsed();
    let metrics = shared.service.metrics();
    metrics.histogram("serve.request_ns").observe(elapsed);
    metrics
        .histogram(&format!("serve.request_ns.{}", token.codec.label()))
        .observe(elapsed);
}

/// Decodes every complete request currently buffered on `conn`.
#[allow(clippy::too_many_arguments)]
fn decode_conn(
    shared: &Shared,
    conn: &mut Conn,
    conn_id: u64,
    summary: &mut ReactorSummary,
    outstanding: &mut Vec<Arc<RequestToken>>,
    stopping: &mut bool,
    options: &ReactorOptions,
) {
    loop {
        if (conn.codec.half_duplex() && conn.awaiting_response) || conn.close_after_flush {
            return;
        }
        match conn.codec.decode(&mut conn.read_buf) {
            Decode::Incomplete => return,
            Decode::Fatal { response, .. } => {
                summary.requests += 1;
                summary.errors += 1;
                shared.service.metrics().counter("serve.requests").incr();
                shared.service.metrics().counter("serve.errors").incr();
                conn.write_buf.extend_from_slice(&response);
                conn.close_after_flush = true;
                return;
            }
            Decode::Request(request) => {
                summary.requests += 1;
                shared.service.metrics().counter("serve.requests").incr();
                let value = match request.payload {
                    Err(message) => {
                        summary.errors += 1;
                        shared.service.metrics().counter("serve.errors").incr();
                        let payload = Value::obj([("error", Value::Str(message))]);
                        conn.codec.encode_response(&payload, &mut conn.write_buf);
                        if conn.codec.close_after_response() {
                            conn.close_after_flush = true;
                        }
                        continue;
                    }
                    Ok(value) => value,
                };
                if matches!(value.get("shutdown"), Some(Value::Bool(true))) {
                    let payload = Value::obj([("bye", Value::Bool(true))]);
                    conn.codec.encode_response(&payload, &mut conn.write_buf);
                    conn.close_after_flush = true;
                    *stopping = true;
                    return;
                }
                let id = value.get("id").cloned();
                let streaming = value.get("batch").is_some()
                    && matches!(value.get("stream"), Some(Value::Bool(true)));
                let token = Arc::new(RequestToken {
                    conn_id,
                    codec: conn.codec.kind(),
                    conn_closed: Arc::clone(&conn.closed),
                    answered: AtomicBool::new(false),
                    enqueued: Instant::now(),
                    deadline: options.request_timeout.map(|t| Instant::now() + t),
                    id,
                    timeout_ms: options
                        .request_timeout
                        .map_or(0, |t| t.as_millis().min(u64::MAX as u128) as u64),
                });
                let job = Job {
                    token: Arc::clone(&token),
                    request: value,
                    streaming,
                };
                match shared.queue.try_push(job) {
                    Ok(()) => {
                        conn.inflight += 1;
                        outstanding.push(token);
                        if conn.codec.half_duplex() {
                            conn.awaiting_response = true;
                        }
                    }
                    Err(job) => {
                        // Bounded queue refusal → explicit backpressure
                        // response, queued work untouched.
                        summary.backpressure += 1;
                        summary.errors += 1;
                        shared
                            .service
                            .metrics()
                            .counter("serve.backpressure")
                            .incr();
                        shared.service.metrics().counter("serve.errors").incr();
                        let payload =
                            backpressure_payload(options.max_queue, job.token.id.as_ref());
                        conn.codec.encode_response(&payload, &mut conn.write_buf);
                        if conn.codec.close_after_response() {
                            conn.close_after_flush = true;
                        }
                    }
                }
            }
        }
    }
}

/// Next poll timeout: the nearest pending deadline or idle expiry, clamped
/// to [1ms, TICK].
fn poll_timeout(
    outstanding: &[Arc<RequestToken>],
    conns: &HashMap<u64, Conn>,
    options: &ReactorOptions,
) -> Duration {
    let now = Instant::now();
    let mut timeout = TICK;
    for token in outstanding {
        if let Some(deadline) = token.deadline {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
    }
    if let Some(idle) = options.idle_timeout {
        for conn in conns.values() {
            let expires = conn.last_activity + idle;
            timeout = timeout.min(expires.saturating_duration_since(now));
        }
    }
    timeout.max(Duration::from_millis(1))
}

#[cfg(test)]
mod syscall_tests {
    use super::*;

    /// Regression: a saturated wake pipe must not park the worker calling
    /// `wake` (the old blocking write could deadlock: worker parked holding
    /// the waker mutex, reactor asleep in poll).  WouldBlock is success —
    /// the unread bytes already guarantee the next poll wakes.
    #[test]
    fn wake_never_blocks_on_a_saturated_pipe() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.set_nonblocking(true).unwrap();
        // Saturate: nobody drains rx, so the send buffer eventually refuses.
        let chunk = [1u8; 64 * 1024];
        loop {
            match tx.write(&chunk) {
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        // Must return promptly instead of parking.
        wake(&mut tx);
        wake(&mut tx);
        // And the wakeup is not lost: the read side reports pending bytes.
        let mut scratch = [0u8; 16];
        assert!(matches!((&rx).read(&mut scratch), Ok(n) if n > 0));
    }

    /// Regression: `sys::wait` must retry `poll(2)` after a signal instead
    /// of surfacing `EINTR` (which would tear down the whole serving plane).
    /// `poll` is never restarted by the kernel even under `SA_RESTART`
    /// (signal(7)), so a signal aimed at the polling thread reliably
    /// exercises the retry path: the observed sleep is the interrupted
    /// portion plus one full retried timeout — longer than the timeout
    /// itself, which a non-retrying implementation could never produce.
    #[cfg(target_os = "linux")]
    #[test]
    fn poll_wait_retries_after_eintr() {
        use std::os::raw::c_int;
        extern "C" {
            fn signal(signum: c_int, handler: usize) -> usize;
            fn pthread_self() -> usize;
            fn pthread_kill(thread: usize, sig: c_int) -> c_int;
        }
        extern "C" fn noop(_sig: c_int) {}
        const SIGUSR1: c_int = 10;
        unsafe { signal(SIGUSR1, noop as *const () as usize) };

        let target = unsafe { pthread_self() };
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            assert_eq!(unsafe { pthread_kill(target, SIGUSR1) }, 0);
        });

        let started = Instant::now();
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let result = sys::wait(&mut fds, 400);
        let elapsed = started.elapsed();
        killer.join().unwrap();

        assert!(result.is_ok(), "EINTR leaked out of sys::wait: {result:?}");
        assert_eq!(result.unwrap(), 0, "nothing was ready");
        // ~150ms interrupted + 400ms retried ≥ 500ms; without the retry the
        // call returns at 400ms (or errors at 150ms).
        assert!(
            elapsed >= Duration::from_millis(500),
            "poll was not retried after the signal (elapsed {elapsed:?})"
        );
    }
}
