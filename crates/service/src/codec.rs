//! Wire codecs: how request/response JSON objects are framed on a byte
//! stream.
//!
//! The serving plane speaks one *content* protocol — the JSON wire objects
//! of [`crate::daemon`] (`{"check": ...}`, `{"metrics": "dump"}`,
//! `{"cache": "stats"}`, ...) — over two *framings*:
//!
//! * [`NdjsonCodec`] — one JSON object per newline-delimited line, request
//!   and response alike.  This is the original daemon protocol, now usable
//!   over stdin/stdout and TCP through the same code path.
//! * [`HttpCodec`] — a hand-rolled HTTP/1.1 server framing.  `POST /check`
//!   carries any request object as its JSON body; `GET /metrics` and
//!   `GET /cache/stats` are aliases for the `{"metrics": "dump"}` and
//!   `{"cache": "stats"}` wire objects; `POST /shutdown` aliases
//!   `{"shutdown": true}`.  Response bodies are the *byte-identical* JSON
//!   lines the NDJSON plane answers (trailing newline included) — the
//!   conformance suite holds the two planes to that.
//!
//! A codec is a small state machine: `decode` consumes bytes from the front
//! of a connection's read buffer and yields complete requests; the `encode_*`
//! methods append response frames to a write buffer.  Streaming responses
//! (per-job batch results) map to NDJSON lines on one plane and HTTP chunked
//! transfer encoding on the other.
//!
//! Framing violations split in two: recoverable ones (a line that is not
//! JSON) become error *responses* so a serving process survives bad input,
//! while protocol-fatal ones (an oversized request, a malformed HTTP
//! preamble) produce one final response and close the connection — there is
//! no trustworthy way to find the next request boundary after them.

use crate::json::{self, Value};

/// Which framing a connection speaks (used for per-codec metrics names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// Newline-delimited JSON (stdin/stdout and raw TCP).
    Ndjson,
    /// HTTP/1.1 with JSON bodies.
    Http,
    /// The daemon-to-daemon replication plane: NDJSON framing, but strict
    /// request/response alternation.  Replication applies must land in the
    /// order the sending session shipped them *per connection* — letting the
    /// worker pool interleave a connection's applies would turn every
    /// in-order stream into a reorder storm — so this codec is the NDJSON
    /// state machine with the HTTP plane's half-duplex discipline.
    Replica,
}

impl CodecKind {
    /// Short lowercase label, used in metric names
    /// (`serve.request_ns.ndjson`) and BENCH_service.json keys.
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Ndjson => "ndjson",
            CodecKind::Http => "http",
            CodecKind::Replica => "replica",
        }
    }
}

/// Byte-size limits a codec enforces while decoding.
#[derive(Debug, Clone, Copy)]
pub struct CodecLimits {
    /// Longest accepted request frame: NDJSON line length, HTTP body length.
    pub max_request_bytes: usize,
    /// Longest accepted HTTP preamble (request line + headers).
    pub max_head_bytes: usize,
}

impl Default for CodecLimits {
    fn default() -> Self {
        CodecLimits {
            max_request_bytes: 4 << 20,
            max_head_bytes: 16 << 10,
        }
    }
}

/// One step of [`Codec::decode`].
#[derive(Debug)]
pub enum Decode {
    /// No complete request in the buffer yet; read more bytes.
    Incomplete,
    /// One complete request was consumed from the buffer.
    Request(DecodedRequest),
    /// The stream is unrecoverable (oversized frame, malformed framing).
    /// The codec already encoded a final response for the peer; the caller
    /// writes it and closes the connection.
    Fatal {
        /// Final bytes to flush before closing.
        response: Vec<u8>,
        /// Why the connection is being closed (for logs/counters).
        reason: String,
    },
}

/// A request decoded off the wire.
#[derive(Debug)]
pub struct DecodedRequest {
    /// The parsed wire object, or the malformed-request message to answer
    /// with (recoverable: the framing survived, the payload did not).
    pub payload: Result<Value, String>,
}

/// A wire framing for the daemon's JSON protocol.
///
/// Implementations are per-connection state machines (the HTTP codec
/// remembers the in-flight request's keep-alive disposition between
/// `decode` and `encode_response`), so every connection owns its own boxed
/// codec instance.
pub trait Codec: Send {
    /// Which framing this is.
    fn kind(&self) -> CodecKind;

    /// Tries to consume one complete request from the front of `buf`.
    fn decode(&mut self, buf: &mut Vec<u8>) -> Decode;

    /// Appends one complete (non-streamed) response frame to `out`.
    fn encode_response(&mut self, payload: &Value, out: &mut Vec<u8>);

    /// Begins a streamed response (headers on HTTP, nothing on NDJSON).
    fn encode_stream_begin(&mut self, out: &mut Vec<u8>);

    /// Appends one streamed item.
    fn encode_stream_item(&mut self, payload: &Value, out: &mut Vec<u8>);

    /// Appends the terminal item of a stream and closes the stream framing.
    fn encode_stream_end(&mut self, payload: &Value, out: &mut Vec<u8>);

    /// Whether the codec requires strict request/response alternation.
    /// HTTP/1.1 does (responses must land in request order, so the reactor
    /// decodes the next request only after the current one is answered);
    /// NDJSON pipelines freely and relies on `id` echoing.
    fn half_duplex(&self) -> bool;

    /// Whether the peer asked to close the connection after the current
    /// response (`Connection: close`); always `false` for NDJSON.
    fn close_after_response(&self) -> bool {
        false
    }
}

/// The JSON content of a response as one NDJSON line (trailing newline
/// included).  Both codecs answer exactly these bytes — HTTP wraps them in
/// its framing without touching them, which is what makes the two planes
/// byte-identical in content.
pub fn content_line(payload: &Value) -> Vec<u8> {
    let mut line = payload.to_string().into_bytes();
    line.push(b'\n');
    line
}

// ---------------------------------------------------------------------------
// NDJSON
// ---------------------------------------------------------------------------

/// Newline-delimited JSON framing: one request per line, one response (or
/// stream item) per line.
#[derive(Debug)]
pub struct NdjsonCodec {
    limits: CodecLimits,
}

impl NdjsonCodec {
    pub fn new(limits: CodecLimits) -> NdjsonCodec {
        NdjsonCodec { limits }
    }
}

impl Default for NdjsonCodec {
    fn default() -> Self {
        NdjsonCodec::new(CodecLimits::default())
    }
}

impl Codec for NdjsonCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Ndjson
    }

    fn decode(&mut self, buf: &mut Vec<u8>) -> Decode {
        loop {
            let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
                if buf.len() > self.limits.max_request_bytes {
                    let payload = oversized_payload(buf.len(), self.limits.max_request_bytes);
                    return Decode::Fatal {
                        response: content_line(&payload),
                        reason: "oversized request line".to_string(),
                    };
                }
                return Decode::Incomplete;
            };
            let line: Vec<u8> = buf.drain(..=nl).take(nl).collect();
            if nl > self.limits.max_request_bytes {
                let payload = oversized_payload(nl, self.limits.max_request_bytes);
                return Decode::Fatal {
                    response: content_line(&payload),
                    reason: "oversized request line".to_string(),
                };
            }
            let text = String::from_utf8_lossy(&line);
            if text.trim().is_empty() {
                continue; // blank lines are ignored, as in the stdio loop
            }
            let payload = json::parse(&text).map_err(|e| format!("malformed request: {e}"));
            return Decode::Request(DecodedRequest { payload });
        }
    }

    fn encode_response(&mut self, payload: &Value, out: &mut Vec<u8>) {
        out.extend_from_slice(&content_line(payload));
    }

    fn encode_stream_begin(&mut self, _out: &mut Vec<u8>) {}

    fn encode_stream_item(&mut self, payload: &Value, out: &mut Vec<u8>) {
        out.extend_from_slice(&content_line(payload));
    }

    fn encode_stream_end(&mut self, payload: &Value, out: &mut Vec<u8>) {
        out.extend_from_slice(&content_line(payload));
    }

    fn half_duplex(&self) -> bool {
        false
    }
}

/// The replication-plane framing: NDJSON lines with half-duplex discipline
/// (see [`CodecKind::Replica`]).
#[derive(Debug)]
pub struct ReplicaCodec {
    inner: NdjsonCodec,
}

impl ReplicaCodec {
    pub fn new(limits: CodecLimits) -> ReplicaCodec {
        ReplicaCodec {
            inner: NdjsonCodec::new(limits),
        }
    }
}

impl Codec for ReplicaCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Replica
    }

    fn decode(&mut self, buf: &mut Vec<u8>) -> Decode {
        self.inner.decode(buf)
    }

    fn encode_response(&mut self, payload: &Value, out: &mut Vec<u8>) {
        self.inner.encode_response(payload, out);
    }

    fn encode_stream_begin(&mut self, out: &mut Vec<u8>) {
        self.inner.encode_stream_begin(out);
    }

    fn encode_stream_item(&mut self, payload: &Value, out: &mut Vec<u8>) {
        self.inner.encode_stream_item(payload, out);
    }

    fn encode_stream_end(&mut self, payload: &Value, out: &mut Vec<u8>) {
        self.inner.encode_stream_end(payload, out);
    }

    fn half_duplex(&self) -> bool {
        true
    }
}

/// The error payload for an over-limit request, shared by both codecs so the
/// planes answer identical content.
fn oversized_payload(got: usize, limit: usize) -> Value {
    Value::obj([
        (
            "error",
            Value::Str(format!(
                "request too large: {got} bytes exceeds the {limit}-byte limit"
            )),
        ),
        ("max_request_bytes", Value::Int(limit as i64)),
    ])
}

// ---------------------------------------------------------------------------
// HTTP/1.1
// ---------------------------------------------------------------------------

/// What the HTTP state machine is waiting for.
#[derive(Debug)]
enum HttpState {
    /// Reading the request line + headers (up to the blank line).
    Head,
    /// Reading a `Content-Length` body for the parsed head.
    Body { head: HttpHead, len: usize },
}

/// The parsed preamble of one HTTP request.
#[derive(Debug)]
struct HttpHead {
    method: String,
    path: String,
    content_length: usize,
    keep_alive: bool,
}

/// Hand-rolled HTTP/1.1 framing for the daemon protocol.
///
/// Routes:
///
/// | request                 | wire object                      |
/// |-------------------------|----------------------------------|
/// | `POST /check` (body)    | the body itself (`{"check": …}`, `{"batch": …}`, any daemon request) |
/// | `GET /metrics`          | `{"metrics": "dump"}`            |
/// | `GET /cache/stats`      | `{"cache": "stats"}`             |
/// | `POST /shutdown`        | `{"shutdown": true}`             |
///
/// Unknown routes answer 404 with an error object; content errors map onto
/// HTTP status codes by inspecting the response payload (`error: deadline` →
/// 504, `error: backpressure` → 503, other errors → 400) while the body
/// stays the exact NDJSON content line.
pub struct HttpCodec {
    limits: CodecLimits,
    state: HttpState,
    /// Keep-alive disposition of the request currently being answered.
    respond_keep_alive: bool,
    /// Status override recorded at decode time (404 for unknown routes,
    /// 405 for unsupported methods); otherwise derived from the payload.
    forced_status: Option<(u16, &'static str)>,
}

impl HttpCodec {
    pub fn new(limits: CodecLimits) -> HttpCodec {
        HttpCodec {
            limits,
            state: HttpState::Head,
            respond_keep_alive: true,
            forced_status: None,
        }
    }

    /// Status line for a response payload: 200 unless the payload is an
    /// error object (or the route already forced a status).
    fn status_for(&self, payload: &Value) -> (u16, &'static str) {
        if let Some(forced) = self.forced_status {
            return forced;
        }
        // A degraded health report is still a well-formed answer, but load
        // balancers route on the status line: degraded → 503.
        if payload.get("health").and_then(Value::as_str) == Some("degraded") {
            return (503, "Service Unavailable");
        }
        match payload.get("error").and_then(Value::as_str) {
            None => (200, "OK"),
            Some("deadline") => (504, "Gateway Timeout"),
            Some("backpressure") => (503, "Service Unavailable"),
            Some(e) if e.starts_with("request too large") => (413, "Content Too Large"),
            Some(_) => (400, "Bad Request"),
        }
    }

    fn head(
        &self,
        out: &mut Vec<u8>,
        status: (u16, &'static str),
        content_length: Option<usize>,
        chunked: bool,
    ) {
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", status.0, status.1).as_bytes());
        out.extend_from_slice(b"Content-Type: application/x-ndjson\r\n");
        if let Some(len) = content_length {
            out.extend_from_slice(format!("Content-Length: {len}\r\n").as_bytes());
        }
        if chunked {
            out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
        }
        if self.respond_keep_alive {
            out.extend_from_slice(b"Connection: keep-alive\r\n");
        } else {
            out.extend_from_slice(b"Connection: close\r\n");
        }
        out.extend_from_slice(b"\r\n");
    }

    fn chunk(out: &mut Vec<u8>, data: &[u8]) {
        out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
        out.extend_from_slice(data);
        out.extend_from_slice(b"\r\n");
    }

    /// Encodes a final error response and returns the fatal decode outcome.
    fn fatal(&mut self, status: (u16, &'static str), payload: Value, reason: &str) -> Decode {
        self.respond_keep_alive = false;
        self.forced_status = Some(status);
        let mut response = Vec::new();
        self.encode_response(&payload, &mut response);
        Decode::Fatal {
            response,
            reason: reason.to_string(),
        }
    }

    /// Parses the preamble in `head` (which excludes the terminating blank
    /// line).  Errors are returned as (status, message).
    fn parse_head(&self, head: &str) -> Result<HttpHead, (u16, &'static str, String)> {
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err((
                400,
                "Bad Request",
                format!("malformed request line: `{request_line}`"),
            ));
        };
        if !version.starts_with("HTTP/1.") {
            return Err((
                505,
                "HTTP Version Not Supported",
                format!("unsupported version `{version}`"),
            ));
        }
        let mut content_length = 0usize;
        // HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close.
        let mut keep_alive = version != "HTTP/1.0";
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue; // tolerate malformed header lines
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse::<usize>()
                    .map_err(|_| (400, "Bad Request", format!("bad Content-Length `{value}`")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // Chunked *requests* are not worth the state machine: the
                // clients this plane serves send sized bodies.
                return Err((
                    411,
                    "Length Required",
                    "chunked request bodies are not supported; send Content-Length".to_string(),
                ));
            }
        }
        Ok(HttpHead {
            method: method.to_string(),
            path: path.to_string(),
            content_length,
            keep_alive,
        })
    }

    /// Maps a parsed head + body onto the daemon's wire object.
    fn route(&mut self, head: &HttpHead, body: &[u8]) -> Result<Value, String> {
        match (head.method.as_str(), head.path.as_str()) {
            ("POST", "/check") => {
                let text = String::from_utf8_lossy(body);
                json::parse(&text).map_err(|e| format!("malformed request: {e}"))
            }
            ("GET", "/metrics") => Ok(Value::obj([("metrics", Value::Str("dump".to_string()))])),
            ("GET", "/cache/stats") => Ok(Value::obj([("cache", Value::Str("stats".to_string()))])),
            ("GET", "/healthz") => Ok(Value::obj([("health", Value::Bool(true))])),
            ("POST", "/shutdown") => Ok(Value::obj([("shutdown", Value::Bool(true))])),
            (method, path) => {
                self.forced_status = Some(match method {
                    "GET" | "POST" => (404, "Not Found"),
                    _ => (405, "Method Not Allowed"),
                });
                Err(format!(
                    "unknown endpoint {method} {path}: expected POST /check, GET /metrics, \
                     GET /cache/stats, GET /healthz or POST /shutdown"
                ))
            }
        }
    }
}

impl Codec for HttpCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Http
    }

    fn decode(&mut self, buf: &mut Vec<u8>) -> Decode {
        loop {
            match &self.state {
                HttpState::Head => {
                    let Some(end) = find_head_end(buf) else {
                        if buf.len() > self.limits.max_head_bytes {
                            return self.fatal(
                                (431, "Request Header Fields Too Large"),
                                Value::obj([(
                                    "error",
                                    Value::Str(format!(
                                        "request head exceeds the {}-byte limit",
                                        self.limits.max_head_bytes
                                    )),
                                )]),
                                "oversized request head",
                            );
                        }
                        return Decode::Incomplete;
                    };
                    // The limit also binds when the whole head arrives in a
                    // single read — not just while it is accumulating.
                    if end > self.limits.max_head_bytes {
                        return self.fatal(
                            (431, "Request Header Fields Too Large"),
                            Value::obj([(
                                "error",
                                Value::Str(format!(
                                    "request head exceeds the {}-byte limit",
                                    self.limits.max_head_bytes
                                )),
                            )]),
                            "oversized request head",
                        );
                    }
                    let head_bytes: Vec<u8> = buf.drain(..end + 4).take(end).collect();
                    let head_text = String::from_utf8_lossy(&head_bytes).into_owned();
                    match self.parse_head(&head_text) {
                        Ok(head) => {
                            if head.content_length > self.limits.max_request_bytes {
                                return self.fatal(
                                    (413, "Content Too Large"),
                                    oversized_payload(
                                        head.content_length,
                                        self.limits.max_request_bytes,
                                    ),
                                    "oversized request body",
                                );
                            }
                            let len = head.content_length;
                            self.state = HttpState::Body { head, len };
                        }
                        Err((code, text, message)) => {
                            return self.fatal(
                                (code, text),
                                Value::obj([("error", Value::Str(message))]),
                                "malformed http preamble",
                            );
                        }
                    }
                }
                HttpState::Body { len, .. } => {
                    let len = *len;
                    if buf.len() < len {
                        return Decode::Incomplete;
                    }
                    let body: Vec<u8> = buf.drain(..len).collect();
                    let HttpState::Body { head, .. } =
                        std::mem::replace(&mut self.state, HttpState::Head)
                    else {
                        unreachable!("state checked above");
                    };
                    self.respond_keep_alive = head.keep_alive;
                    self.forced_status = None;
                    let payload = self.route(&head, &body);
                    return Decode::Request(DecodedRequest { payload });
                }
            }
        }
    }

    fn encode_response(&mut self, payload: &Value, out: &mut Vec<u8>) {
        let body = content_line(payload);
        let status = self.status_for(payload);
        self.head(out, status, Some(body.len()), false);
        out.extend_from_slice(&body);
        self.forced_status = None;
    }

    fn encode_stream_begin(&mut self, out: &mut Vec<u8>) {
        let status = self.forced_status.unwrap_or((200, "OK"));
        self.head(out, status, None, true);
        self.forced_status = None;
    }

    fn encode_stream_item(&mut self, payload: &Value, out: &mut Vec<u8>) {
        Self::chunk(out, &content_line(payload));
    }

    fn encode_stream_end(&mut self, payload: &Value, out: &mut Vec<u8>) {
        Self::chunk(out, &content_line(payload));
        out.extend_from_slice(b"0\r\n\r\n");
    }

    fn half_duplex(&self) -> bool {
        true
    }

    fn close_after_response(&self) -> bool {
        !self.respond_keep_alive
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Builds a codec of the given kind with the given limits.
pub fn make_codec(kind: CodecKind, limits: CodecLimits) -> Box<dyn Codec> {
    match kind {
        CodecKind::Ndjson => Box::new(NdjsonCodec::new(limits)),
        CodecKind::Http => Box::new(HttpCodec::new(limits)),
        CodecKind::Replica => Box::new(ReplicaCodec::new(limits)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_one(codec: &mut dyn Codec, bytes: &[u8]) -> Decode {
        let mut buf = bytes.to_vec();
        codec.decode(&mut buf)
    }

    #[test]
    fn ndjson_decodes_lines_and_skips_blanks() {
        let mut codec = NdjsonCodec::default();
        let mut buf = b"\n  \n{\"stats\": true}\n{\"next\"".to_vec();
        match codec.decode(&mut buf) {
            Decode::Request(r) => {
                assert!(r.payload.unwrap().get("stats").is_some());
            }
            other => panic!("expected a request, got {other:?}"),
        }
        assert!(matches!(codec.decode(&mut buf), Decode::Incomplete));
        assert_eq!(buf, b"{\"next\"");
    }

    #[test]
    fn ndjson_malformed_line_is_recoverable() {
        let mut codec = NdjsonCodec::default();
        match decode_one(&mut codec, b"not json\n") {
            Decode::Request(r) => {
                let err = r.payload.unwrap_err();
                assert!(err.starts_with("malformed request:"), "{err}");
            }
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn ndjson_oversized_line_is_fatal() {
        let mut codec = NdjsonCodec::new(CodecLimits {
            max_request_bytes: 16,
            ..CodecLimits::default()
        });
        let long = vec![b'x'; 64];
        match decode_one(&mut codec, &long) {
            Decode::Fatal { response, .. } => {
                let text = String::from_utf8(response).unwrap();
                assert!(text.contains("request too large"), "{text}");
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn http_routes_and_body_is_ndjson_content() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        let body = r#"{"stats": true}"#;
        let req = format!(
            "POST /check HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        match decode_one(&mut codec, req.as_bytes()) {
            Decode::Request(r) => {
                assert!(r.payload.unwrap().get("stats").is_some());
            }
            other => panic!("expected request, got {other:?}"),
        }
        let payload = Value::obj([("ok", Value::Bool(true))]);
        let mut out = Vec::new();
        codec.encode_response(&payload, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");
        // 12 = the 11 JSON bytes plus the trailing newline shared with the
        // NDJSON plane (the body IS the NDJSON line).
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
    }

    #[test]
    fn http_get_aliases_wire_objects() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        let mut buf = b"GET /metrics HTTP/1.1\r\n\r\nGET /cache/stats HTTP/1.1\r\n\r\n".to_vec();
        let Decode::Request(r) = codec.decode(&mut buf) else {
            panic!("expected request");
        };
        assert_eq!(
            r.payload.unwrap().get("metrics").and_then(Value::as_str),
            Some("dump")
        );
        let Decode::Request(r) = codec.decode(&mut buf) else {
            panic!("expected second pipelined request");
        };
        assert_eq!(
            r.payload.unwrap().get("cache").and_then(Value::as_str),
            Some("stats")
        );
    }

    #[test]
    fn http_unknown_route_is_404_but_recoverable() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        match decode_one(&mut codec, b"GET /nope HTTP/1.1\r\n\r\n") {
            Decode::Request(r) => {
                let err = r.payload.unwrap_err();
                assert!(err.contains("unknown endpoint GET /nope"), "{err}");
                let mut out = Vec::new();
                codec.encode_response(&Value::obj([("error", Value::Str(err))]), &mut out);
                assert!(String::from_utf8(out).unwrap().starts_with("HTTP/1.1 404 "));
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn http_error_payloads_map_to_statuses() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        let cases = [
            ("deadline", "HTTP/1.1 504 "),
            ("backpressure", "HTTP/1.1 503 "),
            ("parse error: nope", "HTTP/1.1 400 "),
        ];
        for (error, expected) in cases {
            let mut out = Vec::new();
            codec.encode_response(
                &Value::obj([("error", Value::Str(error.to_string()))]),
                &mut out,
            );
            let text = String::from_utf8(out).unwrap();
            assert!(text.starts_with(expected), "{error}: {text}");
        }
    }

    #[test]
    fn http_oversized_body_is_fatal_413() {
        let mut codec = HttpCodec::new(CodecLimits {
            max_request_bytes: 8,
            ..CodecLimits::default()
        });
        match decode_one(
            &mut codec,
            b"POST /check HTTP/1.1\r\nContent-Length: 4096\r\n\r\n",
        ) {
            Decode::Fatal { response, .. } => {
                let text = String::from_utf8(response).unwrap();
                assert!(text.starts_with("HTTP/1.1 413 "), "{text}");
                assert!(text.contains("Connection: close"), "{text}");
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn http_oversized_head_is_fatal_431_even_when_complete() {
        let mut codec = HttpCodec::new(CodecLimits {
            max_head_bytes: 32,
            ..CodecLimits::default()
        });
        // The entire (oversized) head arrives in one read, so the
        // accumulation check never fires — the post-parse check must.
        let mut request = b"GET /metrics HTTP/1.1\r\n".to_vec();
        request.extend_from_slice(format!("X-Junk: {}\r\n\r\n", "j".repeat(64)).as_bytes());
        match decode_one(&mut codec, &request) {
            Decode::Fatal { response, .. } => {
                let text = String::from_utf8(response).unwrap();
                assert!(text.starts_with("HTTP/1.1 431 "), "{text}");
            }
            other => panic!("expected fatal, got {other:?}"),
        }
    }

    #[test]
    fn http_chunked_stream_framing() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        let mut out = Vec::new();
        codec.encode_stream_begin(&mut out);
        codec.encode_stream_item(&Value::obj([("seq", Value::Int(0))]), &mut out);
        codec.encode_stream_end(&Value::obj([("done", Value::Bool(true))]), &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("\r\n{\"seq\":0}\n\r\n"), "{text}");
        assert!(text.ends_with("{\"done\":true}\n\r\n0\r\n\r\n"), "{text}");
    }

    #[test]
    fn http_connection_close_is_honored() {
        let mut codec = HttpCodec::new(CodecLimits::default());
        let mut buf =
            b"POST /check HTTP/1.1\r\nConnection: close\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        let Decode::Request(_) = codec.decode(&mut buf) else {
            panic!("expected request");
        };
        assert!(codec.close_after_response());
        let mut out = Vec::new();
        codec.encode_response(&Value::obj([("ok", Value::Bool(true))]), &mut out);
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close"));
    }
}
