//! The serving subsystem tying engine, worker pool, validity cache, program
//! memo and warm-start persistence together.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use birelcost::{DefIndex, Engine, ProgramReport};
use rel_constraint::{
    CacheStats, ProgramCacheStats, ShardedValidityCache, SharedProgramCache, ValidityCache,
};
use rel_obs::{Backoff, Registry, RegistrySnapshot};
use rel_persist::{
    encode_frame, validate_frame, FaultFs, FrameError, RealFs, Snapshot, WalLimits, WalRecord,
    WalStats, WalStore,
};
use rel_syntax::parse_program;

use crate::batch::{check_batch_with, BatchJob, BatchResult};
use crate::faultnet::Transport;
use crate::replica::{
    from_hex, InboundStatus, ReplicaHub, ReplicaOptions, ReplicaSink, ReplicaStatus, SeqClass,
    SnapshotSource, FINGERPRINT_MISMATCH,
};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batch checking (1 = sequential).
    pub workers: usize,
    /// Shards of the validity cache.
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: available_workers(),
            cache_shards: 16,
        }
    }
}

/// Picks a default worker count from the machine's parallelism.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Persistence counters and the configured snapshot path.
#[derive(Debug, Default)]
struct PersistState {
    /// The snapshot file, once configured via [`Service::attach_cache_file`].
    path: Option<PathBuf>,
    /// The snapshot + WAL pair under that path.  Shared with the store
    /// observers (which append outside the persist lock), so the lock order
    /// is always `persist → wal` or `wal` alone — never the reverse.
    wal: Option<Arc<Mutex<WalStore>>>,
    /// Successful snapshot loads.
    loads: u64,
    /// Successful snapshot saves.
    saves: u64,
    /// Verdicts restored by the last successful load.
    loaded_verdicts: u64,
    /// Definition hashes restored by the last successful load.
    loaded_defs: u64,
    /// Program keys recompiled by the last successful load.
    loaded_programs: u64,
    /// [`Service::warm_stamp`] at the last save (dirty tracking for the
    /// periodic flusher).
    last_saved_stamp: Option<u64>,
}

/// A point-in-time summary of the persistence layer (returned by
/// [`Service::persist_stats`], surfaced by the daemon's `{"cache":"stats"}`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// The configured snapshot file, if any.
    pub path: Option<PathBuf>,
    /// Successful snapshot loads.
    pub loads: u64,
    /// Successful snapshot saves.
    pub saves: u64,
    /// Verdicts restored by the last successful load.
    pub loaded_verdicts: u64,
    /// Definition hashes restored by the last successful load.
    pub loaded_defs: u64,
    /// Program keys recompiled by the last successful load.
    pub loaded_programs: u64,
    /// WAL counters, when a cache file (and therefore a log) is attached.
    pub wal: Option<WalStats>,
}

/// What [`Service::attach_cache_file`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Verdicts restored into the validity cache.
    pub verdicts: u64,
    /// Definition input hashes restored into the def index.
    pub defs: u64,
    /// Compiled-program keys recompiled into the program memo.
    pub programs: u64,
    /// Records replayed from the WAL suffix on top of the snapshot.
    pub wal_records: u64,
    /// WAL frames rejected during replay (torn tail + checksum/decode
    /// failures + foreign fingerprints) — each one skipped, never applied.
    pub wal_anomalies: u64,
    /// Stale `*.tmp.*` files reaped from crashed saves.
    pub reaped_tmp: u64,
    /// `None` when everything on disk loaded (or nothing existed);
    /// otherwise the joined reasons anything was rejected — the service
    /// recovered what validated, which is safe, but the caller should
    /// surface the warning.
    pub warning: Option<String>,
}

/// A checking service: a shared [`Engine`], a shared validity cache and
/// compiled-program memo, a per-definition verdict index for incremental
/// re-checking, optional disk persistence for all three, and a worker pool
/// width.  Cheap to clone (everything is behind [`Arc`]s); safe to drive
/// from multiple threads.
#[derive(Debug, Clone)]
pub struct Service {
    engine: Arc<Engine>,
    cache: Arc<ShardedValidityCache>,
    programs: Arc<SharedProgramCache>,
    defs: Arc<DefIndex>,
    /// Incremental re-checking (skip defs with recorded input hashes) is
    /// opt-in: it turns on when a cache file is attached, because a plain
    /// in-memory service should re-check — and therefore re-*measure* —
    /// every definition, exactly like the seed.
    incremental: Arc<AtomicBool>,
    persist: Arc<Mutex<PersistState>>,
    /// Set by the store observers when the WAL outgrows its thresholds;
    /// drained by [`Service::compact_if_due`] (driven from the daemon's
    /// flusher and serve loop) so compaction never runs on the store path.
    compaction_due: Arc<AtomicBool>,
    /// Per-service metrics: request latency histograms and cache gauges.
    /// Private to the service (not [`rel_obs::metrics::global`]) so parallel
    /// services — and parallel tests in one binary — never bleed into each
    /// other's histograms.
    metrics: Arc<Registry>,
    /// Inbound replication positions and counters (always present — the
    /// daemon accepts validated frames whether or not it ships any).
    replica_sink: Arc<ReplicaSink>,
    /// The outbound replication plane, once enabled.
    replica_hub: Arc<Mutex<Option<Arc<ReplicaHub>>>>,
    /// Persist-save failure tracking for the periodic flusher: capped
    /// exponential backoff between retries, warn-once-per-state-change.
    save_health: Arc<Mutex<SaveHealth>>,
    workers: usize,
}

/// Failure state of the periodic snapshot save (the flusher's dependency).
#[derive(Debug)]
struct SaveHealth {
    backoff: Backoff,
    /// When the next save attempt is allowed; `None` when healthy.
    next_attempt: Option<Instant>,
    /// Whether the last attempt failed (drives warn-once and health).
    failing: bool,
}

impl Default for SaveHealth {
    fn default() -> SaveHealth {
        SaveHealth {
            // Base one flush interval's worth of patience, capped at five
            // minutes: a full disk stays full for a while.
            backoff: Backoff::new(1_000, 300_000, 0x5a17),
            next_attempt: None,
            failing: false,
        }
    }
}

/// What one periodic save attempt did (returned by
/// [`Service::periodic_save`]; the flusher logs `warn` transitions only, so
/// a persistent failure warns once instead of every tick).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeriodicSave {
    /// The save ran (`saved` = whether anything was dirty).  `recovered` is
    /// set when this success ended a failure streak — worth one log line.
    Ok { saved: bool, recovered: bool },
    /// Inside the failure backoff window; nothing was attempted.
    Deferred,
    /// The save failed.  `warn` is set only when this failure *entered* the
    /// failing state; `backoff_ms` is the delay before the next attempt.
    Failed {
        error: String,
        warn: bool,
        backoff_ms: u64,
    },
}

/// Failed connect attempts before a never-connected peer stops counting as
/// booting and starts counting as down for [`Service::health`].  Under the
/// default backoff schedule (100 ms base, doubling) six attempts tolerate
/// roughly the first three seconds of connection refusals, which covers a
/// staggered fleet boot without hiding a genuinely unreachable peer for
/// long.
pub const PEERS_DOWN_GRACE_ATTEMPTS: u64 = 6;

/// Health of one daemon, for fleet orchestration probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// `true` when no degradation reason applies.
    pub ready: bool,
    /// Machine-readable degradation reasons (`wal-poisoned`,
    /// `save-backoff`, `peers-down`).
    pub reasons: Vec<String>,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServiceConfig::default())
    }
}

impl Service {
    /// Builds a service with a default engine.
    pub fn new(config: ServiceConfig) -> Service {
        Service::with_engine(Engine::new(), config)
    }

    /// Builds a service around an explicitly configured engine.  The engine
    /// is re-wired to the service's shared validity cache and program memo.
    pub fn with_engine(engine: Engine, config: ServiceConfig) -> Service {
        let cache = Arc::new(ShardedValidityCache::with_shards(config.cache_shards));
        let programs = Arc::new(SharedProgramCache::new());
        let engine = engine
            .with_cache(cache.clone())
            .with_program_cache(programs.clone());
        Service {
            engine: Arc::new(engine),
            cache,
            programs,
            defs: Arc::new(DefIndex::new()),
            incremental: Arc::new(AtomicBool::new(false)),
            persist: Arc::new(Mutex::new(PersistState::default())),
            compaction_due: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(Registry::new()),
            replica_sink: Arc::new(ReplicaSink::default()),
            replica_hub: Arc::new(Mutex::new(None)),
            save_health: Arc::new(Mutex::new(SaveHealth::default())),
            workers: config.workers.max(1),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The worker-pool width used by [`Service::check_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The definition-verdict index used for incremental re-checking.
    pub fn def_index(&self) -> &Arc<DefIndex> {
        &self.defs
    }

    /// Turns incremental re-checking on or off explicitly (it is switched
    /// on automatically by [`Service::attach_cache_file`]).
    pub fn set_incremental(&self, on: bool) {
        self.incremental.store(on, Ordering::Relaxed);
    }

    /// Whether checks consult the def index.
    pub fn incremental(&self) -> bool {
        self.incremental.load(Ordering::Relaxed)
    }

    fn active_index(&self) -> Option<&DefIndex> {
        if self.incremental() {
            Some(&self.defs)
        } else {
            None
        }
    }

    /// Parses and checks one program, sharing the validity cache (and, in
    /// warm-start mode, skipping unchanged definitions).
    pub fn check_source(&self, source: &str) -> Result<ProgramReport, String> {
        match parse_program(source) {
            Ok(program) => Ok(self
                .engine
                .check_program_with(&program, self.active_index())),
            Err(e) => Err(format!("parse error: {e}")),
        }
    }

    /// Checks a batch of jobs on the worker pool, in submission order.
    pub fn check_batch(&self, jobs: &[BatchJob]) -> Vec<BatchResult> {
        check_batch_with(&self.engine, self.active_index(), jobs, self.workers)
    }

    /// Process-wide cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Process-wide compiled-program memo counters.
    pub fn program_cache_stats(&self) -> ProgramCacheStats {
        self.programs.stats()
    }

    /// Persistence counters (loads/saves and what the last load restored).
    pub fn persist_stats(&self) -> PersistStats {
        let p = self.persist.lock().expect("persist state poisoned");
        PersistStats {
            path: p.path.clone(),
            loads: p.loads,
            saves: p.saves,
            loaded_verdicts: p.loaded_verdicts,
            loaded_defs: p.loaded_defs,
            loaded_programs: p.loaded_programs,
            wal: p
                .wal
                .as_ref()
                .map(|w| w.lock().expect("wal store poisoned").stats()),
        }
    }

    /// The service-private metrics registry (request latency histograms and
    /// cache gauges).  Solver counters live on [`rel_obs::metrics::global`]
    /// instead; [`Service::metrics_snapshot`] merges both.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Refreshes the cache/persistence gauges on the service registry from
    /// the live cache counters.  The caches' own atomics stay the single
    /// source of truth — gauges are a read-through view refreshed at
    /// snapshot time, never incremented independently.
    pub fn publish_cache_gauges(&self) {
        let validity = self.cache_stats();
        let programs = self.program_cache_stats();
        let persist = self.persist_stats();
        let m = &self.metrics;
        m.set_gauge("cache.validity.hits", validity.hits as i64);
        m.set_gauge("cache.validity.misses", validity.misses as i64);
        m.set_gauge("cache.validity.entries", validity.entries as i64);
        m.set_gauge("cache.validity.evictions", validity.evictions as i64);
        m.set_gauge("cache.programs.hits", programs.hits as i64);
        m.set_gauge("cache.programs.misses", programs.misses as i64);
        m.set_gauge("cache.programs.entries", programs.entries as i64);
        m.set_gauge("cache.defs.entries", self.defs.len() as i64);
        m.set_gauge("persist.loads", persist.loads as i64);
        m.set_gauge("persist.saves", persist.saves as i64);
        if let Some(wal) = &persist.wal {
            m.set_gauge("wal.records", wal.records as i64);
            m.set_gauge("wal.bytes", wal.bytes as i64);
            m.set_gauge("wal.appends", wal.appends as i64);
            m.set_gauge("wal.append_errors", wal.append_errors as i64);
            m.set_gauge("wal.compactions", wal.compactions as i64);
            m.set_gauge("wal.poisoned", wal.poisoned as i64);
        }
        m.set_gauge(
            "persist.save_backoff_active",
            self.save_backoff_active() as i64,
        );
        let replica = self.replica_status();
        m.set_gauge("replica.published", replica.published as i64);
        m.set_gauge("replica.peers", replica.peers.len() as i64);
        m.set_gauge(
            "replica.peers_connected",
            replica.peers.iter().filter(|p| p.connected).count() as i64,
        );
        m.set_gauge(
            "replica.backoff_active",
            replica.peers.iter().filter(|p| p.backoff_ms > 0).count() as i64,
        );
        m.set_gauge(
            "replica.lag",
            replica.peers.iter().map(|p| p.lag).max().unwrap_or(0) as i64,
        );
        m.set_gauge(
            "replica.frames_shipped",
            replica.peers.iter().map(|p| p.shipped).sum::<u64>() as i64,
        );
        m.set_gauge(
            "replica.snapshots_sent",
            replica.peers.iter().map(|p| p.snapshots_sent).sum::<u64>() as i64,
        );
        m.set_gauge(
            "replica.queue_dropped",
            replica.peers.iter().map(|p| p.queue_dropped).sum::<u64>() as i64,
        );
        m.set_gauge(
            "replica.reconnects",
            replica.peers.iter().map(|p| p.reconnects).sum::<u64>() as i64,
        );
        m.set_gauge(
            "replica.frames_applied",
            replica.inbound.frames_applied as i64,
        );
        m.set_gauge(
            "replica.frames_duplicate",
            replica.inbound.frames_duplicate as i64,
        );
        m.set_gauge(
            "replica.frames_rejected",
            replica.inbound.frames_rejected as i64,
        );
        m.set_gauge(
            "replica.hellos_rejected",
            replica.inbound.hellos_rejected as i64,
        );
        m.set_gauge(
            "replica.snapshots_applied",
            replica.inbound.snapshots_applied as i64,
        );
    }

    /// One merged metrics snapshot: the process-wide solver counters from
    /// [`rel_obs::metrics::global`] plus this service's private registry
    /// (request histograms, cache gauges — refreshed first).  Name
    /// collisions resolve in favor of the service registry, though the two
    /// namespaces are kept disjoint by convention (`solver.*`/`fm.*` vs
    /// `serve.*`/`cache.*`).
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.publish_cache_gauges();
        let global = rel_obs::metrics::global().snapshot();
        let local = self.metrics.snapshot();
        fn merge_by_name<T>(a: Vec<(String, T)>, b: Vec<(String, T)>) -> Vec<(String, T)> {
            let mut map: std::collections::BTreeMap<String, T> = a.into_iter().collect();
            map.extend(b);
            map.into_iter().collect()
        }
        RegistrySnapshot {
            schema_version: rel_obs::SCHEMA_VERSION,
            counters: merge_by_name(global.counters, local.counters),
            gauges: merge_by_name(global.gauges, local.gauges),
            histograms: merge_by_name(global.histograms, local.histograms),
        }
    }

    /// Drops all memoized state: verdicts, compiled programs and definition
    /// hashes (counters are kept).  With persistence attached, the now-empty
    /// state is compacted to disk too — a cleared verdict must not
    /// resurrect from the old snapshot or log at the next restart.
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.programs.clear();
        self.defs.clear();
        let attached = self
            .persist
            .lock()
            .expect("persist state poisoned")
            .wal
            .is_some();
        if attached {
            // Best-effort: a failed save leaves stale state on disk, which
            // the warning path surfaces at the next explicit flush.
            let _ = self.save_cache();
        }
    }

    /// Configures warm-start persistence: remembers `path` for
    /// [`Service::save_cache`], switches incremental re-checking on, and
    /// recovers whatever the snapshot + WAL pair at the path holds.
    ///
    /// Recovery is `snapshot + WAL suffix`: the snapshot restores the bulk,
    /// then every validated log record replays on top (torn tails and
    /// corrupt frames are skipped, never applied).  From here on every
    /// cache store appends to the log, so verdicts are durable the moment
    /// they are memoized instead of at the next flush.
    ///
    /// A missing file is a clean cold start.  A rejected file (corrupt,
    /// wrong version, different engine fingerprint) is *also* a cold start:
    /// the outcome carries the warning, the path stays configured, and the
    /// next save overwrites the bad file with a good one.
    pub fn attach_cache_file(&self, path: impl Into<PathBuf>) -> LoadOutcome {
        self.attach_cache_file_with(Arc::new(RealFs), path, WalLimits::default())
    }

    /// [`Service::attach_cache_file`] through an explicit [`FaultFs`] and
    /// compaction thresholds — the seam the fault-injection tests drive.
    pub fn attach_cache_file_with(
        &self,
        fs: Arc<dyn FaultFs>,
        path: impl Into<PathBuf>,
        limits: WalLimits,
    ) -> LoadOutcome {
        let path = path.into();
        self.set_incremental(true);
        let (store, recovery) = WalStore::open(fs, &path, self.engine.fingerprint(), limits);
        let mut warnings = recovery.warnings.clone();

        let mut outcome = LoadOutcome {
            wal_records: recovery.stats.replayed,
            wal_anomalies: recovery.stats.anomalies(),
            reaped_tmp: recovery.reaped_tmp,
            ..LoadOutcome::default()
        };
        if let Some(snapshot) = &recovery.snapshot {
            snapshot.restore(&self.cache, &self.programs, &self.defs);
            outcome.verdicts = snapshot.verdicts.len() as u64;
            outcome.defs = snapshot.defs.len() as u64;
            outcome.programs = snapshot.programs.len() as u64;
        }
        for record in &recovery.records {
            match record {
                WalRecord::Verdict(key, verdict) => {
                    self.cache.store_key(key.clone(), verdict.clone());
                }
                WalRecord::Def {
                    input_hash,
                    verify_hash,
                    def,
                } => self.defs.insert(*input_hash, *verify_hash, def.clone()),
                WalRecord::Compaction { .. } => {}
            }
        }

        let wal = Arc::new(Mutex::new(store));
        {
            let mut p = self.persist.lock().expect("persist state poisoned");
            if recovery.snapshot.is_some() {
                p.loads += 1;
                p.loaded_verdicts = outcome.verdicts;
                p.loaded_defs = outcome.defs;
                p.loaded_programs = outcome.programs;
            }
            p.path = Some(path);
            p.wal = Some(Arc::clone(&wal));
        }

        // Attach the store observers only now: every entry restored or
        // replayed above must not re-enter the log it just came from.
        self.install_store_observers();

        // Fold a non-trivial recovery into a fresh snapshot immediately:
        // the suffix stops growing the next replay, and a torn or corrupt
        // tail is rewritten away so it can never shadow later appends.
        if recovery.should_compact() {
            if let Err(e) = self.save_cache() {
                warnings.push(format!("startup compaction failed: {e}"));
            }
        }

        outcome.warning = if warnings.is_empty() {
            None
        } else {
            Some(warnings.join("; "))
        };
        outcome
    }

    /// Runs a compaction if a store observer flagged the log as over its
    /// thresholds.  Returns whether one ran.  Cheap when not due (one atomic
    /// load) — the daemon calls this from the flusher tick and after each
    /// request batch.
    pub fn compact_if_due(&self) -> Result<bool, String> {
        if !self.compaction_due.load(Ordering::Relaxed) {
            return Ok(false);
        }
        self.save_cache().map(|_| true)
    }

    /// The configured snapshot path, if any.
    pub fn cache_file(&self) -> Option<PathBuf> {
        self.persist
            .lock()
            .expect("persist state poisoned")
            .path
            .clone()
    }

    /// Snapshots the current warm state to the configured cache file.
    /// Returns the number of verdicts written.
    ///
    /// # Errors
    ///
    /// When no cache file is configured, or the write fails.
    pub fn save_cache(&self) -> Result<u64, String> {
        let mut p = self.persist.lock().expect("persist state poisoned");
        let path = p
            .path
            .clone()
            .ok_or_else(|| "no cache file configured".to_string())?;
        self.save_locked(&mut p, &path)
    }

    /// [`Service::save_cache`], unless nothing was memoized since the last
    /// save — the periodic daemon flusher goes through this so an idle
    /// daemon does not re-serialize and rewrite an unchanged snapshot every
    /// interval.  Returns whether a save actually happened.
    pub fn save_cache_if_dirty(&self) -> Result<bool, String> {
        let mut p = self.persist.lock().expect("persist state poisoned");
        let path = p
            .path
            .clone()
            .ok_or_else(|| "no cache file configured".to_string())?;
        if p.last_saved_stamp == Some(self.warm_stamp()) {
            return Ok(false);
        }
        self.save_locked(&mut p, &path)?;
        Ok(true)
    }

    /// The save path proper.  Runs under the persist lock, which serializes
    /// concurrent in-process savers (periodic flusher vs. `{"cache":
    /// "flush"}`); cross-process savers are safe via the unique-tmp-name
    /// rename in [`Snapshot::save`].  With a WAL attached, every save is a
    /// *compaction*: the snapshot lands atomically, then the log truncates
    /// to a marker (crash between the two replays the old suffix onto the
    /// new snapshot — idempotent, never a loss).
    fn save_locked(&self, p: &mut PersistState, path: &Path) -> Result<u64, String> {
        // Stamp *before* capturing: state memoized concurrently during the
        // capture/write window must count as unsaved (the next dirty check
        // re-saves it), never as persisted.
        let stamp = self.warm_stamp();
        let snapshot = Snapshot::capture(
            self.engine.fingerprint(),
            &self.cache,
            &self.programs,
            &self.defs,
        );
        let verdicts = snapshot.verdicts.len() as u64;
        match &p.wal {
            Some(wal) => wal
                .lock()
                .expect("wal store poisoned")
                .compact(&snapshot)
                .map_err(|e| format!("cannot write cache file {}: {e}", path.display()))?,
            None => snapshot
                .save(path)
                .map_err(|e| format!("cannot write cache file {}: {e}", path.display()))?,
        }
        self.compaction_due.store(false, Ordering::Relaxed);
        p.saves += 1;
        p.last_saved_stamp = Some(stamp);
        Ok(verdicts)
    }

    /// A cheap monotone stamp of the memoized state: misses count freshly
    /// computed verdicts/programs (every store follows a miss), and the def
    /// index's mutation counter moves on every recorded definition *and*
    /// every clear.  All three components are monotone — a `len()`-based
    /// stamp would let a clear followed by re-inserts alias an old stamp
    /// and skip a needed flush.  Equal stamps ⇒ nothing new to persist.
    fn warm_stamp(&self) -> u64 {
        self.cache
            .stats()
            .misses
            .wrapping_add(self.programs.stats().misses)
            .wrapping_add(self.defs.mutation_count())
    }

    /// (Re)installs the cache/def-index store observers from the current
    /// persistence and replication configuration.  One composed closure per
    /// store: append to the WAL when one is attached, publish the encoded
    /// frame to the replication hub when one is enabled.  Called after
    /// restore/replay (so recovered entries never re-enter their own log)
    /// and after [`Service::enable_replication`].
    fn install_store_observers(&self) {
        let wal = self
            .persist
            .lock()
            .expect("persist state poisoned")
            .wal
            .clone();
        let hub = self
            .replica_hub
            .lock()
            .expect("replica hub poisoned")
            .clone();
        if wal.is_none() && hub.is_none() {
            self.cache.set_store_observer(None);
            self.defs.set_store_observer(None);
            return;
        }
        let fp = self.engine.fingerprint();

        let (w, h, due) = (wal.clone(), hub.clone(), Arc::clone(&self.compaction_due));
        self.cache
            .set_store_observer(Some(Arc::new(move |key, verdict| {
                if let Some(w) = &w {
                    let mut wal = w.lock().expect("wal store poisoned");
                    // An append failure leaves the verdict memory-only until
                    // the next compaction — degraded durability, never a
                    // wrong verdict.
                    let _ = wal.append_verdict(key, verdict);
                    if wal.needs_compaction() {
                        due.store(true, Ordering::Relaxed);
                    }
                }
                if let Some(h) = &h {
                    h.publish(encode_frame(
                        fp,
                        &WalRecord::Verdict(key.clone(), verdict.clone()),
                    ));
                }
            })));

        let (w, h, due) = (wal, hub, Arc::clone(&self.compaction_due));
        self.defs
            .set_store_observer(Some(Arc::new(move |input_hash, verify_hash, def| {
                if let Some(w) = &w {
                    let mut wal = w.lock().expect("wal store poisoned");
                    let _ = wal.append_def(input_hash, verify_hash, def);
                    if wal.needs_compaction() {
                        due.store(true, Ordering::Relaxed);
                    }
                }
                if let Some(h) = &h {
                    h.publish(encode_frame(
                        fp,
                        &WalRecord::Def {
                            input_hash,
                            verify_hash,
                            def: def.clone(),
                        },
                    ));
                }
            })));
    }

    // -- replication -------------------------------------------------------

    /// Enables the outbound replication plane: one supervised session per
    /// peer in `options`, shipping every store-observer frame and healing
    /// gaps by anti-entropy (ring suffix or snapshot transfer).  Inbound
    /// application needs no enabling — a daemon always applies validated
    /// frames handed to it.
    pub fn enable_replication(&self, transport: Arc<dyn Transport>, options: ReplicaOptions) {
        let fp = self.engine.fingerprint();
        // Capture *weak* references to the three stores the capture reads,
        // never the service or strong store Arcs: the hub lives in
        // `self.replica_hub` and the store observers hold the hub, so a
        // strong capture here closes an Arc cycle — a `Service` dropped
        // without `shutdown_replication` would leak the engine, the
        // persistence state and every cached verdict for the lifetime of
        // the parked session threads.
        let cache = Arc::downgrade(&self.cache);
        let programs = Arc::downgrade(&self.programs);
        let defs = Arc::downgrade(&self.defs);
        let source: SnapshotSource = Arc::new(move || {
            match (cache.upgrade(), programs.upgrade(), defs.upgrade()) {
                (Some(cache), Some(programs), Some(defs)) => {
                    Snapshot::capture(fp, &cache, &programs, &defs).to_bytes()
                }
                // The owning service is gone (dropped without shutdown).
                // An empty snapshot is sound — replication is set union —
                // and nothing will ever publish to this hub again.
                _ => Snapshot::capture(
                    fp,
                    &ShardedValidityCache::with_shards(1),
                    &SharedProgramCache::new(),
                    &DefIndex::new(),
                )
                .to_bytes(),
            }
        });
        let hub = ReplicaHub::start(fp, transport, options, source);
        *self.replica_hub.lock().expect("replica hub poisoned") = Some(hub);
        self.install_store_observers();
    }

    /// Whether an outbound replication plane is active.
    pub fn replication_enabled(&self) -> bool {
        self.replica_hub
            .lock()
            .expect("replica hub poisoned")
            .is_some()
    }

    /// Stops the outbound sessions and joins their threads.  Idempotent.
    pub fn shutdown_replication(&self) {
        let hub = self
            .replica_hub
            .lock()
            .expect("replica hub poisoned")
            .take();
        if let Some(hub) = hub {
            hub.shutdown();
            self.install_store_observers();
        }
    }

    /// A point-in-time view of the replication plane (peers + inbound
    /// counters), surfaced by `{"replica":"status"}`.
    pub fn replica_status(&self) -> ReplicaStatus {
        let hub = self
            .replica_hub
            .lock()
            .expect("replica hub poisoned")
            .clone();
        let sink = &self.replica_sink;
        ReplicaStatus {
            node: hub
                .as_ref()
                .map(|h| h.node().to_string())
                .unwrap_or_default(),
            published: hub.as_ref().map(|h| h.published()).unwrap_or(0),
            peers: hub.as_ref().map(|h| h.peer_status()).unwrap_or_default(),
            inbound: InboundStatus {
                sources: sink.source_count(),
                hellos: sink.hellos.load(Ordering::Relaxed),
                hellos_rejected: sink.hellos_rejected.load(Ordering::Relaxed),
                frames_applied: sink.frames_applied.load(Ordering::Relaxed),
                frames_duplicate: sink.frames_duplicate.load(Ordering::Relaxed),
                frames_rejected: sink.frames_rejected.load(Ordering::Relaxed),
                snapshots_applied: sink.snapshots_applied.load(Ordering::Relaxed),
            },
        }
    }

    /// Handles a replication hello: fingerprint gate, then the applied
    /// position for `node`.  `Err` is a fingerprint mismatch — the caller
    /// answers the mismatch marker and the sender parks the session.
    pub(crate) fn replica_hello(&self, node: &str, fp_hex: &str) -> Result<u64, String> {
        let theirs = u64::from_str_radix(fp_hex, 16).unwrap_or(0);
        if theirs != self.engine.fingerprint() {
            // Not `frames_rejected`: a refused handshake is incompatibility
            // (expected mid-upgrade), not frame corruption — conflating the
            // two would trip every zero-rejected-frames assertion during a
            // rolling engine upgrade.
            self.replica_sink
                .hellos_rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(FINGERPRINT_MISMATCH.to_string());
        }
        Ok(self.replica_sink.hello(node))
    }

    /// Validates and applies one replicated frame through the recovery
    /// validation path ([`validate_frame`]): checksum, engine fingerprint,
    /// payload decode.  A frame that fails *any* check is counted and
    /// dropped — never applied, so a foreign peer cannot fabricate a
    /// verdict.  Fresh content re-enters the store (and therefore the local
    /// WAL and outbound sessions); present content counts as a duplicate.
    /// Returns the source's contiguous applied position.
    pub(crate) fn replica_apply_frame(
        &self,
        node: &str,
        seq: u64,
        data_hex: &str,
    ) -> Result<u64, String> {
        let sink = &self.replica_sink;
        let reject = |reason: String| -> Result<u64, String> {
            sink.frames_rejected.fetch_add(1, Ordering::Relaxed);
            Err(reason)
        };
        let Some(bytes) = from_hex(data_hex) else {
            return reject("frame data is not hex".to_string());
        };
        let record = match validate_frame(&bytes, self.engine.fingerprint()) {
            Ok((record, used)) if used == bytes.len() => record,
            Ok(_) => return reject("trailing bytes after frame".to_string()),
            Err(FrameError::Foreign { .. }) => return reject(FINGERPRINT_MISMATCH.to_string()),
            Err(e) => return reject(e.to_string()),
        };
        let (class, applied) = sink.observe(node, seq);
        if class == SeqClass::Duplicate {
            sink.frames_duplicate.fetch_add(1, Ordering::Relaxed);
            return Ok(applied);
        }
        let fresh = match record {
            WalRecord::Verdict(key, verdict) => {
                if self.cache.contains_key(&key) {
                    false
                } else {
                    self.cache.store_key(key, verdict);
                    true
                }
            }
            WalRecord::Def {
                input_hash,
                verify_hash,
                def,
            } => {
                if self.defs.lookup(input_hash, verify_hash).is_some() {
                    false
                } else {
                    self.defs.insert(input_hash, verify_hash, def);
                    true
                }
            }
            // Compaction markers describe the sender's log, not state; they
            // are not shipped, but tolerate one as a positional no-op.
            WalRecord::Compaction { .. } => false,
        };
        if fresh {
            sink.frames_applied.fetch_add(1, Ordering::Relaxed);
        } else {
            sink.frames_duplicate.fetch_add(1, Ordering::Relaxed);
        }
        Ok(applied)
    }

    /// Validates and applies a full snapshot transfer: the snapshot's own
    /// magic/version/fingerprint/checksum validation gates it exactly as a
    /// local load would, then every absent verdict and def is applied
    /// set-union style.  The source's position jumps to `seq`.
    pub(crate) fn replica_apply_snapshot(
        &self,
        node: &str,
        seq: u64,
        data_hex: &str,
    ) -> Result<u64, String> {
        let sink = &self.replica_sink;
        let reject = |reason: String| -> Result<u64, String> {
            sink.frames_rejected.fetch_add(1, Ordering::Relaxed);
            Err(reason)
        };
        let Some(bytes) = from_hex(data_hex) else {
            return reject("snapshot data is not hex".to_string());
        };
        let snapshot = match Snapshot::from_bytes(&bytes, self.engine.fingerprint()) {
            Ok(snapshot) => snapshot,
            Err(rel_persist::SnapshotError::FingerprintMismatch { .. }) => {
                return reject(FINGERPRINT_MISMATCH.to_string());
            }
            Err(e) => return reject(format!("snapshot rejected: {e}")),
        };
        for (key, verdict) in snapshot.verdicts {
            if !self.cache.contains_key(&key) {
                self.cache.store_key(key, verdict);
            }
        }
        for (input_hash, verify_hash, def) in snapshot.defs {
            if self.defs.lookup(input_hash, verify_hash).is_none() {
                self.defs.insert(input_hash, verify_hash, def);
            }
        }
        // Compiled programs are a local memo (recompiled on demand), not
        // replicated state.
        sink.snapshots_applied.fetch_add(1, Ordering::Relaxed);
        Ok(sink.jump_to(node, seq))
    }

    // -- flusher degradation + health --------------------------------------

    /// The flusher's save path with graceful degradation: inside a failure
    /// backoff window nothing is attempted; a failure arms (or extends) a
    /// capped exponential backoff, bumps the `persist.save_failures`
    /// counter, and asks for a warning only on the healthy→failing edge; a
    /// success resets the schedule and reports whether it ended a streak.
    pub fn periodic_save(&self) -> PeriodicSave {
        {
            let health = self.save_health.lock().expect("save health poisoned");
            if let Some(at) = health.next_attempt {
                if Instant::now() < at {
                    return PeriodicSave::Deferred;
                }
            }
        }
        match self.save_cache_if_dirty() {
            Ok(saved) => {
                let mut health = self.save_health.lock().expect("save health poisoned");
                let recovered = health.failing;
                health.failing = false;
                health.next_attempt = None;
                health.backoff.reset();
                PeriodicSave::Ok { saved, recovered }
            }
            Err(error) => {
                let mut health = self.save_health.lock().expect("save health poisoned");
                let warn = !health.failing;
                health.failing = true;
                let backoff_ms = health.backoff.next_delay_ms();
                health.next_attempt =
                    Some(Instant::now() + std::time::Duration::from_millis(backoff_ms));
                self.metrics.counter("persist.save_failures").incr();
                PeriodicSave::Failed {
                    error,
                    warn,
                    backoff_ms,
                }
            }
        }
    }

    /// Whether the periodic save is currently in a failure backoff window.
    pub fn save_backoff_active(&self) -> bool {
        self.save_health
            .lock()
            .expect("save health poisoned")
            .failing
    }

    /// The daemon's health for orchestration probes: ready unless the WAL
    /// tail is poisoned (appends refused until compaction), the persist
    /// save is backing off, or every configured replication peer is down.
    ///
    /// A peer counts as *down* only once that is established — its session
    /// completed a handshake at some point, or it has burned through
    /// [`PEERS_DOWN_GRACE_ATTEMPTS`] failed connects.  A freshly started
    /// daemon whose peers have not finished their first handshake is
    /// booting, not degraded: without the grace, every daemon with
    /// `--peer` configured would flap 503 at startup and orchestration
    /// probes gating on `/healthz` would see spurious failures.
    pub fn health(&self) -> Health {
        let mut reasons = Vec::new();
        if let Some(wal) = self.persist_stats().wal {
            if wal.poisoned != 0 {
                reasons.push("wal-poisoned".to_string());
            }
        }
        if self.save_backoff_active() {
            reasons.push("save-backoff".to_string());
        }
        let replica = self.replica_status();
        let down = |p: &crate::replica::PeerStatus| {
            !p.connected && (p.ever_connected || p.reconnects >= PEERS_DOWN_GRACE_ATTEMPTS)
        };
        if !replica.peers.is_empty() && replica.peers.iter().all(down) {
            reasons.push("peers-down".to_string());
        }
        Health {
            ready: reasons.is_empty(),
            reasons,
        }
    }
}

// The whole point of the service is sharing the engine across workers; keep
// that property checked at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Service>();
    assert_send_sync::<Engine>();
};
