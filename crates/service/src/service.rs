//! The serving subsystem tying engine, worker pool and validity cache
//! together.

use std::sync::Arc;

use birelcost::{Engine, ProgramReport};
use rel_constraint::{CacheStats, ShardedValidityCache, ValidityCache};
use rel_syntax::parse_program;

use crate::batch::{check_batch, BatchJob, BatchResult};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for batch checking (1 = sequential).
    pub workers: usize,
    /// Shards of the validity cache.
    pub cache_shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: available_workers(),
            cache_shards: 16,
        }
    }
}

/// Picks a default worker count from the machine's parallelism.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A checking service: a shared [`Engine`], a shared validity cache, and a
/// worker pool width.  Cheap to clone (everything is behind [`Arc`]s); safe to
/// drive from multiple threads.
#[derive(Debug, Clone)]
pub struct Service {
    engine: Arc<Engine>,
    cache: Arc<ShardedValidityCache>,
    workers: usize,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServiceConfig::default())
    }
}

impl Service {
    /// Builds a service with a default engine.
    pub fn new(config: ServiceConfig) -> Service {
        Service::with_engine(Engine::new(), config)
    }

    /// Builds a service around an explicitly configured engine.  The engine
    /// is re-wired to the service's shared validity cache.
    pub fn with_engine(engine: Engine, config: ServiceConfig) -> Service {
        let cache = Arc::new(ShardedValidityCache::with_shards(config.cache_shards));
        let engine = engine.with_cache(cache.clone());
        Service {
            engine: Arc::new(engine),
            cache,
            workers: config.workers.max(1),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The worker-pool width used by [`Service::check_batch`].
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Parses and checks one program, sharing the validity cache.
    pub fn check_source(&self, source: &str) -> Result<ProgramReport, String> {
        match parse_program(source) {
            Ok(program) => Ok(self.engine.check_program(&program)),
            Err(e) => Err(format!("parse error: {e}")),
        }
    }

    /// Checks a batch of jobs on the worker pool, in submission order.
    pub fn check_batch(&self, jobs: &[BatchJob]) -> Vec<BatchResult> {
        check_batch(&self.engine, jobs, self.workers)
    }

    /// Process-wide cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops all memoized verdicts (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

// The whole point of the service is sharing the engine across workers; keep
// that property checked at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Service>();
    assert_send_sync::<Engine>();
};
