//! A minimal JSON parser/serializer for the daemon protocol.
//!
//! The container has no registry access, so `serde_json` is unavailable; the
//! newline-delimited protocol of [`crate::daemon`] only needs flat values and
//! small objects, which this module covers completely (objects, arrays,
//! strings with full escape handling, integers, floats, booleans, null).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part (kept exact for counters).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Num(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    // JSON has no Infinity/NaN literals.
                    write!(f, "null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                            // hex4 leaves pos after the digits; step back one
                            // so the shared `pos += 1` below lands correctly.
                            self.pos -= 1;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or backslash.
                    // Both delimiters are ASCII, so stopping on them always
                    // lands on a char boundary, and the input arrived as a
                    // &str, so the run itself is valid UTF-8.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input was a &str and the run ends on an ASCII delimiter");
                    out.push_str(run);
                }
            }
        }
    }

    /// Reads 4 hex digits, leaving `pos` just after them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for i in 0..4 {
            let b = self
                .bytes
                .get(self.pos + i)
                .copied()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + d;
        }
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -42 ").unwrap(), Value::Int(-42));
        assert_eq!(parse("1.5").unwrap(), Value::Num(1.5));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"check": "def f;", "opts": {"jobs": 4}, "tags": [1, 2]}"#).unwrap();
        assert_eq!(v.get("check").and_then(Value::as_str), Some("def f;"));
        assert_eq!(
            v.get("opts")
                .and_then(|o| o.get("jobs"))
                .and_then(Value::as_int),
            Some(4)
        );
        assert_eq!(
            v.get("tags"),
            Some(&Value::Arr(vec![Value::Int(1), Value::Int(2)]))
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{8} \u{1F600}";
        let serialized = Value::Str(original.to_string()).to_string();
        assert_eq!(
            parse(&serialized).unwrap(),
            Value::Str(original.to_string())
        );
        // Explicit surrogate-pair escape decodes to the astral char.
        assert_eq!(
            parse(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".to_string())
        );
    }

    #[test]
    fn serialization_round_trips() {
        let v = Value::obj([
            ("ok", Value::Bool(true)),
            ("count", Value::Int(3)),
            (
                "names",
                Value::Arr(vec![Value::Str("a b".into()), Value::Null]),
            ),
        ]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1,",
            "\"unterminated",
            "truex",
            "01x",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }
}
