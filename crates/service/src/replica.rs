//! `rel-replica` — verdict replication between daemons (DESIGN.md §11).
//!
//! Each daemon ships its WAL frames to configured peers, and applies
//! inbound frames through the *same* validation path recovery uses
//! ([`rel_persist::validate_frame`]): per-frame checksum plus
//! engine-fingerprint check, so a mismatched or corrupt peer can never
//! fabricate a verdict — only be counted and dropped.  Soundness rests on
//! the bidirectional checker's determinism: a verdict is a pure function of
//! the query and the engine fingerprint, so replication is set union, and
//! applying a peer's frame is exactly as sound as replaying one's own log.
//!
//! ## Roles
//!
//! * **Outbound** ([`ReplicaHub`]): one supervised session per configured
//!   peer.  The store observers publish every freshly encoded WAL frame to
//!   a bounded per-peer queue (never blocking the client path); each
//!   session thread drains its queue, ships frames over a [`Transport`]
//!   wire, and reconnects with capped exponential backoff + jitter on any
//!   failure.  Queue overflow degrades to *anti-entropy*: the queue is
//!   cleared, the session notices the lag flag and re-syncs from the
//!   recent-frame ring — or, beyond the ring, by a full snapshot transfer.
//! * **Inbound** ([`ReplicaSink`]): per-source positions and counters.  The
//!   daemon applies a frame only if it validates; fresh verdicts re-enter
//!   the local store (and therefore the local WAL and the local outbound
//!   sessions), which is what makes chains `A → B → C` converge without a
//!   full mesh.  Already-present entries are counted as duplicates and do
//!   not re-ship, so replication traffic terminates.
//!
//! ## Protocol
//!
//! One JSON object per line, request/response in lockstep (the replica
//! plane is half-duplex, like the HTTP plane):
//!
//! ```text
//! → {"replica":"hello","v":1,"node":"<token>","fp":"<16-hex>"}
//! ← {"replica":"state","applied":N,"fp":"<16-hex>"}
//! → {"replica":"frame","node":"<token>","seq":N,"data":"<hex frame>"}
//! ← {"replica":"ack","applied":N}
//! → {"replica":"snapshot","node":"<token>","seq":N,"data":"<hex snapshot>"}
//! ← {"replica":"ack","applied":N}
//! ```
//!
//! `node` is a session-unique token: positions are meaningful only within
//! one sender session, so a restarted sender presents a fresh token, reads
//! `applied: 0` back, and heals the gap with a snapshot transfer.  `applied`
//! in an ack is the receiver's *contiguous* position — an ack below the
//! shipped sequence is a rewind request (frames were lost to a drop fault
//! or an overflow on the way), and the sender re-sends from there.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rel_obs::Backoff;

use crate::faultnet::{Transport, Wire};
use crate::json::{self, Value};

/// Replication protocol version (in every hello).
pub const REPLICA_PROTOCOL_VERSION: i64 = 1;

/// The error marker a receiver answers when the sender's engine
/// fingerprint is foreign: the sender parks the session as incompatible
/// instead of retrying hot.
pub const FINGERPRINT_MISMATCH: &str = "replica-fingerprint-mismatch";

/// Idle inbox waits between wire heartbeats (each wait is 200 ms, so a
/// session probes a quiet peer roughly once a second).  The heartbeat is a
/// re-sent hello: it detects a silently dead connection without waiting for
/// the next store, and its `state` reply exposes a peer that restarted
/// empty (position rewound) so anti-entropy can heal it immediately.
const HEARTBEAT_IDLE_TICKS: u64 = 5;

/// Configuration of the outbound replication plane.
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// Peer addresses (transport-specific: `host:port` under TCP, endpoint
    /// names under the in-memory `SimNet`).
    pub peers: Vec<String>,
    /// Per-peer replication queue bound.  Overflow clears the queue and
    /// degrades that peer to anti-entropy catch-up — client requests are
    /// never delayed by a slow peer.
    pub queue: usize,
    /// Recent-frame ring capacity: how far behind a peer may fall and still
    /// catch up by suffix instead of full snapshot transfer.
    pub ring: usize,
    /// Backoff base delay after the first failure (milliseconds).
    pub backoff_base_ms: u64,
    /// Backoff ceiling (milliseconds).
    pub backoff_cap_ms: u64,
    /// Session-unique node token; `None` generates one.
    pub node: Option<String>,
}

impl Default for ReplicaOptions {
    fn default() -> ReplicaOptions {
        ReplicaOptions {
            peers: Vec::new(),
            queue: 1024,
            ring: 4096,
            backoff_base_ms: 100,
            backoff_cap_ms: 15_000,
            node: None,
        }
    }
}

/// Lowercase hex of `bytes`.
pub(crate) fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

/// Decodes lowercase/uppercase hex; `None` on odd length or a bad digit.
pub(crate) fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks_exact(2)
            .map(|p| ((p[0] << 4) | p[1]) as u8)
            .collect(),
    )
}

/// A session-unique node token: fingerprint + pid + wall-clock nanos, so
/// two daemons — or two runs of one daemon — never collide.
pub(crate) fn generate_node_token(fingerprint: u64) -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    format!("{fingerprint:016x}-{}-{nanos:x}", std::process::id())
}

// ---------------------------------------------------------------------------
// Inbound: per-source positions + counters
// ---------------------------------------------------------------------------

/// Where one inbound frame landed positionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SeqClass {
    /// At or below the contiguous position: already covered.
    Duplicate,
    /// Above it: fresh (possibly out of order).
    Fresh,
}

#[derive(Debug, Default)]
struct SourceState {
    /// Highest contiguous sequence applied from this source.
    applied: u64,
    /// Sequences applied above the contiguous position (reordered
    /// arrivals), drained as the gap fills.
    pending: BTreeSet<u64>,
}

impl SourceState {
    fn observe(&mut self, seq: u64) -> SeqClass {
        if seq <= self.applied {
            return SeqClass::Duplicate;
        }
        self.pending.insert(seq);
        while self.pending.remove(&(self.applied + 1)) {
            self.applied += 1;
        }
        SeqClass::Fresh
    }

    /// A snapshot transfer covers everything through `seq`.
    fn jump_to(&mut self, seq: u64) {
        if seq > self.applied {
            self.applied = seq;
        }
        self.pending.retain(|s| *s > self.applied);
        while self.pending.remove(&(self.applied + 1)) {
            self.applied += 1;
        }
    }
}

/// The inbound side of replication: positions per source node and the
/// counters `{"replica":"status"}` reports.  Validation and application of
/// record *content* happen in the service (it owns the caches); the sink
/// owns everything positional.
#[derive(Debug, Default)]
pub(crate) struct ReplicaSink {
    sources: Mutex<HashMap<String, SourceState>>,
    pub(crate) frames_applied: AtomicU64,
    pub(crate) frames_duplicate: AtomicU64,
    pub(crate) frames_rejected: AtomicU64,
    pub(crate) snapshots_applied: AtomicU64,
    pub(crate) hellos: AtomicU64,
    pub(crate) hellos_rejected: AtomicU64,
}

impl ReplicaSink {
    /// Registers a hello from `node` and returns its applied position.
    pub(crate) fn hello(&self, node: &str) -> u64 {
        self.hellos.fetch_add(1, Ordering::Relaxed);
        self.sources
            .lock()
            .expect("replica sink poisoned")
            .entry(node.to_string())
            .or_default()
            .applied
    }

    /// Classifies `seq` from `node` and advances the contiguous position.
    /// Returns the class and the position after the observation.
    pub(crate) fn observe(&self, node: &str, seq: u64) -> (SeqClass, u64) {
        let mut sources = self.sources.lock().expect("replica sink poisoned");
        let state = sources.entry(node.to_string()).or_default();
        let class = state.observe(seq);
        (class, state.applied)
    }

    /// Marks everything through `seq` covered (snapshot transfer) and
    /// returns the position after the jump.
    pub(crate) fn jump_to(&self, node: &str, seq: u64) -> u64 {
        let mut sources = self.sources.lock().expect("replica sink poisoned");
        let state = sources.entry(node.to_string()).or_default();
        state.jump_to(seq);
        state.applied
    }

    /// Number of distinct source nodes seen.
    pub(crate) fn source_count(&self) -> u64 {
        self.sources.lock().expect("replica sink poisoned").len() as u64
    }
}

// ---------------------------------------------------------------------------
// Outbound: hub, peer state, supervised sessions
// ---------------------------------------------------------------------------

/// What a peer session is currently doing (surfaced in
/// `{"replica":"status"}` and the chaos assertions).
const STATE_CONNECTING: &str = "connecting";
const STATE_CATCH_UP: &str = "catch-up";
const STATE_STREAMING: &str = "streaming";
const STATE_BACKOFF: &str = "backoff";
const STATE_INCOMPATIBLE: &str = "incompatible";
const STATE_STOPPED: &str = "stopped";

#[derive(Debug, Default)]
struct Inbox {
    queue: VecDeque<(u64, Arc<Vec<u8>>)>,
    /// Set when overflow cleared the queue: the session must re-sync from
    /// the ring or a snapshot before streaming on.
    lagging: bool,
}

#[derive(Debug)]
struct PeerState {
    addr: String,
    inbox: Mutex<Inbox>,
    wake: Condvar,
    shipped: AtomicU64,
    acked: AtomicU64,
    reconnects: AtomicU64,
    snapshots_sent: AtomicU64,
    queue_dropped: AtomicU64,
    incompatible: AtomicU64,
    connected: AtomicBool,
    /// Whether this session has ever completed a handshake: health treats
    /// a never-connected peer as *booting*, not down, until its connect
    /// attempts exhaust the grace budget.
    ever_connected: AtomicBool,
    backoff_ms: AtomicU64,
    state: Mutex<&'static str>,
}

impl PeerState {
    fn new(addr: String) -> PeerState {
        PeerState {
            addr,
            inbox: Mutex::new(Inbox::default()),
            wake: Condvar::new(),
            shipped: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            snapshots_sent: AtomicU64::new(0),
            queue_dropped: AtomicU64::new(0),
            incompatible: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            ever_connected: AtomicBool::new(false),
            backoff_ms: AtomicU64::new(0),
            state: Mutex::new(STATE_CONNECTING),
        }
    }

    fn set_state(&self, s: &'static str) {
        *self.state.lock().expect("peer state poisoned") = s;
    }
}

/// One peer's row in [`ReplicaStatus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// The configured address.
    pub addr: String,
    /// Session state: `connecting`, `catch-up`, `streaming`, `backoff`,
    /// `incompatible`, or `stopped`.
    pub state: String,
    /// Whether the session currently holds a live connection.
    pub connected: bool,
    /// Whether the session has ever completed a handshake this run.
    pub ever_connected: bool,
    /// Frames shipped over this session (re-sends included).
    pub shipped: u64,
    /// The peer's last acknowledged contiguous position.
    pub acked: u64,
    /// Frames published but not yet acknowledged by this peer.
    pub lag: u64,
    /// Reconnect attempts made.
    pub reconnects: u64,
    /// Full snapshot transfers sent (anti-entropy beyond the ring).
    pub snapshots_sent: u64,
    /// Frames dropped by queue overflow (each drop degrades to catch-up).
    pub queue_dropped: u64,
    /// Handshakes rejected for an engine-fingerprint mismatch.
    pub incompatible: u64,
    /// The current backoff delay, 0 when not backing off.
    pub backoff_ms: u64,
}

/// Inbound counters in [`ReplicaStatus`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InboundStatus {
    /// Distinct source nodes that have said hello.
    pub sources: u64,
    /// Hellos answered.
    pub hellos: u64,
    /// Hellos refused for an engine-fingerprint mismatch.  Counted apart
    /// from `frames_rejected`, which is reserved for frame validation
    /// failures: a mid-upgrade peer's handshake must never read as frame
    /// corruption.
    pub hellos_rejected: u64,
    /// Frames validated and applied.
    pub frames_applied: u64,
    /// Frames that were positional or content duplicates (dropped, sound).
    pub frames_duplicate: u64,
    /// Frames rejected by checksum/fingerprint/decode — counted, never
    /// applied.
    pub frames_rejected: u64,
    /// Snapshot transfers validated and applied.
    pub snapshots_applied: u64,
}

/// A point-in-time view of the whole replication plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// This daemon's session token.
    pub node: String,
    /// Frames published to the outbound plane this session.
    pub published: u64,
    /// One row per configured peer.
    pub peers: Vec<PeerStatus>,
    /// Inbound counters.
    pub inbound: InboundStatus,
}

/// Produces the current full-state snapshot bytes for anti-entropy
/// transfer.  Provided by the service (it owns the caches).
pub(crate) type SnapshotSource = Arc<dyn Fn() -> Vec<u8> + Send + Sync>;

/// The outbound replication plane: the published-frame ring, one supervised
/// session per peer, and the shutdown latch.
pub(crate) struct ReplicaHub {
    node: String,
    transport: Arc<dyn Transport>,
    options: ReplicaOptions,
    snapshot_source: SnapshotSource,
    /// Frames published this session (sequence numbers start at 1).
    seq: AtomicU64,
    ring: Mutex<VecDeque<(u64, Arc<Vec<u8>>)>>,
    peers: Vec<Arc<PeerState>>,
    shutdown: AtomicBool,
    /// Interruptible sleep for backoff waits: signaled on shutdown.
    gate: Mutex<()>,
    gate_cv: Condvar,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for ReplicaHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaHub")
            .field("node", &self.node)
            .field("peers", &self.peers.len())
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl ReplicaHub {
    /// Builds the hub and spawns one supervised session thread per peer.
    pub(crate) fn start(
        fingerprint: u64,
        transport: Arc<dyn Transport>,
        options: ReplicaOptions,
        snapshot_source: SnapshotSource,
    ) -> Arc<ReplicaHub> {
        let node = options
            .node
            .clone()
            .unwrap_or_else(|| generate_node_token(fingerprint));
        let peers: Vec<Arc<PeerState>> = options
            .peers
            .iter()
            .map(|a| Arc::new(PeerState::new(a.clone())))
            .collect();
        let hub = Arc::new(ReplicaHub {
            node,
            transport,
            options,
            snapshot_source,
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
            peers,
            shutdown: AtomicBool::new(false),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
            threads: Mutex::new(Vec::new()),
        });
        let mut threads = hub.threads.lock().expect("hub threads poisoned");
        for (i, peer) in hub.peers.iter().enumerate() {
            let hub = Arc::clone(&hub);
            let peer = Arc::clone(peer);
            let fp = fingerprint;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("replica-peer-{i}"))
                    .spawn(move || run_session(&hub, &peer, fp))
                    .expect("spawn replica session"),
            );
        }
        drop(threads);
        hub
    }

    /// This daemon's session token.
    pub(crate) fn node(&self) -> &str {
        &self.node
    }

    /// Publishes one encoded WAL frame to every peer queue.  Never blocks
    /// on I/O: overflow clears the slow peer's queue and flags it lagging.
    ///
    /// Sequence assignment and ring/inbox insertion happen as one unit
    /// under the ring lock: concurrent store observers (the reactor worker
    /// pool serves checks in parallel) would otherwise interleave between
    /// the two and land frames out of sequence order — and catch-up ships
    /// the ring in ring order, treating an ack below the shipped sequence
    /// as a protocol anomaly, so one inverted pair would put the peer
    /// session into a reconnect loop until the pair fell off the ring.
    pub(crate) fn publish(&self, frame: Vec<u8>) {
        let frame = Arc::new(frame);
        let mut ring = self.ring.lock().expect("replica ring poisoned");
        let seq = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        ring.push_back((seq, Arc::clone(&frame)));
        while ring.len() > self.options.ring {
            ring.pop_front();
        }
        for peer in &self.peers {
            let mut inbox = peer.inbox.lock().expect("peer inbox poisoned");
            if inbox.queue.len() >= self.options.queue {
                peer.queue_dropped
                    .fetch_add(inbox.queue.len() as u64, Ordering::Relaxed);
                inbox.queue.clear();
                inbox.lagging = true;
            }
            inbox.queue.push_back((seq, Arc::clone(&frame)));
            drop(inbox);
            peer.wake.notify_one();
        }
    }

    /// Frames published this session.
    pub(crate) fn published(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// The ring suffix after position `applied`, or `None` when the ring no
    /// longer reaches back that far (snapshot transfer required).
    fn ring_suffix(&self, applied: u64) -> Option<Vec<(u64, Arc<Vec<u8>>)>> {
        let ring = self.ring.lock().expect("replica ring poisoned");
        let floor = match ring.front() {
            Some((s, _)) => *s,
            None => return Some(Vec::new()),
        };
        if applied + 1 < floor {
            return None;
        }
        Some(
            ring.iter()
                .filter(|(s, _)| *s > applied)
                .map(|(s, f)| (*s, Arc::clone(f)))
                .collect(),
        )
    }

    /// Signals every session to stop and joins them.
    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for peer in &self.peers {
            peer.wake.notify_all();
        }
        self.gate_cv.notify_all();
        let mut threads = self.threads.lock().expect("hub threads poisoned");
        for t in threads.drain(..) {
            let _ = t.join();
        }
        for peer in &self.peers {
            peer.set_state(STATE_STOPPED);
            peer.connected.store(false, Ordering::Relaxed);
        }
    }

    /// Sleeps up to `ms`, returning early (true) on shutdown.
    fn wait_shutdown(&self, ms: u64) -> bool {
        let gate = self.gate.lock().expect("hub gate poisoned");
        if self.shutdown.load(Ordering::SeqCst) {
            return true;
        }
        let (_gate, _timeout) = self
            .gate_cv
            .wait_timeout(gate, Duration::from_millis(ms))
            .expect("hub gate poisoned");
        self.shutdown.load(Ordering::SeqCst)
    }

    /// One status row per peer.
    pub(crate) fn peer_status(&self) -> Vec<PeerStatus> {
        let published = self.published();
        self.peers
            .iter()
            .map(|p| {
                let acked = p.acked.load(Ordering::Relaxed);
                PeerStatus {
                    addr: p.addr.clone(),
                    state: p.state.lock().expect("peer state poisoned").to_string(),
                    connected: p.connected.load(Ordering::Relaxed),
                    ever_connected: p.ever_connected.load(Ordering::Relaxed),
                    shipped: p.shipped.load(Ordering::Relaxed),
                    acked,
                    lag: published.saturating_sub(acked),
                    reconnects: p.reconnects.load(Ordering::Relaxed),
                    snapshots_sent: p.snapshots_sent.load(Ordering::Relaxed),
                    queue_dropped: p.queue_dropped.load(Ordering::Relaxed),
                    incompatible: p.incompatible.load(Ordering::Relaxed),
                    backoff_ms: p.backoff_ms.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

/// What the inbox wait produced.
enum InboxEvent {
    Frame(u64, Arc<Vec<u8>>),
    Lagging,
    Idle,
    Shutdown,
}

fn wait_inbox(hub: &ReplicaHub, peer: &PeerState, timeout: Duration) -> InboxEvent {
    let deadline = std::time::Instant::now() + timeout;
    let mut inbox = peer.inbox.lock().expect("peer inbox poisoned");
    loop {
        if hub.shutdown.load(Ordering::SeqCst) {
            return InboxEvent::Shutdown;
        }
        if inbox.lagging {
            inbox.lagging = false;
            inbox.queue.clear();
            return InboxEvent::Lagging;
        }
        if let Some((seq, frame)) = inbox.queue.pop_front() {
            return InboxEvent::Frame(seq, frame);
        }
        let now = std::time::Instant::now();
        if now >= deadline {
            return InboxEvent::Idle;
        }
        let (guard, _timeout) = peer
            .wake
            .wait_timeout(inbox, deadline - now)
            .expect("peer inbox poisoned");
        inbox = guard;
    }
}

/// A parsed response line from the peer.
enum Reply {
    State { applied: u64, fp: u64 },
    Ack { applied: u64 },
    Mismatch,
    Other(String),
}

fn parse_reply(line: &str) -> Reply {
    let Ok(v) = json::parse(line) else {
        return Reply::Other(format!("unparseable reply: {line}"));
    };
    if let Some(err) = v.get("error").and_then(Value::as_str) {
        if err == FINGERPRINT_MISMATCH {
            return Reply::Mismatch;
        }
        return Reply::Other(err.to_string());
    }
    match v.get("replica").and_then(Value::as_str) {
        Some("state") => {
            let applied = v.get("applied").and_then(Value::as_int).unwrap_or(0) as u64;
            let fp = v
                .get("fp")
                .and_then(Value::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .unwrap_or(0);
            Reply::State { applied, fp }
        }
        Some("ack") => Reply::Ack {
            applied: v.get("applied").and_then(Value::as_int).unwrap_or(0) as u64,
        },
        _ => Reply::Other(format!("unexpected reply: {line}")),
    }
}

fn send_recv(wire: &mut Box<dyn Wire>, line: &str) -> io::Result<Reply> {
    wire.send(line)?;
    Ok(parse_reply(&wire.recv()?))
}

/// Ships one frame and folds the ack into `applied`.  `Ok(false)` means the
/// receiver is behind what we just sent (a gap on its side): the caller
/// should rewind to `applied` and re-send.
fn ship_frame(
    hub: &ReplicaHub,
    peer: &PeerState,
    wire: &mut Box<dyn Wire>,
    seq: u64,
    frame: &[u8],
    applied: &mut u64,
) -> io::Result<bool> {
    let msg = Value::obj([
        ("replica", Value::Str("frame".to_string())),
        ("node", Value::Str(hub.node.clone())),
        ("seq", Value::Int(seq as i64)),
        ("data", Value::Str(to_hex(frame))),
    ]);
    match send_recv(wire, &msg.to_string())? {
        Reply::Ack { applied: a } => {
            peer.shipped.fetch_add(1, Ordering::Relaxed);
            *applied = a.max(*applied);
            peer.acked.store(*applied, Ordering::Relaxed);
            Ok(a >= seq)
        }
        Reply::Mismatch => Err(io::Error::other(FINGERPRINT_MISMATCH)),
        Reply::State { .. } => Err(io::Error::other("unexpected state reply to frame")),
        Reply::Other(e) => Err(io::Error::other(e)),
    }
}

/// Brings the peer from `applied` up to the currently published position,
/// by ring suffix when it reaches, by full snapshot transfer otherwise.
fn catch_up(
    hub: &ReplicaHub,
    peer: &PeerState,
    wire: &mut Box<dyn Wire>,
    applied: &mut u64,
) -> io::Result<()> {
    peer.set_state(STATE_CATCH_UP);
    loop {
        let published = hub.published();
        if *applied >= published {
            return Ok(());
        }
        match hub.ring_suffix(*applied) {
            Some(frames) => {
                for (seq, frame) in frames {
                    if seq <= *applied {
                        continue;
                    }
                    if !ship_frame(hub, peer, wire, seq, &frame, applied)? {
                        // The receiver reported a position below this frame
                        // even after receiving it in order — protocol
                        // anomaly; reconnect rather than spin.
                        return Err(io::Error::other("peer position regressed in catch-up"));
                    }
                }
            }
            None => {
                // Beyond the ring: transfer the whole state.  Read the
                // position *before* capturing, so anything memoized during
                // the capture stays above the transferred position and is
                // streamed (or deduplicated) afterwards.
                let position = hub.published();
                let bytes = (hub.snapshot_source)();
                let msg = Value::obj([
                    ("replica", Value::Str("snapshot".to_string())),
                    ("node", Value::Str(hub.node.clone())),
                    ("seq", Value::Int(position as i64)),
                    ("data", Value::Str(to_hex(&bytes))),
                ]);
                match send_recv(wire, &msg.to_string())? {
                    Reply::Ack { applied: a } => {
                        peer.snapshots_sent.fetch_add(1, Ordering::Relaxed);
                        *applied = a.max(*applied);
                        peer.acked.store(*applied, Ordering::Relaxed);
                        if *applied < position {
                            return Err(io::Error::other("snapshot transfer not applied"));
                        }
                    }
                    Reply::Mismatch => return Err(io::Error::other(FINGERPRINT_MISMATCH)),
                    Reply::State { .. } | Reply::Other(_) => {
                        return Err(io::Error::other("unexpected reply to snapshot"));
                    }
                }
            }
        }
    }
}

/// The supervised per-peer session: connect → handshake → catch-up →
/// stream, restarting with capped exponential backoff + jitter on any
/// failure, parking at the cap on fingerprint incompatibility.
fn run_session(hub: &ReplicaHub, peer: &PeerState, fingerprint: u64) {
    let seed = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        (hub.node.as_str(), peer.addr.as_str()).hash(&mut h);
        h.finish()
    };
    let mut backoff = Backoff::new(
        hub.options.backoff_base_ms,
        hub.options.backoff_cap_ms,
        seed,
    );
    'supervise: while !hub.shutdown.load(Ordering::SeqCst) {
        peer.set_state(STATE_CONNECTING);
        peer.connected.store(false, Ordering::Relaxed);
        let mut wire = match hub.transport.connect(&peer.addr) {
            Ok(wire) => wire,
            Err(_) => {
                peer.reconnects.fetch_add(1, Ordering::Relaxed);
                let delay = backoff.next_delay_ms();
                peer.backoff_ms.store(delay, Ordering::Relaxed);
                peer.set_state(STATE_BACKOFF);
                if hub.wait_shutdown(delay) {
                    break;
                }
                continue;
            }
        };

        // Handshake: present our token, learn the peer's position.
        let hello = Value::obj([
            ("replica", Value::Str("hello".to_string())),
            ("v", Value::Int(REPLICA_PROTOCOL_VERSION)),
            ("node", Value::Str(hub.node.clone())),
            ("fp", Value::Str(format!("{fingerprint:016x}"))),
        ]);
        let mut applied = match send_recv(&mut wire, &hello.to_string()) {
            Ok(Reply::State { applied, fp }) if fp == fingerprint => applied,
            Ok(Reply::State { .. }) | Ok(Reply::Mismatch) => {
                // A foreign engine: its verdicts would never validate here
                // and ours never there.  Park at the cap instead of
                // hammering — the peer may be mid-upgrade.
                peer.incompatible.fetch_add(1, Ordering::Relaxed);
                peer.set_state(STATE_INCOMPATIBLE);
                peer.backoff_ms
                    .store(hub.options.backoff_cap_ms, Ordering::Relaxed);
                if hub.wait_shutdown(hub.options.backoff_cap_ms) {
                    break;
                }
                continue;
            }
            Ok(_) | Err(_) => {
                peer.reconnects.fetch_add(1, Ordering::Relaxed);
                let delay = backoff.next_delay_ms();
                peer.backoff_ms.store(delay, Ordering::Relaxed);
                peer.set_state(STATE_BACKOFF);
                if hub.wait_shutdown(delay) {
                    break;
                }
                continue;
            }
        };
        backoff.reset();
        peer.backoff_ms.store(0, Ordering::Relaxed);
        peer.connected.store(true, Ordering::Relaxed);
        peer.ever_connected.store(true, Ordering::Relaxed);
        peer.acked.store(applied, Ordering::Relaxed);

        // Anti-entropy first, then stream.
        let mut idle_ticks: u64 = 0;
        let mut step = || -> io::Result<()> {
            catch_up(hub, peer, &mut wire, &mut applied)?;
            peer.set_state(STATE_STREAMING);
            loop {
                match wait_inbox(hub, peer, Duration::from_millis(200)) {
                    InboxEvent::Shutdown => return Ok(()),
                    InboxEvent::Lagging => catch_up(hub, peer, &mut wire, &mut applied)?,
                    InboxEvent::Idle => {
                        // Residual drift (a dropped publish before this
                        // session connected, or a nack rewind target) heals
                        // here rather than waiting for the next store.
                        if applied < hub.published() {
                            catch_up(hub, peer, &mut wire, &mut applied)?;
                            peer.set_state(STATE_STREAMING);
                            continue;
                        }
                        // Heartbeat: an idle wire proves nothing about the
                        // peer.  Re-present the hello so a silently dead
                        // connection fails *now* instead of at the next
                        // store, and a peer that restarted empty reports its
                        // rewound position and is healed immediately.
                        idle_ticks += 1;
                        if !idle_ticks.is_multiple_of(HEARTBEAT_IDLE_TICKS) {
                            continue;
                        }
                        match send_recv(&mut wire, &hello.to_string())? {
                            Reply::State { applied: peers, fp } if fp == fingerprint => {
                                if peers < applied {
                                    applied = peers;
                                    peer.acked.store(applied, Ordering::Relaxed);
                                    catch_up(hub, peer, &mut wire, &mut applied)?;
                                    peer.set_state(STATE_STREAMING);
                                }
                            }
                            Reply::State { .. } | Reply::Mismatch => {
                                return Err(io::Error::other(FINGERPRINT_MISMATCH));
                            }
                            Reply::Ack { .. } | Reply::Other(_) => {
                                return Err(io::Error::other("unexpected reply to heartbeat"));
                            }
                        }
                    }
                    InboxEvent::Frame(seq, frame) => {
                        if seq <= applied {
                            continue;
                        }
                        if !ship_frame(hub, peer, &mut wire, seq, &frame, &mut applied)? {
                            // The receiver has a gap below this frame: walk
                            // back and refill it from the ring.
                            catch_up(hub, peer, &mut wire, &mut applied)?;
                            peer.set_state(STATE_STREAMING);
                        }
                    }
                }
            }
        };
        match step() {
            Ok(()) => break,
            Err(e) if e.to_string().contains(FINGERPRINT_MISMATCH) => {
                peer.connected.store(false, Ordering::Relaxed);
                peer.incompatible.fetch_add(1, Ordering::Relaxed);
                peer.set_state(STATE_INCOMPATIBLE);
                peer.backoff_ms
                    .store(hub.options.backoff_cap_ms, Ordering::Relaxed);
                if hub.wait_shutdown(hub.options.backoff_cap_ms) {
                    break;
                }
                continue 'supervise;
            }
            Err(_) => {
                peer.connected.store(false, Ordering::Relaxed);
                peer.reconnects.fetch_add(1, Ordering::Relaxed);
                let delay = backoff.next_delay_ms();
                peer.backoff_ms.store(delay, Ordering::Relaxed);
                peer.set_state(STATE_BACKOFF);
                if hub.wait_shutdown(delay) {
                    break;
                }
                continue 'supervise;
            }
        }
    }
    peer.set_state(STATE_STOPPED);
    peer.connected.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let bytes = vec![0x00, 0x7f, 0xff, 0x10, 0xab];
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex("abc"), None);
    }

    #[test]
    fn source_positions_advance_contiguously_across_reorder() {
        let mut s = SourceState::default();
        assert_eq!(s.observe(1), SeqClass::Fresh);
        assert_eq!(s.applied, 1);
        // Out-of-order: 3 before 2 — the contiguous position waits.
        assert_eq!(s.observe(3), SeqClass::Fresh);
        assert_eq!(s.applied, 1);
        assert_eq!(s.observe(2), SeqClass::Fresh);
        assert_eq!(s.applied, 3);
        // Duplicates below the position are recognized.
        assert_eq!(s.observe(2), SeqClass::Duplicate);
    }

    #[test]
    fn snapshot_jump_clears_pending_below() {
        let mut s = SourceState::default();
        s.observe(5);
        s.observe(7);
        s.jump_to(6);
        assert_eq!(s.applied, 7, "pending 7 drains after the jump to 6");
        s.jump_to(3);
        assert_eq!(s.applied, 7, "jumps never regress");
    }

    #[test]
    fn node_tokens_are_unique_per_call() {
        assert_ne!(generate_node_token(1), generate_node_token(1));
    }

    /// A transport that never connects: the session thread parks in
    /// backoff, leaving the ring and inbox to the test.
    #[derive(Debug)]
    struct NoConnect;

    impl Transport for NoConnect {
        fn connect(&self, _addr: &str) -> io::Result<Box<dyn Wire>> {
            Err(io::ErrorKind::ConnectionRefused.into())
        }
    }

    /// Regression: publish assigns the sequence and inserts into the ring
    /// and every inbox as one unit.  With assignment and insertion split,
    /// concurrent publishers interleave and land frames out of order,
    /// which catch-up escalates into a reconnect loop.
    #[test]
    fn concurrent_publishes_stay_in_sequence_order() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        let hub = ReplicaHub::start(
            1,
            Arc::new(NoConnect),
            ReplicaOptions {
                peers: vec!["unreachable".to_string()],
                queue: (THREADS * PER_THREAD) as usize + 1,
                ring: (THREADS * PER_THREAD) as usize + 1,
                // Park the session after its first failed connect.
                backoff_base_ms: 60_000,
                backoff_cap_ms: 60_000,
                node: Some("seq-order-test".to_string()),
            },
            Arc::new(Vec::new),
        );
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let hub = Arc::clone(&hub);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        hub.publish(vec![0]);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("publisher");
        }

        let total = THREADS * PER_THREAD;
        assert_eq!(hub.published(), total);
        let ring_seqs: Vec<u64> = {
            let ring = hub.ring.lock().expect("ring");
            ring.iter().map(|(s, _)| *s).collect()
        };
        assert_eq!(ring_seqs, (1..=total).collect::<Vec<_>>());
        let inbox_seqs: Vec<u64> = {
            let inbox = hub.peers[0].inbox.lock().expect("inbox");
            assert!(!inbox.lagging, "queue bound must not have tripped");
            inbox.queue.iter().map(|(s, _)| *s).collect()
        };
        assert_eq!(inbox_seqs, (1..=total).collect::<Vec<_>>());
        hub.shutdown();
    }
}
